"""Plugin registry for custom predictors and safety margins.

The paper's modular architecture exists so that new time-out calculation
methods can be dropped in and compared fairly against the stock thirty.
The registry makes that a one-liner for library users::

    from repro.fd.registry import register_predictor

    register_predictor("Median", lambda **kw: MedianPredictor(**kw))
    strategy = make_registered_strategy("Median", "CI_med")
    # -> usable anywhere a paper combination is, including run_qos_experiment
    #    via extra_monitor_layers.

Stock names (the paper's) resolve through
:mod:`repro.fd.combinations`; registered names extend, and may not
shadow, the stock set.  :class:`MedianPredictor` — a robust sliding-window
median, natural on heavy-tailed paths — ships as a worked example and is
pre-registered.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Callable, Dict, List

from repro.fd.combinations import (
    MARGIN_NAMES,
    PREDICTOR_NAMES,
    make_margin,
    make_predictor,
)
from repro.fd.predictors import Predictor
from repro.fd.safety import SafetyMargin
from repro.fd.timeout import TimeoutStrategy

_PREDICTORS: Dict[str, Callable[..., Predictor]] = {}
_MARGINS: Dict[str, Callable[..., SafetyMargin]] = {}


def register_predictor(name: str, factory: Callable[..., Predictor]) -> None:
    """Register a custom predictor factory under ``name``.

    The name must not collide with the paper's predictors or an existing
    registration.
    """
    if not name:
        raise ValueError("predictor name must be non-empty")
    if name in PREDICTOR_NAMES or name in _PREDICTORS:
        raise ValueError(f"predictor name {name!r} is already taken")
    _PREDICTORS[name] = factory


def register_margin(name: str, factory: Callable[..., SafetyMargin]) -> None:
    """Register a custom safety-margin factory under ``name``."""
    if not name:
        raise ValueError("margin name must be non-empty")
    if name in MARGIN_NAMES or name in _MARGINS:
        raise ValueError(f"margin name {name!r} is already taken")
    _MARGINS[name] = factory


def registered_predictors() -> List[str]:
    """All resolvable predictor names (stock first, then registered)."""
    return list(PREDICTOR_NAMES) + sorted(_PREDICTORS)


def registered_margins() -> List[str]:
    """All resolvable margin names (stock first, then registered)."""
    return list(MARGIN_NAMES) + sorted(_MARGINS)


def make_registered_predictor(name: str, **overrides) -> Predictor:
    """Build a predictor by stock or registered name."""
    if name in _PREDICTORS:
        return _PREDICTORS[name](**overrides)
    return make_predictor(name, **overrides)


def make_registered_margin(name: str, **overrides) -> SafetyMargin:
    """Build a margin by stock or registered name."""
    if name in _MARGINS:
        margin = _MARGINS[name](**overrides)
        margin.name = name
        return margin
    return make_margin(name, **overrides)


def make_registered_strategy(predictor_name: str, margin_name: str) -> TimeoutStrategy:
    """Build a strategy from any mix of stock and registered names."""
    return TimeoutStrategy(
        make_registered_predictor(predictor_name),
        make_registered_margin(margin_name),
        name=f"{predictor_name}+{margin_name}",
    )


class MedianPredictor(Predictor):
    """Sliding-window median predictor (registry worked example).

    The median is robust to the spike outliers that inflate windowed
    means: a single 100 ms spike moves WINMEAN(10) by 10 ms for ten
    cycles but leaves the median untouched.  Maintained with a sorted
    shadow list: O(log N) per observation.
    """

    name = "Median"

    def __init__(self, window: int = 11, initial_prediction: float = 0.0) -> None:
        super().__init__(initial_prediction)
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self._buffer: deque = deque(maxlen=self.window)
        self._sorted: List[float] = []

    def _observe(self, value: float) -> None:
        if len(self._buffer) == self.window:
            oldest = self._buffer[0]
            index = bisect.bisect_left(self._sorted, oldest)
            del self._sorted[index]
        self._buffer.append(value)
        bisect.insort(self._sorted, value)

    def _predict(self) -> float:
        n = len(self._sorted)
        middle = n // 2
        if n % 2:
            return self._sorted[middle]
        return 0.5 * (self._sorted[middle - 1] + self._sorted[middle])

    def _reset(self) -> None:
        self._buffer.clear()
        self._sorted.clear()


# The worked example ships pre-registered.
register_predictor("Median", lambda **kw: MedianPredictor(**kw))


__all__ = [
    "MedianPredictor",
    "make_registered_margin",
    "make_registered_predictor",
    "make_registered_strategy",
    "register_margin",
    "register_predictor",
    "registered_margins",
    "registered_predictors",
]
