"""The heartbeater layer: the monitored process's periodic sender.

Process ``q`` has cyclic behaviour: every ``eta`` time units it sends a
heartbeat carrying its cycle number ``i`` and its local send time
``sigma_i``.  The cycle count is driven by virtual time, so it keeps
advancing across injected crash periods (the SimCrash layer below simply
drops the messages while "crashed", exactly as in the paper's
architecture).
"""

from __future__ import annotations

from typing import Optional

from repro.neko.layer import Layer
from repro.nekostat.events import EventKind, StatEvent
from repro.nekostat.log import EventLog
from repro.net.message import Datagram
from repro.sim.process import PeriodicTimer


class Heartbeater(Layer):
    """Sends heartbeat datagrams to the monitor every ``eta`` seconds."""

    def __init__(
        self,
        monitor: str,
        eta: float,
        event_log: Optional[EventLog] = None,
        *,
        record_sent_events: bool = False,
    ) -> None:
        super().__init__(name="Heartbeater")
        if eta <= 0:
            raise ValueError(f"eta must be > 0, got {eta!r}")
        self.monitor = monitor
        self.eta = float(eta)
        self._event_log = event_log
        self._record_sent_events = bool(record_sent_events)
        self._timer: Optional[PeriodicTimer] = None
        self.sent = 0
        self.last_send_time: Optional[float] = None

    def on_start(self) -> None:
        self._timer = self.process.periodic_timer(
            self.eta, self._beat, name="heartbeat"
        )
        self._timer.start()

    def stop(self) -> None:
        """Stop sending heartbeats (end of experiment)."""
        if self._timer is not None:
            self._timer.stop()

    def _beat(self, seq: int) -> None:
        timestamp = self.process.local_time()
        self.last_send_time = self.process.sim.now
        message = Datagram(
            source=self.process.address,
            destination=self.monitor,
            kind="heartbeat",
            seq=seq,
            timestamp=timestamp,
        )
        self.sent += 1
        if self._event_log is not None and self._record_sent_events:
            self._event_log.append(
                StatEvent(
                    time=self.process.sim.now,
                    kind=EventKind.SENT,
                    site=self.process.address,
                    seq=seq,
                    local_time=timestamp,
                )
            )
        self.send_down(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Heartbeater(monitor={self.monitor!r}, eta={self.eta!r}, sent={self.sent})"


__all__ = ["Heartbeater"]
