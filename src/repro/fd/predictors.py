"""The five delay predictors of the paper's Section 3.1.

Every predictor consumes the list ``obs = [obs_1 .. obs_n]`` of observed
heartbeat transmission delays (in arrival order — losses and reordering
mean this is *not* sequence-number order) and forecasts the next delay:

* ``LAST`` — the last observation;
* ``MEAN`` — the mean of all observations;
* ``WINMEAN(N)`` — the mean of the last ``N`` (equal to MEAN while
  ``n < N``);
* ``LPF(beta)`` — exponential smoothing
  ``pred_{k+1} = (1 − beta) pred_k + beta obs_n``;
* ``ARIMA(p, d, q)`` — the Box–Jenkins model, via
  :class:`repro.timeseries.arima.ArimaForecaster` (paper: (2, 1, 1),
  refitted every 1000 observations).

All predictors run in O(1) per observation (the paper's complexity
remark), including MEAN (running sum) and WINMEAN (ring buffer).

A predictor with no observations yet returns ``initial_prediction``
(default 0.0): the failure detector must always be able to arm a time-out.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional

from repro.timeseries.arima import ArimaForecaster
from repro.timeseries.base import Forecaster


class Predictor(Forecaster):
    """Base class for delay predictors: a named, resettable forecaster."""

    #: Short name used in detector identifiers (e.g. ``"Last"``).
    name: str = "Predictor"

    def __init__(self, initial_prediction: float = 0.0) -> None:
        self._initial_prediction = float(initial_prediction)
        self._observations = 0

    @property
    def observations(self) -> int:
        """How many delays have been observed."""
        return self._observations

    def observe(self, value: float) -> None:
        """Feed one observed delay (seconds)."""
        if not math.isfinite(value):
            raise ValueError(f"observed delay must be finite, got {value!r}")
        self._observations += 1
        self._observe(float(value))

    def predict(self) -> float:
        """Forecast the next delay (seconds)."""
        if self._observations == 0:
            return self._initial_prediction
        return self._predict()

    def reset(self) -> None:
        """Forget all observations."""
        self._observations = 0
        self._reset()

    # Subclass hooks -----------------------------------------------------
    def _observe(self, value: float) -> None:
        raise NotImplementedError

    def _predict(self) -> float:
        raise NotImplementedError

    def _reset(self) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(observations={self._observations})"


class LastPredictor(Predictor):
    """``pred_{k+1} = obs_n`` — the last observation."""

    name = "Last"

    def __init__(self, initial_prediction: float = 0.0) -> None:
        super().__init__(initial_prediction)
        self._last = 0.0

    def _observe(self, value: float) -> None:
        self._last = value

    def _predict(self) -> float:
        return self._last

    def _reset(self) -> None:
        self._last = 0.0


class MeanPredictor(Predictor):
    """``pred_{k+1} = (1/n) * sum(obs)`` — the mean of all observations.

    Maintained as a running sum: O(1) per observation, exact for the run
    lengths used here.
    """

    name = "Mean"

    def __init__(self, initial_prediction: float = 0.0) -> None:
        super().__init__(initial_prediction)
        self._sum = 0.0

    def _observe(self, value: float) -> None:
        self._sum += value

    def _predict(self) -> float:
        return self._sum / self._observations

    def _reset(self) -> None:
        self._sum = 0.0


class WinMeanPredictor(Predictor):
    """``pred_{k+1}`` = mean of the last ``N`` observations.

    While fewer than ``N`` observations exist, WINMEAN(N) equals MEAN, as
    specified in the paper.  The paper's instance uses ``N = 10``.
    """

    name = "WinMean"

    def __init__(self, window: int = 10, initial_prediction: float = 0.0) -> None:
        super().__init__(initial_prediction)
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self._buffer: Deque[float] = deque(maxlen=self.window)
        self._window_sum = 0.0

    def _observe(self, value: float) -> None:
        if len(self._buffer) == self.window:
            self._window_sum -= self._buffer[0]
        self._buffer.append(value)
        self._window_sum += value

    def _predict(self) -> float:
        return self._window_sum / len(self._buffer)

    def _reset(self) -> None:
        self._buffer.clear()
        self._window_sum = 0.0


class LpfPredictor(Predictor):
    """Exponential smoothing (low-pass filter).

    ``pred_{k+1} = pred_k + beta * (obs_n − pred_k)
                 = (1 − beta) pred_k + beta obs_n``

    The paper's instance uses ``beta = 1/8`` (the classic TCP smoothed-RTT
    gain).  The filter is seeded with the first observation.
    """

    name = "LPF"

    def __init__(self, beta: float = 0.125, initial_prediction: float = 0.0) -> None:
        super().__init__(initial_prediction)
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta!r}")
        self.beta = float(beta)
        self._estimate: Optional[float] = None

    def _observe(self, value: float) -> None:
        if self._estimate is None:
            self._estimate = value
        else:
            self._estimate += self.beta * (value - self._estimate)

    def _predict(self) -> float:
        assert self._estimate is not None
        return self._estimate

    def _reset(self) -> None:
        self._estimate = None


class ArimaPredictor(Predictor):
    """ARIMA(p, d, q) prediction via the time-series substrate.

    The paper's instance is ARIMA(2, 1, 1) with coefficients re-estimated
    every ``N_arima = 1000`` observations.  Before the first fit the
    underlying forecaster predicts the last value, so the detector is
    usable from the first heartbeat.
    """

    name = "Arima"

    def __init__(
        self,
        p: int = 2,
        d: int = 1,
        q: int = 1,
        *,
        refit_interval: int = 1000,
        initial_fit: int = 200,
        fit_window: int = 4000,
        initial_prediction: float = 0.0,
    ) -> None:
        super().__init__(initial_prediction)
        self._forecaster = ArimaForecaster(
            p,
            d,
            q,
            refit_interval=refit_interval,
            initial_fit=initial_fit,
            fit_window=fit_window,
        )

    @property
    def forecaster(self) -> ArimaForecaster:
        """The underlying online ARIMA forecaster."""
        return self._forecaster

    @property
    def order(self) -> tuple:
        """The (p, d, q) order."""
        return (self._forecaster.p, self._forecaster.d, self._forecaster.q)

    def _observe(self, value: float) -> None:
        self._forecaster.observe(value)

    def _predict(self) -> float:
        return self._forecaster.predict()

    def _reset(self) -> None:
        self._forecaster.reset()


__all__ = [
    "ArimaPredictor",
    "LastPredictor",
    "LpfPredictor",
    "MeanPredictor",
    "Predictor",
    "WinMeanPredictor",
]
