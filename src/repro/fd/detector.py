"""The push-style failure detector layer (paper Section 2.3).

The monitored process ``q`` sends heartbeat ``m_i`` at ``sigma_i = i*eta``
(its local time, carried in the message).  The detector ``p`` maintains
*freshness points* ``tau_i = sigma_i + delta_i`` with ``delta_i = pred_i +
sm_i`` from its :class:`~repro.fd.timeout.TimeoutStrategy`, and **suspects**
``q`` at any time ``t`` in ``[tau_i, tau_{i+1})`` at which it has not
received a heartbeat with sequence number ``k >= i``.

Operationally:

* on a *fresh* heartbeat (sequence above anything seen), trust ``q``
  (ending any suspicion), feed the measured delay to the strategy, and arm
  the expiry timer at the next freshness point
  ``tau_{i+1} = sigma_i + eta + delta``;
* when the timer expires with no fresher heartbeat seen, start suspecting;
* suspicion ends only when a fresh heartbeat arrives (nothing else can
  refute it);
* *stale* heartbeats (late or reordered) never affect trust, but their
  delays are still genuine observations and by default are fed to the
  strategy (the paper's ``obs`` list holds every received heartbeat).

The detector emits ``START_SUSPECT``/``END_SUSPECT`` events into the
experiment's event log; all QoS metrics are derived from those events.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids fd -> obs import
    from repro.obs.trace import TraceRecorder

from repro.fd.timeout import TimeoutStrategy
from repro.neko.layer import Layer
from repro.nekostat.events import EventKind, StatEvent
from repro.nekostat.log import EventLog
from repro.net.message import Datagram
from repro.sim.process import Timer


class PushFailureDetector(Layer):
    """A heartbeat-consuming failure detector with a pluggable time-out.

    Parameters
    ----------
    strategy:
        The predictor + safety-margin combination computing ``delta``.
    monitored:
        Address of the monitored process (heartbeats from other sources
        are passed up unchanged).
    eta:
        The heartbeat sending period, in seconds (known to the detector,
        as in the paper).
    event_log:
        Where ``START_SUSPECT``/``END_SUSPECT`` events are recorded.
    detector_id:
        Identifier used in events; defaults to the strategy name.
    initial_timeout:
        Time-out applied before the first heartbeat is received (the
        strategy has no observations yet).  Measured from start plus one
        sending period.
    observe_stale:
        Whether delays of stale (reordered/late) heartbeats feed the
        strategy.  Default ``True``.
    on_transition:
        Optional callback ``on_transition(suspecting)`` fired on every
        suspect/trust transition — how upper layers (consensus, group
        membership) consume the detector as a live oracle rather than
        through the offline event log.
    tracer:
        Optional :class:`~repro.obs.trace.TraceRecorder`.  When set, the
        detector emits ``freshness`` span events (forecast delta and
        armed freshness point) for every fresh heartbeat and
        ``suspect``/``trust`` events on every transition, each carrying
        the highest heartbeat sequence number seen.  ``None`` (the
        default) costs one pointer comparison per site.
    """

    def __init__(
        self,
        strategy: TimeoutStrategy,
        monitored: str,
        eta: float,
        event_log: EventLog,
        *,
        detector_id: str = "",
        initial_timeout: float = 10.0,
        observe_stale: bool = True,
        on_transition: Optional["Callable[[bool], None]"] = None,
        tracer: Optional["TraceRecorder"] = None,
    ) -> None:
        super().__init__(name=detector_id or strategy.name)
        if eta <= 0:
            raise ValueError(f"eta must be > 0, got {eta!r}")
        if initial_timeout < 0:
            raise ValueError(f"initial_timeout must be >= 0, got {initial_timeout!r}")
        self.strategy = strategy
        self.monitored = monitored
        self.eta = float(eta)
        self.detector_id = detector_id or strategy.name
        self._event_log = event_log
        self._initial_timeout = float(initial_timeout)
        self._observe_stale = bool(observe_stale)
        self._on_transition = on_transition
        self._tracer = tracer
        self._max_seq = -1
        self._last_fresh_timestamp: Optional[float] = None
        self._suspecting = False
        self._timer: Optional[Timer] = None
        # Counters (diagnostics; metrics come from the event log).
        self.heartbeats_seen = 0
        self.stale_heartbeats = 0
        self.suspicions_raised = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def suspecting(self) -> bool:
        """Whether the detector currently suspects the monitored process."""
        return self._suspecting

    @property
    def highest_sequence(self) -> int:
        """The highest heartbeat sequence number received (−1 if none)."""
        return self._max_seq

    def current_timeout(self) -> float:
        """The ``delta = pred + sm`` currently in force, in seconds."""
        return self.strategy.timeout()

    def stop(self) -> None:
        """Cancel the pending expiry so the detector goes quiescent.

        Used by the live monitoring service on endpoint removal and
        daemon shutdown; the detector keeps its state and can be
        re-armed by the next fresh heartbeat if traffic resumes.
        """
        if self._timer is not None:
            self._timer.cancel()

    def update_eta(self, new_eta: float) -> None:
        """Adopt a renegotiated sending period (see
        :mod:`repro.fd.adaptive_interval`).

        The pending deadline is re-armed from the last fresh heartbeat's
        timestamp with the new period, so a *growing* period does not
        leave a stale (too early) freshness point behind.  A shrinking
        period is always safe either way.
        """
        if new_eta <= 0:
            raise ValueError(f"new_eta must be > 0, got {new_eta!r}")
        self.eta = float(new_eta)
        if not self._suspecting and self._last_fresh_timestamp is not None:
            self._arm_next_freshness_point(self._last_fresh_timestamp)

    # ------------------------------------------------------------------
    # Layer lifecycle
    # ------------------------------------------------------------------
    def on_attach(self) -> None:
        self._timer = self.process.timer(self._expired, name=f"fd:{self.detector_id}", priority=1)

    def on_start(self) -> None:
        # Before any heartbeat: expect the first one within one period
        # plus the configured initial time-out.
        assert self._timer is not None
        self._timer.arm(self.eta + self._initial_timeout)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def deliver(self, message: Datagram) -> None:
        if message.kind != "heartbeat" or message.source != self.monitored:
            self.deliver_up(message)
            return
        if message.seq is None or message.timestamp is None:
            raise ValueError(f"heartbeat without seq/timestamp: {message!r}")
        self.heartbeats_seen += 1
        arrival_local = self.process.local_time()
        delay = arrival_local - message.timestamp
        fresh = message.seq > self._max_seq
        if fresh:
            self._max_seq = message.seq
            self._last_fresh_timestamp = message.timestamp
            self.strategy.observe(delay)
            if self._suspecting:
                self._suspecting = False
                self._emit(EventKind.END_SUSPECT)
                if self._tracer is not None:
                    self._trace_transition("trust")
                if self._on_transition is not None:
                    self._on_transition(False)
            self._arm_next_freshness_point(message.timestamp)
        else:
            self.stale_heartbeats += 1
            if self._observe_stale:
                self.strategy.observe(delay)
        self.deliver_up(message)

    def _arm_next_freshness_point(self, send_timestamp_local: float) -> None:
        """Arm the expiry at ``tau_{i+1} = sigma_i + eta + delta``.

        ``sigma_i`` is the sender's local timestamp; the freshness point is
        converted through this process's clock, which is exact under the
        paper's synchronised-clock assumption and carries the residual
        offset otherwise — faithfully reproducing the real system.
        """
        assert self._timer is not None
        delta = self.strategy.timeout()
        tau_local = send_timestamp_local + self.eta + delta
        tau_global = self.process.clock.global_from_local(tau_local)
        self._timer.arm_at(max(self.process.sim.now, tau_global))
        if self._tracer is not None:
            self._tracer.emit(
                self.process.sim.now,
                "freshness",
                self.monitored,
                detector=self.detector_id,
                seq=self._max_seq,
                timeout=delta,
                deadline=tau_global,
            )

    def _expired(self) -> None:
        if self._suspecting:
            return  # already suspecting; arrival is the only way out
        self._suspecting = True
        self.suspicions_raised += 1
        self._emit(EventKind.START_SUSPECT)
        if self._tracer is not None:
            self._trace_transition("suspect")
        if self._on_transition is not None:
            self._on_transition(True)

    def _trace_transition(self, kind: str) -> None:
        assert self._tracer is not None
        self._tracer.emit(
            self.process.sim.now,
            kind,
            self.monitored,
            detector=self.detector_id,
            seq=self._max_seq,
            timeout=self.strategy.timeout(),
        )

    def _emit(self, kind: EventKind) -> None:
        self._event_log.append(
            StatEvent(
                time=self.process.sim.now,
                kind=kind,
                site=self.process.address,
                detector=self.detector_id,
                local_time=self.process.local_time(),
                data={"timeout": self.strategy.timeout()},
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "suspecting" if self._suspecting else "trusting"
        return f"PushFailureDetector({self.detector_id!r}, {state}, seq={self._max_seq})"


__all__ = ["PushFailureDetector"]
