"""The paper's contribution: a modular adaptive push-style failure detector.

A failure detector is assembled from two pluggable pieces (Section 2.3 of
the paper): a **predictor** that forecasts the transmission delay of the
next heartbeat (:mod:`repro.fd.predictors`) and a **safety margin** added
to the prediction to limit premature time-outs (:mod:`repro.fd.safety`).
The time-out for cycle ``i`` is ``delta_i = pred_i + sm_i`` and the
freshness point is ``tau_i = sigma_i + delta_i`` where ``sigma_i = i*eta``
is the heartbeat send time.

:mod:`repro.fd.combinations` enumerates the paper's 30 combinations
(5 predictors × 6 safety margins); :mod:`repro.fd.baselines` adds the
comparison detectors from the literature (NFD-E, Bertier's detector, a
constant-time-out detector and the φ-accrual detector).
:mod:`repro.fd.replay` evaluates the non-ARIMA combinations over recorded
delay traces as vectorized array operations — an order of magnitude
faster than the per-observation class path, and proven equivalent to it.

The experimental layers — :class:`~repro.fd.heartbeat.Heartbeater`,
:class:`~repro.fd.simcrash.SimCrash` and
:class:`~repro.fd.multiplexer.MultiPlexer` — reproduce the paper's
Figure 3 architecture.
"""

from repro.fd.predictors import (
    ArimaPredictor,
    LastPredictor,
    LpfPredictor,
    MeanPredictor,
    Predictor,
    WinMeanPredictor,
)
from repro.fd.safety import ConfidenceIntervalMargin, JacobsonMargin, SafetyMargin, ConstantMargin
from repro.fd.timeout import TimeoutStrategy
from repro.fd.detector import PushFailureDetector
from repro.fd.heartbeat import Heartbeater
from repro.fd.multiplexer import MultiPlexer
from repro.fd.simcrash import SimCrash
from repro.fd.combinations import (
    MARGIN_NAMES,
    PREDICTOR_NAMES,
    all_combinations,
    make_margin,
    make_predictor,
    make_strategy,
)
from repro.fd.adaptive_interval import AdaptiveHeartbeater, IntervalController
from repro.fd.analysis import AnalyticQos, ConstantTimeoutAnalysis
from repro.fd.registry import (
    MedianPredictor,
    make_registered_strategy,
    register_margin,
    register_predictor,
)
from repro.fd.replay import (
    DetectorReplay,
    StrategyReplay,
    replay_combination,
    replay_detector,
    replay_strategy,
    supports_replay,
)
from repro.fd.requirements import (
    Configuration,
    QosRequirements,
    UnsatisfiableRequirements,
    configure,
)

# NOTE: repro.fd.tuning is intentionally NOT imported here — it drives the
# experiment runner (repro.experiments), which itself imports this package;
# import it explicitly as `from repro.fd.tuning import tune_margin_level`.

__all__ = [
    "AdaptiveHeartbeater",
    "AnalyticQos",
    "ArimaPredictor",
    "ConfidenceIntervalMargin",
    "Configuration",
    "ConstantTimeoutAnalysis",
    "IntervalController",
    "MedianPredictor",
    "QosRequirements",
    "UnsatisfiableRequirements",
    "ConstantMargin",
    "DetectorReplay",
    "StrategyReplay",
    "Heartbeater",
    "JacobsonMargin",
    "LastPredictor",
    "LpfPredictor",
    "MARGIN_NAMES",
    "MeanPredictor",
    "MultiPlexer",
    "PREDICTOR_NAMES",
    "Predictor",
    "PushFailureDetector",
    "SafetyMargin",
    "SimCrash",
    "TimeoutStrategy",
    "WinMeanPredictor",
    "all_combinations",
    "make_margin",
    "make_predictor",
    "configure",
    "make_registered_strategy",
    "make_strategy",
    "register_margin",
    "register_predictor",
    "replay_combination",
    "replay_detector",
    "replay_strategy",
    "supports_replay",
]
