"""Configuring (eta, delta) jointly from QoS requirements.

Chen, Toueg & Aguilera's NFD methodology — the paper's reference [5] and
the origin of the "constant time-out computed to obtain a specified QoS"
detectors the paper contrasts with — takes an application's QoS
*requirements*

* ``T_D^U``  — an upper bound on detection time,
* ``T_MR^L`` — a lower bound on time between mistakes,
* ``T_M^U``  — an upper bound on mistake duration,

plus the probabilistic characterisation of the network, and computes the
*largest heartbeat period* ``eta`` (fewest messages) and the matching
time-out ``delta`` that satisfy all three.  This module implements that
procedure on top of the empirical network model of
:mod:`repro.fd.analysis`:

* the detection bound fixes the budget: ``eta + delta <= T_D^U``;
* for a candidate split, the analytic model predicts ``T_MR`` and
  ``T_M``; both requirements are checked;
* the search walks ``eta`` downward from the budget (message cost grows
  as ``eta`` shrinks), choosing for each ``eta`` the largest
  ``delta = T_D^U − eta`` (maximal mistake protection at no detection
  cost), and returns the first satisfying configuration — i.e. the
  cheapest.

Raises :class:`UnsatisfiableRequirements` with a diagnosis when no
configuration exists (e.g. the loss rate alone forces mistakes more
often than ``T_MR^L`` allows at any affordable ``eta``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.fd.analysis import AnalyticQos, ConstantTimeoutAnalysis


class UnsatisfiableRequirements(ValueError):
    """No (eta, delta) meets the stated QoS requirements on this network."""


@dataclass(frozen=True)
class QosRequirements:
    """An application's failure-detection QoS contract."""

    detection_time_upper: float        # T_D^U, seconds
    mistake_recurrence_lower: float    # T_MR^L, seconds
    mistake_duration_upper: float      # T_M^U, seconds

    def __post_init__(self) -> None:
        if self.detection_time_upper <= 0:
            raise ValueError("detection_time_upper must be > 0")
        if self.mistake_recurrence_lower <= 0:
            raise ValueError("mistake_recurrence_lower must be > 0")
        if self.mistake_duration_upper <= 0:
            raise ValueError("mistake_duration_upper must be > 0")


@dataclass(frozen=True)
class Configuration:
    """A satisfying (eta, delta) pair with its predicted QoS."""

    eta: float
    delta: float
    predicted: AnalyticQos

    @property
    def messages_per_second(self) -> float:
        """Heartbeat cost of the configuration."""
        return 1.0 / self.eta


def configure(
    delays: Sequence[float],
    requirements: QosRequirements,
    *,
    loss_probability: float = 0.0,
    eta_candidates: Optional[Sequence[float]] = None,
    min_eta: float = 0.01,
) -> Configuration:
    """Find the cheapest (largest-eta) configuration meeting ``requirements``.

    Parameters
    ----------
    delays:
        Empirical one-way delay sample characterising the network.
    requirements:
        The QoS contract.
    loss_probability:
        Per-heartbeat loss probability of the path.
    eta_candidates:
        Candidate periods to try, largest first.  Default: a geometric
        grid from the full detection budget down to ``min_eta``.
    """
    budget = requirements.detection_time_upper
    if eta_candidates is None:
        eta_candidates = _geometric_grid(budget * 0.95, min_eta)
    tried: List[Configuration] = []
    best_failure: Optional[str] = None

    for eta in eta_candidates:
        if eta <= 0 or eta >= budget:
            continue
        delta = budget - eta
        analysis = ConstantTimeoutAnalysis(
            delays, eta, loss_probability=loss_probability
        )
        predicted = analysis.predict(delta)
        configuration = Configuration(eta=eta, delta=delta, predicted=predicted)
        tried.append(configuration)
        if predicted.mistake_recurrence_mean < requirements.mistake_recurrence_lower:
            best_failure = (
                f"eta={eta:.3g}: predicted T_MR "
                f"{predicted.mistake_recurrence_mean:.1f} s < required "
                f"{requirements.mistake_recurrence_lower:.1f} s"
            )
            continue
        if predicted.mistake_duration_mean > requirements.mistake_duration_upper:
            best_failure = (
                f"eta={eta:.3g}: predicted T_M "
                f"{predicted.mistake_duration_mean * 1e3:.0f} ms > allowed "
                f"{requirements.mistake_duration_upper * 1e3:.0f} ms"
            )
            continue
        return configuration

    detail = best_failure or "no eta candidate fits inside the detection budget"
    raise UnsatisfiableRequirements(
        f"no (eta, delta) satisfies T_D^U={requirements.detection_time_upper}s, "
        f"T_MR>={requirements.mistake_recurrence_lower}s, "
        f"T_M<={requirements.mistake_duration_upper}s on this network "
        f"({detail})"
    )


def _geometric_grid(start: float, stop: float, factor: float = 0.85) -> List[float]:
    """Geometric grid from ``start`` down to ``stop`` (inclusive-ish)."""
    if start <= stop:
        return [start]
    grid = []
    value = start
    while value > stop:
        grid.append(value)
        value *= factor
    grid.append(stop)
    return grid


__all__ = [
    "Configuration",
    "QosRequirements",
    "UnsatisfiableRequirements",
    "configure",
]
