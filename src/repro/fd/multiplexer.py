"""The MultiPlexer layer (paper Section 4).

When the monitor receives a message from the network, the MultiPlexer
immediately forwards it to *all* the components at the upper level — the 30
failure-detector combinations — guaranteeing that every detector perceives
identical network conditions.  This fan-out is what makes the comparison
fair: one arrival sequence, thirty simultaneous consumers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids fd -> obs import
    from repro.obs.trace import TraceRecorder

from repro.neko.layer import Layer
from repro.nekostat.events import EventKind, StatEvent
from repro.nekostat.log import EventLog
from repro.net.message import Datagram


class MultiPlexer(Layer):
    """Fans every delivered message out to a set of upper layers.

    The upper layers are full citizens of the process: they are attached
    to it when the MultiPlexer is, their ``on_start`` hooks run, and their
    ``send_down`` goes through the MultiPlexer to the network.
    """

    def __init__(
        self,
        uppers: Sequence[Layer],
        event_log: Optional[EventLog] = None,
        *,
        record_received_events: bool = False,
        tracer: Optional["TraceRecorder"] = None,
    ) -> None:
        super().__init__(name="MultiPlexer")
        self._uppers: List[Layer] = list(uppers)
        self._event_log = event_log
        self._record_received_events = bool(record_received_events)
        self._tracer = tracer
        for upper in self._uppers:
            upper._down = self
        self.messages_fanned_out = 0

    @property
    def uppers(self) -> List[Layer]:
        """The layers fed by this MultiPlexer."""
        return list(self._uppers)

    def add_upper(self, layer: Layer) -> None:
        """Attach one more consumer (before the system starts)."""
        layer._down = self
        if self.attached:
            layer._attach(self.process)
        self._uppers.append(layer)

    def on_attach(self) -> None:
        for upper in self._uppers:
            upper._attach(self.process)

    def on_start(self) -> None:
        for upper in self._uppers:
            upper.on_start()

    def deliver(self, message: Datagram) -> None:
        if self._event_log is not None and self._record_received_events and (
            message.seq is not None
        ):
            self._event_log.append(
                StatEvent(
                    time=self.process.sim.now,
                    kind=EventKind.RECEIVED,
                    site=self.process.address,
                    seq=message.seq,
                    local_time=self.process.local_time(),
                )
            )
        if self._tracer is not None and message.seq is not None:
            self._tracer.emit(
                self.process.sim.now,
                "fanout",
                message.source,
                seq=message.seq,
            )
        self.messages_fanned_out += 1
        for upper in self._uppers:
            upper.deliver(message)
        self.deliver_up(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MultiPlexer(uppers={len(self._uppers)})"


__all__ = ["MultiPlexer"]
