"""Fault plans: typed, seeded, serialisable chaos scenario timelines.

A :class:`FaultPlan` is a declarative timeline of :class:`FaultEvent`
windows — partitions, loss bursts, duplication, reordering, payload
corruption/truncation, delay spikes, clock skew, process pauses — plus a
seed.  The plan is *pure data*: every random decision taken while
executing it is derived from ``(plan.seed, source, destination)`` and the
per-pair datagram order by :class:`repro.chaos.engine.ChaosEngine`, so
the same plan JSON replays identically against the discrete-event
simulator and (modulo real-network nondeterminism in the underlying
traffic) against the live UDP loopback path.

The ADD-channel generator (:func:`add_channel_plan`) produces the
worst-case adversary family of Kumar & Welch: before a stabilization
time the channel may behave arbitrarily badly (unbounded delay spikes,
near-total loss bursts); after it, delay and loss are bounded.  It is a
first-class scenario family because ◇P-style detectors are exactly the
ones that must survive it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Every fault family the engine understands, and what ``magnitude``,
#: ``rate`` and ``copies`` mean for each (see docs/robustness.md).
FAULT_KINDS = (
    "partition",    # matched datagrams dropped (rate = drop probability)
    "loss-burst",   # like partition but conventionally rate < 1
    "duplicate",    # matched datagrams transmitted `copies` times
    "reorder",      # extra delay ~ U(0, magnitude) forces overtaking
    "corrupt",      # payload bytes flipped; undecodable results are dropped
    "truncate",     # payload cut to a random prefix
    "delay-spike",  # extra delay of exactly `magnitude` seconds
    "clock-skew",   # sender timestamp shifted by `magnitude` seconds
    "pause",        # process stops: outbound dropped, inbound held to end
)

WILDCARD = "*"


@dataclass(frozen=True)
class FaultEvent:
    """One fault window on the plan timeline.

    ``source``/``destination`` select traffic by ordered pair; ``"*"``
    matches any process.  A ``pause`` event names the paused process in
    ``source`` and matches traffic in *both* directions.  Times are in
    plan-relative seconds (the engine anchors them to a time origin at
    attach).
    """

    kind: str
    start: float
    end: float
    source: str = WILDCARD
    destination: str = WILDCARD
    rate: float = 1.0
    magnitude: float = 0.0
    copies: int = 2
    note: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.start < 0:
            raise ValueError(f"fault start must be >= 0, got {self.start!r}")
        if not self.end > self.start:
            raise ValueError(
                f"fault window must be non-empty: start={self.start!r} end={self.end!r}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate!r}")
        if self.magnitude < 0:
            raise ValueError(f"magnitude must be >= 0, got {self.magnitude!r}")
        if self.copies < 1:
            raise ValueError(f"copies must be >= 1, got {self.copies!r}")

    def active(self, rel_now: float) -> bool:
        """Whether this window covers plan-relative time ``rel_now``."""
        return self.start <= rel_now < self.end

    def matches(self, source: str, destination: str) -> bool:
        """Whether this event selects the ordered traffic pair."""
        if self.kind == "pause":
            return source == self.source or destination == self.source
        return (self.source in (WILDCARD, source)) and (
            self.destination in (WILDCARD, destination)
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "source": self.source,
            "destination": self.destination,
            "rate": self.rate,
            "magnitude": self.magnitude,
            "copies": self.copies,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        return cls(
            kind=str(data["kind"]),
            start=float(data["start"]),  # type: ignore[arg-type]
            end=float(data["end"]),  # type: ignore[arg-type]
            source=str(data.get("source", WILDCARD)),
            destination=str(data.get("destination", WILDCARD)),
            rate=float(data.get("rate", 1.0)),  # type: ignore[arg-type]
            magnitude=float(data.get("magnitude", 0.0)),  # type: ignore[arg-type]
            copies=int(data.get("copies", 2)),  # type: ignore[arg-type]
            note=str(data.get("note", "")),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded timeline of fault events.

    The plan is immutable; use :meth:`FaultPlan.build` for the chainable
    builder, or :meth:`from_json` / :meth:`load` to read one back.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0
    name: str = "chaos"

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed!r}")

    @property
    def horizon(self) -> float:
        """Latest event end time (0 for an empty plan)."""
        return max((event.end for event in self.events), default=0.0)

    def kinds(self) -> Tuple[str, ...]:
        """The distinct fault kinds present, in timeline order."""
        seen: List[str] = []
        for event in sorted(self.events, key=lambda e: (e.start, e.end)):
            if event.kind not in seen:
                seen.append(event.kind)
        return tuple(seen)

    def with_seed(self, seed: int) -> "FaultPlan":
        """A copy of this plan under a different seed."""
        return replace(self, seed=seed)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        events = data.get("events", [])
        if not isinstance(events, list):
            raise ValueError("fault plan 'events' must be a list")
        return cls(
            events=tuple(FaultEvent.from_dict(item) for item in events),
            seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
            name=str(data.get("name", "chaos")),
        )

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("fault plan JSON must be an object")
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    @classmethod
    def build(cls, *, name: str = "chaos", seed: int = 0) -> "FaultPlanBuilder":
        """Start a chainable builder."""
        return FaultPlanBuilder(name=name, seed=seed)


@dataclass
class FaultPlanBuilder:
    """Chainable construction of a :class:`FaultPlan`.

    Every method returns ``self``; call :meth:`done` to freeze.
    """

    name: str = "chaos"
    seed: int = 0
    _events: List[FaultEvent] = field(default_factory=list)

    def event(self, event: FaultEvent) -> "FaultPlanBuilder":
        self._events.append(event)
        return self

    def partition(
        self,
        source: str,
        destination: str,
        start: float,
        end: float,
        *,
        bidirectional: bool = True,
        rate: float = 1.0,
        note: str = "",
    ) -> "FaultPlanBuilder":
        """Cut source→destination (and the reverse path by default)."""
        self._events.append(FaultEvent(
            "partition", start, end, source=source, destination=destination,
            rate=rate, note=note,
        ))
        if bidirectional:
            self._events.append(FaultEvent(
                "partition", start, end, source=destination, destination=source,
                rate=rate, note=note,
            ))
        return self

    def isolate(self, process: str, start: float, end: float, *,
                note: str = "") -> "FaultPlanBuilder":
        """Partition ``process`` from everyone, both directions."""
        return self.partition(process, WILDCARD, start, end,
                              bidirectional=True, note=note or f"isolate {process}")

    def loss_burst(self, start: float, end: float, rate: float, *,
                   source: str = WILDCARD, destination: str = WILDCARD,
                   note: str = "") -> "FaultPlanBuilder":
        self._events.append(FaultEvent(
            "loss-burst", start, end, source=source, destination=destination,
            rate=rate, note=note,
        ))
        return self

    def duplicate(self, start: float, end: float, rate: float = 1.0, *,
                  copies: int = 2, source: str = WILDCARD,
                  destination: str = WILDCARD, note: str = "") -> "FaultPlanBuilder":
        self._events.append(FaultEvent(
            "duplicate", start, end, source=source, destination=destination,
            rate=rate, copies=copies, note=note,
        ))
        return self

    def reorder(self, start: float, end: float, rate: float, magnitude: float, *,
                source: str = WILDCARD, destination: str = WILDCARD,
                note: str = "") -> "FaultPlanBuilder":
        self._events.append(FaultEvent(
            "reorder", start, end, source=source, destination=destination,
            rate=rate, magnitude=magnitude, note=note,
        ))
        return self

    def corrupt(self, start: float, end: float, rate: float, *,
                source: str = WILDCARD, destination: str = WILDCARD,
                note: str = "") -> "FaultPlanBuilder":
        self._events.append(FaultEvent(
            "corrupt", start, end, source=source, destination=destination,
            rate=rate, note=note,
        ))
        return self

    def truncate(self, start: float, end: float, rate: float, *,
                 source: str = WILDCARD, destination: str = WILDCARD,
                 note: str = "") -> "FaultPlanBuilder":
        self._events.append(FaultEvent(
            "truncate", start, end, source=source, destination=destination,
            rate=rate, note=note,
        ))
        return self

    def delay_spike(self, start: float, end: float, magnitude: float, *,
                    rate: float = 1.0, source: str = WILDCARD,
                    destination: str = WILDCARD, note: str = "") -> "FaultPlanBuilder":
        self._events.append(FaultEvent(
            "delay-spike", start, end, source=source, destination=destination,
            rate=rate, magnitude=magnitude, note=note,
        ))
        return self

    def clock_skew(self, start: float, end: float, magnitude: float, *,
                   source: str = WILDCARD, destination: str = WILDCARD,
                   note: str = "") -> "FaultPlanBuilder":
        self._events.append(FaultEvent(
            "clock-skew", start, end, source=source, destination=destination,
            magnitude=magnitude, note=note,
        ))
        return self

    def pause(self, process: str, start: float, end: float, *,
              note: str = "") -> "FaultPlanBuilder":
        """Freeze ``process``: outbound dropped, inbound held until ``end``."""
        self._events.append(FaultEvent(
            "pause", start, end, source=process, note=note,
        ))
        return self

    def done(self) -> FaultPlan:
        """Freeze the accumulated events into a :class:`FaultPlan`."""
        events = tuple(sorted(self._events, key=lambda e: (e.start, e.end, e.kind)))
        return FaultPlan(events=events, seed=self.seed, name=self.name)


def add_channel_plan(
    *,
    seed: int = 0,
    stabilization_time: float = 60.0,
    horizon: float = 120.0,
    source: str = WILDCARD,
    destination: str = WILDCARD,
    max_delay_spike: float = 8.0,
    bounded_delay: float = 0.25,
    bounded_loss_rate: float = 0.05,
    name: str = "add-channel",
) -> FaultPlan:
    """Generate an ADD-channel adversary scenario (Kumar & Welch).

    Before ``stabilization_time`` the channel is adversarial: a seeded
    sequence of near-total loss bursts and delay spikes whose magnitude
    grows toward ``max_delay_spike`` (unbounded-*looking* behaviour over
    a finite prefix).  From ``stabilization_time`` to ``horizon`` the
    channel is bounded: delay spikes never exceed ``bounded_delay`` and
    loss never exceeds ``bounded_loss_rate`` — the "eventually ADD"
    property that ◇P detectors must exploit to re-trust.
    """
    if not 0 < stabilization_time < horizon:
        raise ValueError(
            "need 0 < stabilization_time < horizon, got "
            f"{stabilization_time!r} / {horizon!r}"
        )
    rng = np.random.Generator(np.random.PCG64(np.random.SeedSequence(seed)))
    builder = FaultPlan.build(name=name, seed=seed)
    # Adversarial prefix: alternating loss bursts and growing delay spikes.
    cursor = float(rng.uniform(0.0, stabilization_time * 0.1))
    spike_index = 0
    while cursor < stabilization_time:
        width = float(rng.uniform(0.05, 0.2)) * stabilization_time
        end = min(cursor + width, stabilization_time)
        if end <= cursor:
            break
        if rng.random() < 0.5:
            builder.loss_burst(
                cursor, end, rate=float(rng.uniform(0.7, 1.0)),
                source=source, destination=destination,
                note="adversarial loss burst",
            )
        else:
            spike_index += 1
            # Successive spikes grow: no bound holds before stabilization.
            magnitude = float(
                rng.uniform(0.3, 1.0) * max_delay_spike * min(1.0, spike_index / 3.0)
            )
            builder.delay_spike(
                cursor, end, max(magnitude, bounded_delay),
                source=source, destination=destination,
                note="adversarial delay spike",
            )
        cursor = end + float(rng.uniform(0.02, 0.1)) * stabilization_time
    # Bounded suffix: mild, bounded loss and delay until the horizon.
    builder.loss_burst(
        stabilization_time, horizon, rate=bounded_loss_rate,
        source=source, destination=destination, note="bounded residual loss",
    )
    builder.delay_spike(
        stabilization_time, horizon, bounded_delay, rate=0.25,
        source=source, destination=destination, note="bounded residual delay",
    )
    return builder.done()


def plan_from_spec(spec: Dict[str, object]) -> FaultPlan:
    """Build a plan from a loose dict (CLI/JSON convenience)."""
    return FaultPlan.from_dict(spec)


__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultPlanBuilder",
    "WILDCARD",
    "add_channel_plan",
    "plan_from_spec",
]
