"""The deterministic fault-decision engine shared by sim and live paths.

:class:`ChaosEngine` turns a :class:`~repro.chaos.plan.FaultPlan` into
per-datagram :class:`Decision` objects.  Determinism contract: a decision
is a pure function of ``(plan.seed, source, destination)`` and the number
of prior decisions taken for that ordered pair — each pair owns a
dedicated PCG64 stream seeded from the plan seed and the CRC32 of the
pair names (Python's ``hash()`` is salted per process, so it is unusable
here).  Replaying the same traffic sequence through the same plan yields
bit-identical fault decisions, on either side of the sim/live split.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.chaos.plan import FaultEvent, FaultPlan


@dataclass
class Decision:
    """What the plan says should happen to one datagram.

    ``copies`` is the total number of transmissions (1 = normal).  A
    dropped datagram has ``copies == 0``.  ``hold_until`` is an absolute
    engine-relative release time used by ``pause`` (inbound datagrams for
    a paused process are buffered until the pause window closes).
    """

    drop: bool = False
    copies: int = 1
    extra_delay: float = 0.0
    skew: float = 0.0
    corrupt: bool = False
    truncate: bool = False
    hold_until: Optional[float] = None
    faults: Tuple[str, ...] = ()

    @property
    def touched(self) -> bool:
        """Whether any fault applied to this datagram."""
        return bool(self.faults)


@dataclass
class ChaosStats:
    """Counters of applied faults, by effect."""

    decisions: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    corrupted: int = 0
    truncated: int = 0
    skewed: int = 0
    held: int = 0
    undecodable: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def count_kind(self, kind: str) -> None:
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "decisions": self.decisions,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "corrupted": self.corrupted,
            "truncated": self.truncated,
            "skewed": self.skewed,
            "held": self.held,
            "undecodable": self.undecodable,
            "by_kind": dict(sorted(self.by_kind.items())),
        }


class ChaosEngine:
    """Evaluates a fault plan against a stream of datagram metadata.

    ``time_origin`` anchors the plan's relative timeline to the caller's
    clock: the sim runner leaves it at 0 (sim time starts at 0), the live
    runner sets it to ``scheduler.now`` at attach time.
    """

    def __init__(self, plan: FaultPlan, *, time_origin: float = 0.0) -> None:
        self.plan = plan
        self.time_origin = float(time_origin)
        self.stats = ChaosStats()
        self._events: Tuple[FaultEvent, ...] = tuple(
            sorted(plan.events, key=lambda e: (e.start, e.end, e.kind))
        )
        self._rngs: Dict[Tuple[str, str], np.random.Generator] = {}

    # ------------------------------------------------------------------
    # Determinism plumbing
    # ------------------------------------------------------------------
    def _rng(self, source: str, destination: str) -> np.random.Generator:
        key = (source, destination)
        rng = self._rngs.get(key)
        if rng is None:
            seed = np.random.SeedSequence((
                self.plan.seed,
                zlib.crc32(source.encode("utf-8")),
                zlib.crc32(destination.encode("utf-8")),
            ))
            rng = np.random.Generator(np.random.PCG64(seed))
            self._rngs[key] = rng
        return rng

    @staticmethod
    def _hits(rng: np.random.Generator, rate: float) -> bool:
        """Sample a rate gate; a rate of 1.0 consumes no randomness."""
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return bool(rng.random() < rate)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def decide(self, now: float, source: str, destination: str) -> Decision:
        """Decide the fate of one datagram sent at absolute time ``now``."""
        rel_now = now - self.time_origin
        self.stats.decisions += 1
        decision = Decision()
        faults: list = []
        rng: Optional[np.random.Generator] = None
        for event in self._events:
            if rel_now < event.start:
                break  # events are start-sorted; nothing later is active
            if not event.active(rel_now) or not event.matches(source, destination):
                continue
            if rng is None:
                rng = self._rng(source, destination)
            kind = event.kind
            if kind == "pause":
                faults.append(kind)
                if source == event.source:
                    decision.drop = True
                else:
                    release = self.time_origin + event.end
                    if decision.hold_until is None or release > decision.hold_until:
                        decision.hold_until = release
                continue
            if not self._hits(rng, event.rate):
                continue
            faults.append(kind)
            if kind in ("partition", "loss-burst"):
                decision.drop = True
            elif kind == "duplicate":
                decision.copies = max(decision.copies, event.copies)
            elif kind == "reorder":
                decision.extra_delay += float(rng.uniform(0.0, event.magnitude))
            elif kind == "delay-spike":
                decision.extra_delay += event.magnitude
            elif kind == "clock-skew":
                decision.skew += event.magnitude
            elif kind == "corrupt":
                decision.corrupt = True
            elif kind == "truncate":
                decision.truncate = True
        decision.faults = tuple(faults)
        if decision.drop:
            decision.copies = 0
            self.stats.dropped += 1
        else:
            if decision.copies > 1:
                self.stats.duplicated += decision.copies - 1
            if decision.extra_delay > 0:
                self.stats.delayed += 1
            if decision.corrupt:
                self.stats.corrupted += 1
            if decision.truncate:
                self.stats.truncated += 1
            if decision.skew:
                self.stats.skewed += 1
            if decision.hold_until is not None:
                self.stats.held += 1
        for kind in decision.faults:
            self.stats.count_kind(kind)
        return decision

    def mangle(self, raw: bytes, decision: Decision, source: str,
               destination: str) -> bytes:
        """Apply corruption/truncation from ``decision`` to wire bytes."""
        if not raw or not (decision.corrupt or decision.truncate):
            return raw
        rng = self._rng(source, destination)
        data = bytearray(raw)
        if decision.truncate:
            keep = int(rng.integers(0, len(data)))
            data = data[:keep]
        if decision.corrupt and data:
            flips = max(1, len(data) // 16)
            positions = rng.integers(0, len(data), size=flips)
            masks = rng.integers(1, 256, size=flips)
            for position, mask in zip(positions, masks):
                data[int(position)] ^= int(mask)
        return bytes(data)

    def report(self) -> Dict[str, object]:
        """Plan identity plus applied-fault counters."""
        return {
            "plan": self.plan.name,
            "seed": self.plan.seed,
            "events": len(self._events),
            "stats": self.stats.to_dict(),
        }


__all__ = ["ChaosEngine", "ChaosStats", "Decision"]
