"""repro.chaos — deterministic fault injection for sim and live paths.

See docs/robustness.md for the scenario DSL, the fault taxonomy, and the
invariant suite this subsystem backs.
"""

from repro.chaos.engine import ChaosEngine, ChaosStats, Decision
from repro.chaos.link import ChaosLink, install_chaos, uninstall_chaos
from repro.chaos.plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultPlanBuilder,
    WILDCARD,
    add_channel_plan,
    plan_from_spec,
)
from repro.chaos.runner import (
    run_daemon_scenario,
    run_daemon_scenario_async,
    run_kv_scenario,
    run_sim_scenario,
)
from repro.chaos.shim import (
    ChaosIntake,
    attach_daemon,
    attach_fleet,
    attach_intake,
    attach_kv_node,
)

__all__ = [
    "FAULT_KINDS",
    "WILDCARD",
    "ChaosEngine",
    "ChaosIntake",
    "ChaosLink",
    "ChaosStats",
    "Decision",
    "FaultEvent",
    "FaultPlan",
    "FaultPlanBuilder",
    "add_channel_plan",
    "attach_daemon",
    "attach_fleet",
    "attach_intake",
    "attach_kv_node",
    "install_chaos",
    "plan_from_spec",
    "run_daemon_scenario",
    "run_daemon_scenario_async",
    "run_kv_scenario",
    "run_sim_scenario",
]
