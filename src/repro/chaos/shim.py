"""Live-side fault injection: the intake shim over real UDP components.

The live path has exactly one choke point per component — its
``_on_datagram`` intake — so chaos is injected there, on the raw wire
bytes, driven by the same :class:`~repro.chaos.engine.ChaosEngine` (and
therefore the same :class:`~repro.chaos.plan.FaultPlan` JSON) as the
simulator's :class:`~repro.chaos.link.ChaosLink`:

* drops and loss bursts discard the bytes before the component sees them;
* delay spikes / reordering re-deliver the bytes later via the
  component's scheduler (or the running asyncio loop);
* duplicates deliver the same bytes several times;
* corruption/truncation mangles the bytes — the hardened
  :func:`~repro.net.udp.decode_datagram` then rejects undecodable
  results inside the component, exactly like a corrupted wire packet;
* clock skew decodes, shifts the sender timestamp, and re-encodes;
* a paused process has its outbound traffic dropped at every receiver
  and its inbound traffic held until the pause window closes (the
  kernel-buffer burst a SIGSTOP'd process sees on resume).

Attach shims **before** ``start()``: some components hand their bound
``_on_datagram`` to the protocol factory at startup, so late attachment
would be invisible to them.
"""

from __future__ import annotations

import asyncio
import dataclasses
from typing import Any, Callable, Optional

from repro.chaos.engine import ChaosEngine, Decision
from repro.net.udp import DatagramDecodeError, decode_datagram, encode_datagram


class ChaosIntake:
    """A fault-injecting wrapper around one component's datagram intake.

    ``scheduler_fn`` lazily resolves the component's scheduler (live
    components create theirs inside ``start()``); when it yields nothing
    the running asyncio loop is used for deferred deliveries.
    """

    def __init__(
        self,
        engine: ChaosEngine,
        inner: Callable[..., None],
        *,
        scheduler_fn: Optional[Callable[[], Any]] = None,
        name: str = "",
    ) -> None:
        self._engine = engine
        self._inner = inner
        self._scheduler_fn = scheduler_fn
        self._armed = False
        self.name = name

    @property
    def engine(self) -> ChaosEngine:
        """The shared decision engine driving this intake."""
        return self._engine

    def arm(self, time_origin: float) -> None:
        """Anchor the plan timeline to the component clock explicitly."""
        self._engine.time_origin = float(time_origin)
        self._armed = True

    def _now(self) -> float:
        scheduler = self._scheduler_fn() if self._scheduler_fn is not None else None
        if scheduler is not None:
            return float(scheduler.now)
        return float(asyncio.get_running_loop().time())

    def _defer(self, delay: float, thunk: Callable[[], None]) -> None:
        scheduler = self._scheduler_fn() if self._scheduler_fn is not None else None
        if scheduler is not None:
            scheduler.schedule(delay, thunk, name=f"chaos:{self.name}")
        else:
            asyncio.get_running_loop().call_later(delay, thunk)

    def __call__(self, data: bytes, *rest: Any) -> None:
        try:
            message = decode_datagram(data)
        except DatagramDecodeError:
            # Already garbage on the wire: not plan traffic, pass through
            # so the component's own drop accounting still fires.
            self._inner(data, *rest)
            return
        now = self._now()
        if not self._armed:
            # First datagram anchors the plan if the runner never did.
            self.arm(now)
        decision = self._engine.decide(now, message.source, message.destination)
        if decision.drop:
            return
        payload = self._mangle_bytes(data, message, decision)
        extra = decision.extra_delay
        if decision.hold_until is not None:
            extra = max(extra, decision.hold_until - now)
        for _ in range(decision.copies):
            if extra > 0:
                self._defer(
                    extra, lambda raw=payload: self._inner(raw, *rest)
                )
            else:
                self._inner(payload, *rest)

    def _mangle_bytes(self, data: bytes, message, decision: Decision) -> bytes:
        if decision.skew and message.timestamp is not None:
            message = dataclasses.replace(
                message, timestamp=message.timestamp + decision.skew
            )
            data = encode_datagram(message)
        if decision.corrupt or decision.truncate:
            data = self._engine.mangle(
                data, decision, message.source, message.destination
            )
        return data


def attach_intake(
    engine: ChaosEngine,
    component: Any,
    *,
    scheduler_fn: Optional[Callable[[], Any]] = None,
    name: str = "",
) -> ChaosIntake:
    """Wrap ``component._on_datagram`` with a chaos intake (pre-start)."""
    intake = ChaosIntake(
        engine, component._on_datagram, scheduler_fn=scheduler_fn,
        name=name or type(component).__name__,
    )
    component._on_datagram = intake
    return intake


def attach_daemon(engine: ChaosEngine, daemon: Any) -> ChaosIntake:
    """Shim a :class:`~repro.service.daemon.MonitorDaemon`'s intake."""
    return attach_intake(
        engine, daemon, scheduler_fn=lambda: daemon.scheduler, name="daemon",
    )


def attach_fleet(engine: ChaosEngine, fleet: Any) -> ChaosIntake:
    """Shim a :class:`~repro.service.heartbeat.HeartbeatFleet`'s intake."""
    return attach_intake(
        engine, fleet, scheduler_fn=lambda: fleet._scheduler, name="fleet",
    )


def attach_kv_node(engine: ChaosEngine, node: Any) -> ChaosIntake:
    """Shim a :class:`~repro.kv.live.LiveKvNode`'s intake (before start)."""
    return attach_intake(
        engine, node, scheduler_fn=lambda: node._scheduler,
        name=f"kv:{getattr(node, 'name', 'node')}",
    )


__all__ = [
    "ChaosIntake",
    "attach_daemon",
    "attach_fleet",
    "attach_intake",
    "attach_kv_node",
]
