"""Scenario runners: one :class:`~repro.chaos.plan.FaultPlan`, three targets.

The same plan JSON can be replayed against

* the discrete-event QoS campaign system (:func:`run_sim_scenario`) —
  the :func:`~repro.experiments.runner.build_qos_system` architecture
  with every link routed through a :class:`~repro.chaos.link.ChaosLink`;
* the live asyncio loopback service (:func:`run_daemon_scenario`) — a
  real :class:`~repro.service.daemon.MonitorDaemon` and
  :class:`~repro.service.heartbeat.HeartbeatFleet` over real UDP
  sockets, with chaos intake shims on both sides;
* the simulated replicated KV store (:func:`run_kv_scenario`) — the
  :func:`~repro.kv.sim.run_kv_sim` system under a ``fault_plan``.

Each runner returns a JSON-able report with the same top-level shape
(``target``, ``survived``, ``chaos`` plus target-specific sections), so
the ``repro chaos`` CLI and the invariant tests can treat them uniformly.
"""

from __future__ import annotations

import asyncio
import math
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.chaos.engine import ChaosEngine
from repro.chaos.link import install_chaos
from repro.chaos.plan import FaultPlan
from repro.chaos.shim import attach_daemon, attach_fleet

DEFAULT_DETECTOR = "Last+CI_med"


def run_sim_scenario(
    plan: FaultPlan,
    *,
    duration: Optional[float] = None,
    eta: float = 0.1,
    detector_ids: Optional[Sequence[str]] = None,
    profile_name: str = "italy-japan",
    seed: int = 2005,
    mttc: float = 1e9,
    ttr: float = 0.0,
) -> Dict[str, Any]:
    """Replay ``plan`` against the batch QoS experiment system.

    Crash injection is effectively disabled by default (``mttc=1e9``) so
    every detector mistake is attributable to the plan's faults.  The
    run covers at least the plan horizon plus a recovery tail.
    """
    from repro.experiments.runner import build_qos_system
    from repro.kv.sim import qos_brief
    from repro.neko.config import ExperimentConfig
    from repro.neko.system import SimulatedNetwork
    from repro.nekostat.metrics import extract_qos

    ids = list(detector_ids) if detector_ids else [DEFAULT_DETECTOR]
    if duration is None:
        duration = max(plan.horizon * 1.5, 60.0)
    config = ExperimentConfig(
        num_cycles=max(1, math.ceil(duration / eta)),
        mttc=mttc,
        ttr=ttr,
        eta=eta,
        profile_name=profile_name,
        seed=seed,
    )
    parts = build_qos_system(config, ids)
    engine = ChaosEngine(plan)
    network = parts["system"].network  # type: ignore[attr-defined]
    assert isinstance(network, SimulatedNetwork)
    install_chaos(network, engine)
    parts["system"].run(until=config.duration)  # type: ignore[attr-defined]
    qos = extract_qos(
        parts["event_log"], end_time=config.duration, detectors=ids
    )
    detectors = parts["detectors"]
    link = parts["link"]
    return {
        "target": "sim",
        "survived": True,
        "chaos": engine.report(),
        "duration": config.duration,
        "eta": eta,
        "heartbeats_sent": parts["heartbeater"].sent,  # type: ignore[attr-defined]
        "link": {
            "delivered": link.stats.delivered,  # type: ignore[attr-defined]
            "loss_rate": link.stats.loss_rate,  # type: ignore[attr-defined]
        },
        "qos": {
            detector_id: qos_brief(qos[detector_id]) for detector_id in ids
        },
        "suspecting_at_end": {
            detector_id: bool(detector.suspecting)
            for detector_id, detector in detectors.items()  # type: ignore[attr-defined]
        },
    }


async def run_daemon_scenario_async(
    plan: FaultPlan,
    *,
    duration: float = 8.0,
    eta: float = 0.25,
    endpoints: Sequence[str] = ("node-1", "node-2"),
    detector_ids: Optional[Sequence[str]] = None,
    with_history: bool = False,
    max_intake_rate: Optional[float] = None,
    trace_path: Optional[str] = None,
    drift_window: int = 0,
    drift_interval: float = 1.0,
) -> Dict[str, Any]:
    """Run the live loopback service under ``plan`` (coroutine form).

    A real :class:`MonitorDaemon` and a real :class:`HeartbeatFleet`
    exchange UDP datagrams on loopback for ``duration`` wall-clock
    seconds; chaos intake shims on both components replay the plan.

    ``trace_path`` records every span — emitter ``send`` spans included,
    the fleet shares the daemon's recorder — to a JSONL file, and the
    report then carries per-series online QoS so ``repro trace-analyze``
    output can be checked against the live accumulators.
    ``drift_window > 0`` runs the online drift monitor and appends its
    final evaluation to the report.
    """
    from repro.service.daemon import MonitorDaemon
    from repro.service.heartbeat import HeartbeatFleet

    history = None
    if with_history:
        from repro.obs.history import WindowedQosStore

        history = WindowedQosStore(":memory:", retention=3600.0)
    tracer = None
    if trace_path is not None:
        from repro.obs.trace import TraceRecorder

        tracer = TraceRecorder(trace_path)
    daemon = MonitorDaemon(
        port=0,
        http_port=None,
        eta=eta,
        detector_ids=list(detector_ids) if detector_ids else [DEFAULT_DETECTOR],
        tracer=tracer,
        history=history,
        snapshot_interval=1.0 if with_history else 0.0,
        max_intake_rate=max_intake_rate,
        drift_window=drift_window,
        drift_interval=drift_interval,
    )
    engine = ChaosEngine(plan)
    daemon_intake = attach_daemon(engine, daemon)
    await daemon.start()
    daemon_intake.arm(daemon.scheduler.now)
    host, port = daemon.udp_endpoint
    fleet = HeartbeatFleet(list(endpoints), (host, port), eta=eta, tracer=tracer)
    attach_fleet(engine, fleet)
    await fleet.start()
    try:
        # fdlint: disable=clock-discipline (live loopback scenario; duration is wall-clock by contract)
        await asyncio.sleep(duration)
        survived = daemon.running and fleet.running
        now = daemon.scheduler.now
        per_endpoint: Dict[str, Any] = {}
        for monitor in daemon.registry:
            suspecting = monitor.suspecting()
            entry: Dict[str, Any] = {
                "heartbeats": monitor.heartbeats,
                "suspecting_at_end": any(suspecting.values()),
            }
            if trace_path is not None:
                entry["qos"] = {
                    detector_id: qos_brief_live(qos)
                    for detector_id, qos in monitor.snapshot(now).items()
                }
            per_endpoint[monitor.name] = entry
        report: Dict[str, Any] = {
            "target": "daemon",
            "survived": survived,
            "chaos": engine.report(),
            "duration": duration,
            "eta": eta,
            "now": now,
            "fleet_sent": fleet.total_sent(),
            "daemon": {
                "heartbeats_total": daemon.heartbeats_total,
                "dropped_datagrams": daemon.dropped_datagrams,
                "shed_datagrams": daemon.shed_datagrams,
                "send_errors_total": daemon.send_errors_total,
                "component_restarts": dict(daemon.component_restarts),
                "uptime": max(0.0, now - daemon.started_at),
            },
            "endpoints": per_endpoint,
        }
        if trace_path is not None:
            report["trace_path"] = trace_path
        if daemon.drift is not None:
            report["drift"] = daemon.drift.evaluate(now)
        if history is not None:
            report["history"] = {
                "degraded": history.degraded,
                "degradations_total": history.degradations_total,
            }
        return report
    finally:
        await fleet.stop()
        await daemon.stop()


def qos_brief_live(qos: Any) -> Dict[str, Any]:
    """A JSON-able brief of one online accumulator snapshot."""
    t_d = qos.t_d
    t_m = qos.t_m
    return {
        "mistakes": len(qos.mistakes),
        "td_samples": len(qos.td_samples),
        "t_d_mean": t_d.mean if t_d else None,
        "t_m_mean": t_m.mean if t_m else None,
        "p_a": qos.p_a,
        "undetected_crashes": qos.undetected_crashes,
    }


def run_daemon_scenario(plan: FaultPlan, **kwargs: Any) -> Dict[str, Any]:
    """Blocking wrapper around :func:`run_daemon_scenario_async`."""
    duration = float(kwargs.get("duration", 8.0))
    return asyncio.run(
        asyncio.wait_for(
            run_daemon_scenario_async(plan, **kwargs), timeout=duration + 60.0
        )
    )


def run_kv_scenario(
    plan: FaultPlan,
    *,
    nodes: int = 3,
    clients: int = 2,
    duration: Optional[float] = None,
    eta: float = 0.1,
    detector_id: str = DEFAULT_DETECTOR,
    profile_name: str = "italy-japan",
    seed: int = 0,
    write_concern: Optional[int] = None,
    crashes: Tuple[Tuple[int, float, float], ...] = (),
) -> Dict[str, Any]:
    """Replay ``plan`` against the simulated replicated KV store.

    Defaults to full write concern (every backup acks) and no process
    crashes, so any acked-write loss or unavailability in the report is
    the plan's doing.
    """
    from repro.kv.sim import KvSimConfig, run_kv_sim

    if duration is None:
        duration = max(plan.horizon * 1.5, 60.0)
    if write_concern is None:
        write_concern = nodes - 1
    config = KvSimConfig(
        nodes=nodes,
        clients=clients,
        duration=duration,
        eta=eta,
        detector_id=detector_id,
        profile_name=profile_name,
        seed=seed,
        write_concern=write_concern,
        crashes=tuple(crashes),
        fault_plan=plan,
    )
    result = run_kv_sim(config)
    return {
        "target": "kv",
        "survived": True,
        "chaos": result.chaos,
        "duration": duration,
        "eta": eta,
        "summary": result.summary.to_dict(),
        "views": len(result.views),
        "detector_qos": {
            name: {"mistakes": len(qos.mistakes)}
            for name, qos in sorted(result.detector_qos.items())
        },
    }


__all__ = [
    "DEFAULT_DETECTOR",
    "run_daemon_scenario",
    "run_daemon_scenario_async",
    "run_kv_scenario",
    "run_sim_scenario",
]
