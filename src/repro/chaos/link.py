"""Sim-side fault injection: :class:`ChaosLink` over fair-lossy links.

A :class:`ChaosLink` wraps one :class:`~repro.net.link.FairLossyLink`
with the same ``send(datagram)`` surface and consults a shared
:class:`~repro.chaos.engine.ChaosEngine` before every transmission.
Fault semantics mirror the live shim exactly:

* drops happen before the link (the datagram never enters the loss/delay
  models, so link statistics still describe the *underlying* channel);
* extra delay defers the ``link.send`` call itself, composing with the
  link's own sampled delay;
* duplicates are independent transmissions (each samples its own delay —
  real duplicated UDP packets take independent paths);
* corruption/truncation round-trips the datagram through the wire
  encoding and :func:`~repro.net.udp.decode_datagram`; undecodable
  results are dropped, exactly as the hardened live receive path drops
  them;
* clock skew rewrites the sender timestamp field.

:func:`install_chaos` attaches one engine to a whole
:class:`~repro.neko.system.SimulatedNetwork` via its outbound filter.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.chaos.engine import ChaosEngine, Decision
from repro.neko.system import SimulatedNetwork
from repro.net.link import FairLossyLink
from repro.net.message import Datagram
from repro.net.udp import DatagramDecodeError, decode_datagram, encode_datagram


class ChaosLink:
    """A fault-injecting façade over one unidirectional sim link."""

    def __init__(self, engine: ChaosEngine, link: FairLossyLink) -> None:
        self._engine = engine
        self._link = link

    @property
    def link(self) -> FairLossyLink:
        """The wrapped fair-lossy link."""
        return self._link

    @property
    def stats(self):
        """The wrapped link's statistics (chaos drops never reach it)."""
        return self._link.stats

    def connect(self, receiver) -> None:
        """Attach the delivery callback on the wrapped link."""
        self._link.connect(receiver)

    def send(self, datagram: Datagram) -> Optional[float]:
        """Send through the plan; returns the link delay for an immediate,
        single, undelayed transmission and ``None`` otherwise."""
        now = self._link.sim.now
        decision = self._engine.decide(now, datagram.source, datagram.destination)
        if decision.drop:
            return None
        message = self._apply_payload_faults(datagram, decision)
        if message is None:
            return None
        extra = decision.extra_delay
        if decision.hold_until is not None:
            extra = max(extra, decision.hold_until - now)
        if extra <= 0 and decision.copies == 1:
            return self._link.send(message)
        for _ in range(decision.copies):
            if extra > 0:
                self._link.sim.schedule(
                    extra,
                    lambda msg=message: self._link.send(msg),
                    name=f"chaos:{message.kind}",
                )
            else:
                self._link.send(message)
        return None

    def _apply_payload_faults(
        self, datagram: Datagram, decision: Decision
    ) -> Optional[Datagram]:
        if decision.skew and datagram.timestamp is not None:
            datagram = dataclasses.replace(
                datagram, timestamp=datagram.timestamp + decision.skew
            )
        if not (decision.corrupt or decision.truncate):
            return datagram
        raw = self._engine.mangle(
            encode_datagram(datagram), decision,
            datagram.source, datagram.destination,
        )
        try:
            return decode_datagram(raw)
        except DatagramDecodeError:
            # The live receive path drops undecodable bytes; mirror it.
            self._engine.stats.undecodable += 1
            return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChaosLink(plan={self._engine.plan.name!r}, link={self._link!r})"


def install_chaos(network: SimulatedNetwork, engine: ChaosEngine) -> None:
    """Route every datagram on ``network`` through ``engine``.

    Each underlying link gets a lazily-created :class:`ChaosLink`; the
    network's own link table (and thus its statistics and delay
    recordings) is untouched.
    """
    wrappers: dict = {}

    def outbound(link: FairLossyLink, message: Datagram) -> None:
        wrapper = wrappers.get(id(link))
        if wrapper is None:
            wrapper = ChaosLink(engine, link)
            wrappers[id(link)] = wrapper
        wrapper.send(message)

    network.set_outbound_filter(outbound)


def uninstall_chaos(network: SimulatedNetwork) -> None:
    """Restore direct delivery on ``network``."""
    network.set_outbound_filter(None)


__all__ = ["ChaosLink", "install_chaos", "uninstall_chaos"]
