"""repro — reproduction of Falai & Bondavalli, "Experimental Evaluation of
the QoS of Failure Detectors on Wide Area Network" (DSN 2005).

The package implements the paper's modular adaptive push-style failure
detector (5 predictors × 6 safety margins = 30 combinations), every
substrate it runs on (a Neko-style protocol framework, a discrete-event
simulator, calibrated WAN models, an ARIMA forecasting library, NTP-style
clock synchronisation) and the full experimental methodology (NekoStat-style
event-based QoS extraction: T_D, T_D^U, T_M, T_MR, P_A).

Quick start::

    from repro import ExperimentConfig, run_qos_experiment

    config = ExperimentConfig(num_cycles=2000, mttc=120.0, ttr=20.0)
    result = run_qos_experiment(config, ["Last+JAC_med", "Mean+CI_low"])
    for detector_id, qos in result.qos.items():
        print(detector_id, qos.t_d.mean if qos.t_d else None, qos.p_a)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.neko.config import ExperimentConfig
from repro.experiments.runner import (
    AggregatedQos,
    QosRunResult,
    aggregate_runs,
    run_qos_experiment,
    run_repetitions,
)
from repro.experiments.qos import figure_data, run_figure_experiments
from repro.experiments.accuracy import (
    collect_delay_trace,
    predictor_accuracy,
    rank_predictors,
)
from repro.experiments.characterize import characterize_profile
from repro.fd.combinations import (
    MARGIN_NAMES,
    PREDICTOR_NAMES,
    all_combinations,
    combination_ids,
    make_margin,
    make_predictor,
    make_strategy,
)
from repro.fd.detector import PushFailureDetector
from repro.fd.requirements import QosRequirements, configure
from repro.fd.timeout import TimeoutStrategy
from repro.net.wan import get_profile, italy_japan_profile, lan_profile, mobile_profile

__version__ = "1.0.0"

__all__ = [
    "AggregatedQos",
    "ExperimentConfig",
    "MARGIN_NAMES",
    "PREDICTOR_NAMES",
    "PushFailureDetector",
    "QosRequirements",
    "QosRunResult",
    "TimeoutStrategy",
    "configure",
    "__version__",
    "aggregate_runs",
    "all_combinations",
    "characterize_profile",
    "collect_delay_trace",
    "combination_ids",
    "figure_data",
    "get_profile",
    "italy_japan_profile",
    "lan_profile",
    "make_margin",
    "make_predictor",
    "make_strategy",
    "mobile_profile",
    "predictor_accuracy",
    "rank_predictors",
    "run_figure_experiments",
    "run_qos_experiment",
    "run_repetitions",
]
