"""NTP-style clock synchronisation.

The paper keeps the monitor's and the monitored process's clocks aligned by
running NTP against two stratum servers (one per country).  Here we model
the essential mechanism: the client exchanges a request/response pair with a
reference server and applies the standard NTP offset estimator

    offset = ((t1 - t0) + (t2 - t3)) / 2

where ``t0``/``t3`` are the client's send/receive local timestamps and
``t1``/``t2`` the server's receive/send local timestamps.  The estimator is
exact when the path is symmetric; path asymmetry leaks into the estimated
offset — which is precisely the residual synchronisation error the paper's
``T_D`` measurements carry.

:class:`NtpSynchronizer` polls periodically, keeps the best-of-window sample
(the classic minimum-delay filter), and steps a :class:`DriftingClock`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.clocks.clock import DriftingClock
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicTimer


@dataclass(frozen=True)
class NtpSample:
    """One request/response measurement.

    Attributes follow RFC 5905 naming: ``t0`` origin, ``t1`` receive,
    ``t2`` transmit, ``t3`` destination timestamp.  ``offset`` and
    ``round_trip`` are the derived quantities.
    """

    t0: float
    t1: float
    t2: float
    t3: float

    @property
    def offset(self) -> float:
        """Estimated server-minus-client clock offset, in seconds."""
        return ((self.t1 - self.t0) + (self.t2 - self.t3)) / 2.0

    @property
    def round_trip(self) -> float:
        """Measured round-trip delay excluding server processing time."""
        return (self.t3 - self.t0) - (self.t2 - self.t1)


class NtpSynchronizer:
    """Periodically disciplines a client clock against a reference clock.

    Parameters
    ----------
    sim:
        The simulation engine.
    client:
        The clock to discipline.  Must be a :class:`DriftingClock` (a
        :class:`PerfectClock` has nothing to correct).
    server_now:
        Callable returning the reference (server) local time; with a
        perfect server this is just global time.
    delay_out, delay_back:
        Callables producing the one-way network delays of the request and
        the response.  Asymmetry between them biases the offset estimate by
        half the difference — the fundamental NTP limitation.
    poll_interval:
        Seconds between synchronisation rounds.
    samples_per_round:
        Number of request/response exchanges per round; the sample with the
        smallest round-trip wins (minimum-delay clock filter).
    """

    def __init__(
        self,
        sim: Simulator,
        client: DriftingClock,
        server_now: Callable[[float], float],
        delay_out: Callable[[], float],
        delay_back: Callable[[], float],
        *,
        poll_interval: float = 64.0,
        samples_per_round: int = 4,
    ) -> None:
        if samples_per_round < 1:
            raise ValueError(f"samples_per_round must be >= 1, got {samples_per_round}")
        self._sim = sim
        self._client = client
        self._server_now = server_now
        self._delay_out = delay_out
        self._delay_back = delay_back
        self._samples_per_round = samples_per_round
        self._history: List[NtpSample] = []
        self._corrections: List[float] = []
        self._timer = PeriodicTimer(sim, poll_interval, self._round, name="ntp-poll")

    @property
    def history(self) -> List[NtpSample]:
        """All samples collected, oldest first."""
        return list(self._history)

    @property
    def corrections(self) -> List[float]:
        """Offset corrections applied, one per completed round."""
        return list(self._corrections)

    def start(self) -> None:
        """Begin periodic synchronisation (first round fires immediately)."""
        self._timer.start()

    def stop(self) -> None:
        """Stop periodic synchronisation."""
        self._timer.stop()

    def sample_once(self) -> NtpSample:
        """Perform one instantaneous request/response exchange.

        The exchange is computed analytically rather than with simulated
        message events: the delays are drawn now and the four timestamps
        reconstructed.  This keeps NTP traffic from perturbing the event
        ordering of the experiment proper while preserving its estimation
        error characteristics exactly.
        """
        g0 = self._sim.now
        out = self._delay_out()
        back = self._delay_back()
        if out < 0 or back < 0:
            raise ValueError("NTP path delays must be non-negative")
        t0 = self._client.local_from_global(g0)
        t1 = self._server_now(g0 + out)
        t2 = t1  # zero server processing time
        t3 = self._client.local_from_global(g0 + out + back)
        sample = NtpSample(t0=t0, t1=t1, t2=t2, t3=t3)
        self._history.append(sample)
        return sample

    def _round(self, _tick: int) -> None:
        samples = [self.sample_once() for _ in range(self._samples_per_round)]
        best = min(samples, key=lambda s: s.round_trip)
        self._client.adjust(best.offset)
        self._corrections.append(best.offset)


class DisciplinedClock(DriftingClock):
    """A drifting clock bundled with its own NTP synchroniser.

    Convenience wrapper: ``DisciplinedClock(sim, offset, drift, ...)`` builds
    the clock and the synchroniser in one go; call :meth:`start_sync` before
    running the simulation.
    """

    def __init__(
        self,
        sim: Simulator,
        offset: float,
        drift: float,
        delay_out: Callable[[], float],
        delay_back: Callable[[], float],
        *,
        poll_interval: float = 64.0,
        samples_per_round: int = 4,
    ) -> None:
        super().__init__(sim, offset=offset, drift=drift)
        self._synchronizer = NtpSynchronizer(
            sim,
            self,
            server_now=lambda t: t,  # reference server reads true global time
            delay_out=delay_out,
            delay_back=delay_back,
            poll_interval=poll_interval,
            samples_per_round=samples_per_round,
        )

    @property
    def synchronizer(self) -> NtpSynchronizer:
        """The NTP synchroniser disciplining this clock."""
        return self._synchronizer

    def start_sync(self) -> None:
        """Begin periodic NTP synchronisation."""
        self._synchronizer.start()

    def stop_sync(self) -> None:
        """Stop periodic NTP synchronisation."""
        self._synchronizer.stop()


__all__ = ["DisciplinedClock", "NtpSample", "NtpSynchronizer"]
