"""Local clock models.

A :class:`Clock` maps *global* (simulator) time to the *local* time a
process reads.  Timestamps placed in messages are local readings; the QoS
metrics of the paper (notably the detection time ``T_D``) compare events on
two different sites and therefore depend on how far the two local clocks
disagree.
"""

from __future__ import annotations

import abc

from repro.sim.engine import Simulator


class Clock(abc.ABC):
    """Abstract local clock over a simulator's global time base."""

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim

    @property
    def sim(self) -> Simulator:
        """The simulator whose virtual time this clock observes."""
        return self._sim

    def now(self) -> float:
        """The current local reading, in seconds."""
        return self.local_from_global(self._sim.now)

    @abc.abstractmethod
    def local_from_global(self, t: float) -> float:
        """Map a global instant to this clock's local reading."""

    @abc.abstractmethod
    def global_from_local(self, local: float) -> float:
        """Map a local reading back to the global instant (inverse)."""


class PerfectClock(Clock):
    """A clock that reads global time exactly.

    This realises the paper's synchronised-clocks assumption
    (offset = 0, drift = 0).
    """

    def local_from_global(self, t: float) -> float:
        return t

    def global_from_local(self, local: float) -> float:
        return local

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PerfectClock()"


class DriftingClock(Clock):
    """A hardware clock with a constant offset and frequency drift.

    ``local(t) = (1 + drift) * t + offset``.  A drift of ``1e-5`` means the
    clock gains 10 microseconds per second (about 0.86 s/day) — a realistic
    magnitude for an undisciplined PC oscillator.
    """

    def __init__(self, sim: Simulator, offset: float = 0.0, drift: float = 0.0) -> None:
        super().__init__(sim)
        if drift <= -1.0:
            raise ValueError(f"drift must be > -1 (clock must move forward), got {drift!r}")
        self._offset = float(offset)
        self._drift = float(drift)

    @property
    def offset(self) -> float:
        """The constant offset from global time, in seconds."""
        return self._offset

    @property
    def drift(self) -> float:
        """The fractional frequency error (dimensionless)."""
        return self._drift

    def adjust(self, offset_correction: float) -> None:
        """Step the clock by ``offset_correction`` seconds.

        This is how an NTP synchroniser disciplines the clock; the drift is
        a physical property of the oscillator and is not changed.
        """
        self._offset += float(offset_correction)

    def local_from_global(self, t: float) -> float:
        return (1.0 + self._drift) * t + self._offset

    def global_from_local(self, local: float) -> float:
        return (local - self._offset) / (1.0 + self._drift)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DriftingClock(offset={self._offset!r}, drift={self._drift!r})"


__all__ = ["Clock", "DriftingClock", "PerfectClock"]
