"""Clock substrate: local clocks with offset/drift and NTP-style sync.

The paper assumes the monitor's and the monitored process's clocks are
synchronised (it uses NTP against two stratum servers).  This package lets
the reproduction both honour that assumption (:class:`PerfectClock`) and
probe its cost: a :class:`DriftingClock` models a hardware clock with a
constant offset and a frequency drift, and :mod:`repro.clocks.ntp` provides
an NTP-like offset estimator and a disciplined clock built from it.
"""

from repro.clocks.clock import Clock, DriftingClock, PerfectClock
from repro.clocks.ntp import DisciplinedClock, NtpSample, NtpSynchronizer

__all__ = [
    "Clock",
    "DisciplinedClock",
    "DriftingClock",
    "NtpSample",
    "NtpSynchronizer",
    "PerfectClock",
]
