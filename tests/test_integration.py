"""End-to-end integration tests reproducing the paper's qualitative claims
on small-but-significant runs."""

import math

import pytest

from repro.experiments.accuracy import collect_delay_trace, predictor_accuracy
from repro.experiments.qos import figure_data
from repro.experiments.runner import aggregate_runs, run_qos_experiment, run_repetitions
from repro.fd.combinations import combination_ids
from repro.neko.config import ExperimentConfig


@pytest.fixture(scope="module")
def full_run():
    """One 4000-cycle run with all 30 combinations (module-scoped: ~4 s)."""
    config = ExperimentConfig(num_cycles=4000, mttc=100.0, ttr=15.0, seed=11)
    return run_qos_experiment(config)


class TestThirtyDetectors:
    def test_all_thirty_evaluated(self, full_run):
        assert set(full_run.qos) == set(combination_ids())

    def test_every_crash_detected_by_everyone(self, full_run):
        for detector_id, qos in full_run.qos.items():
            assert qos.undetected_crashes == 0, detector_id
            assert len(qos.td_samples) == full_run.crashes

    def test_fair_comparison_identical_crash_exposure(self, full_run):
        # MultiPlexer guarantee: every detector faces the same crashes.
        sample_counts = {len(q.td_samples) for q in full_run.qos.values()}
        assert len(sample_counts) == 1

    def test_detection_times_of_order_eta(self, full_run):
        # T_D ~ eta/2 + delay + timeout: well below 2 s for every detector.
        for detector_id, qos in full_run.qos.items():
            assert 0.2 < qos.t_d.mean < 2.0, detector_id

    def test_availability_high_for_all(self, full_run):
        for detector_id, qos in full_run.qos.items():
            assert qos.p_a > 0.98, detector_id
            assert qos.empirical_p_a > 0.98, detector_id


class TestPaperClaims:
    """The qualitative results of Sections 5.2/6 on the calibrated path."""

    def test_bigger_margin_fewer_mistakes(self, full_run):
        # gamma_low -> gamma_high monotonically reduces mistakes (paper:
        # "using a higher gamma implies a higher time-out").
        data = figure_data(full_run.qos, "tmr")
        for predictor in ("Last", "Mean", "Arima"):
            assert (
                data[predictor]["CI_low"]
                < data[predictor]["CI_med"]
                < data[predictor]["CI_high"]
            )

    def test_tm_and_tmr_move_together(self, full_run):
        # Paper: "values obtained for T_M and T_MR are strongly correlated".
        tm = figure_data(full_run.qos, "tm")
        tmr = figure_data(full_run.qos, "tmr")
        pairs = [
            (tm[p][m], tmr[p][m])
            for p in tm
            for m in tm[p]
            if not math.isnan(tm[p][m]) and not math.isnan(tmr[p][m])
        ]
        n = len(pairs)
        mean_x = sum(x for x, _ in pairs) / n
        mean_y = sum(y for _, y in pairs) / n
        cov = sum((x - mean_x) * (y - mean_y) for x, y in pairs)
        var_x = sum((x - mean_x) ** 2 for x, _ in pairs)
        var_y = sum((y - mean_y) ** 2 for _, y in pairs)
        correlation = cov / math.sqrt(var_x * var_y)
        assert correlation > 0.7

    def test_ci_margins_are_predictor_independent_for_delay(self, full_run):
        # With SM_CI the time-out is prediction + network-based margin, so
        # mean detection delays across predictors stay within a few ms.
        data = figure_data(full_run.qos, "td")
        values = [data[p]["CI_med"] for p in data]
        assert max(values) - min(values) < 0.02

    def test_arima_accuracy_best_with_ci_worst_with_jac(self, full_run):
        # Paper: "ARIMA provides the best values in the left side of the
        # figure and values among the worst in the right side".
        tmr = figure_data(full_run.qos, "tmr")
        predictors = list(tmr)
        rank_ci = sorted(predictors, key=lambda p: -tmr[p]["CI_low"])
        rank_jac = sorted(predictors, key=lambda p: -tmr[p]["JAC_high"])
        assert rank_ci.index("Arima") <= 1          # top-2 most accurate
        assert rank_jac.index("Arima") >= len(predictors) - 3  # bottom-3

    def test_mean_predictor_worst_delay_with_jac(self, full_run):
        # Paper Fig. 4: MEAN gives the longest detection time; with SM_JAC
        # the margin tracks MEAN's large persistent errors.
        data = figure_data(full_run.qos, "td")
        mean_td = data["Mean"]["JAC_high"]
        for predictor in ("Arima", "Last", "LPF", "WinMean"):
            assert mean_td >= data[predictor]["JAC_high"] - 1e-4

    def test_accuracy_delay_tradeoff_exists(self, full_run):
        # No combination achieves both the best delay and the best T_MR
        # (paper: "a perfect solution for failure detection does not exist").
        td = figure_data(full_run.qos, "td")
        tmr = figure_data(full_run.qos, "tmr")
        flat_td = {(p, m): td[p][m] for p in td for m in td[p]}
        flat_tmr = {(p, m): tmr[p][m] for p in tmr for m in tmr[p]}
        best_delay = min(flat_td, key=flat_td.get)
        best_accuracy = max(flat_tmr, key=flat_tmr.get)
        assert best_delay != best_accuracy


class TestMultiRunAggregation:
    def test_three_runs_pool_cleanly(self):
        config = ExperimentConfig(num_cycles=800, mttc=80.0, ttr=15.0, seed=21)
        detectors = ["Last+JAC_med", "Arima+CI_low", "Mean+CI_high"]
        pooled = aggregate_runs(run_repetitions(config, 3, detectors))
        for detector_id in detectors:
            aggregate = pooled[detector_id]
            assert len(aggregate.td_samples) >= 15
            assert aggregate.t_d is not None
            assert 0.0 <= aggregate.p_a <= 1.0

    def test_pooled_ci_narrower_than_single_run(self):
        config = ExperimentConfig(num_cycles=800, mttc=80.0, ttr=15.0, seed=22)
        detectors = ["Last+JAC_med"]
        results = run_repetitions(config, 3, detectors)
        single = results[0].qos["Last+JAC_med"].t_d
        pooled = aggregate_runs(results)["Last+JAC_med"].t_d
        assert pooled.ci_half_width < single.ci_half_width


class TestAccuracyIntegration:
    def test_table3_stable_across_seeds(self):
        for seed in (1, 2):
            trace = collect_delay_trace(count=15000, seed=seed)
            accuracy = predictor_accuracy(trace)
            assert min(accuracy, key=accuracy.get) == "Arima"
