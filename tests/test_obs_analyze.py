"""Trace-driven analysis: loading, hop joins, QoS-from-spans, post-mortems.

The unit layer builds synthetic span streams by hand (so every join and
boundary is exact); the equivalence layer replays the same synthetic
transitions through a live :class:`OnlineQosAccumulator` and asserts the
span replay matches it; the CLI layer drives ``repro trace-analyze`` and
``repro postmortem`` end to end over JSONL files.  The live acceptance
test (a chaos-scenario daemon run whose trace reproduces the online
accumulators) lives in ``tests/test_chaos_live.py`` with the other
network-marked scenarios.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.nekostat.metrics import OnlineQosAccumulator
from repro.obs import TraceRecorder, WindowedQosStore
from repro.obs.analyze import (
    HOPS,
    analyze,
    cross_check,
    history_reference,
    hop_breakdown,
    load_events,
    post_mortems,
    qos_from_spans,
    read_trace_file,
    rotated_paths,
)

pytestmark = pytest.mark.obs


def span(t, kind, endpoint, **extra):
    record = {"t": t, "kind": kind, "endpoint": endpoint}
    record.update(extra)
    return record


def heartbeat_journey(endpoint, seq, send_t, *, delay=0.1, route=0.001,
                      decide=0.002, detector="fd"):
    """The four spans of one clean heartbeat through the pipeline."""
    receive_t = send_t + delay
    fanout_t = receive_t + route
    decide_t = fanout_t + decide
    return [
        span(send_t, "send", endpoint, seq=seq),
        span(receive_t, "receive", endpoint, seq=seq, delay=delay),
        span(fanout_t, "fanout", endpoint, seq=seq),
        span(decide_t, "freshness", endpoint, seq=seq, detector=detector,
             timeout=0.3, deadline=decide_t + 1.0),
    ]


class TestLoading:
    def test_rotated_paths_orders_oldest_first(self, tmp_path):
        live = tmp_path / "trace.jsonl"
        for name in ("trace.jsonl", "trace.jsonl.1", "trace.jsonl.2"):
            (tmp_path / name).write_text("")
        assert rotated_paths(str(live)) == [
            str(tmp_path / "trace.jsonl.2"),
            str(tmp_path / "trace.jsonl.1"),
            str(live),
        ]

    def test_read_trace_spans_rotation_boundary(self, tmp_path):
        """Events written across a rotation read back in emit order."""
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(str(path), max_bytes=4096, backups=2)
        padding = "x" * 100
        total = 300
        for i in range(total):
            recorder.emit(float(i), "send", padding, seq=i)
        recorder.close()
        assert recorder.rotations_total >= 1
        events = read_trace_file(str(path))
        seqs = [e["seq"] for e in events]
        # Generations beyond the backup budget are gone, but what
        # survives is contiguous and ends at the newest event.
        assert seqs == list(range(seqs[0], total))

    def test_read_trace_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps(span(1.0, "send", "q", seq=0)) + "\n"
            + '{"t": 2.0, "kind": "se'  # interrupted writer
        )
        events = read_trace_file(str(path))
        assert len(events) == 1 and events[0]["seq"] == 0

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_trace_file(str(tmp_path / "nope.jsonl"))
        with pytest.raises(ValueError):
            load_events([])

    def test_merge_sorts_by_time_stably(self, tmp_path):
        daemon_trace = tmp_path / "fd.jsonl"
        emitter_trace = tmp_path / "hb.jsonl"
        daemon_trace.write_text(
            "".join(json.dumps(span(t, "receive", "q", seq=i, delay=0.1))
                    + "\n" for i, t in enumerate((1.1, 2.1)))
        )
        emitter_trace.write_text(
            "".join(json.dumps(span(t, "send", "q", seq=i)) + "\n"
                    for i, t in enumerate((1.0, 2.0)))
        )
        merged = load_events([str(daemon_trace), str(emitter_trace)])
        assert [e["kind"] for e in merged] == [
            "send", "receive", "send", "receive",
        ]


class TestHopBreakdown:
    def test_clean_journeys_produce_all_hops(self):
        events = []
        for seq in range(20):
            events.extend(heartbeat_journey("q", seq, float(seq)))
        hops = hop_breakdown(events)["q"]
        assert set(hops) == set(HOPS)
        assert hops["emit_to_intake"].count == 20
        assert hops["emit_to_intake"].p50 == pytest.approx(0.1)
        assert hops["intake_to_fanout"].p50 == pytest.approx(0.001)
        assert hops["fanout_to_decision"].p50 == pytest.approx(0.002)
        assert hops["total"].p50 == pytest.approx(0.103)
        assert hops["total"].maximum >= hops["total"].p99 >= hops["total"].p50

    def test_emit_time_recovered_from_receive_delay(self):
        """Daemon-only traces (no send spans) still yield the network hop."""
        events = []
        for seq in range(5):
            events.extend(heartbeat_journey("q", seq, float(seq))[1:])
        hops = hop_breakdown(events)["q"]
        assert hops["emit_to_intake"].count == 5
        assert hops["emit_to_intake"].p50 == pytest.approx(0.1)
        assert hops["total"].p50 == pytest.approx(0.103)

    def test_freshness_per_detector_each_sampled(self):
        events = heartbeat_journey("q", 0, 0.0)
        # A second detector consumes the same heartbeat a bit later.
        events.append(span(0.105, "freshness", "q", seq=0, detector="fd2",
                           timeout=0.3, deadline=1.105))
        hops = hop_breakdown(events)["q"]
        assert hops["fanout_to_decision"].count == 2

    def test_incomplete_journeys_are_skipped(self):
        events = [span(0.0, "send", "q", seq=0)]  # never received
        assert hop_breakdown(events) == {}


class TestQosFromSpans:
    def test_replay_matches_online_accumulator(self):
        """The heart of the tentpole: spans alone reproduce the live QoS."""
        transitions = [
            (2.0, "suspect"), (2.5, "trust"),        # mistake
            (5.0, "crash"), (5.8, "suspect"),        # detection
            (9.0, "restore"), (9.1, "trust"),
            (11.0, "suspect"), (11.2, "trust"),      # second mistake
        ]
        events = [span(0.0, "fanout", "q", seq=0)]
        live = OnlineQosAccumulator("fd", start_time=2.0)
        for t, kind in transitions:
            detector = "" if kind in ("crash", "restore") else "fd"
            events.append(span(t, kind, "q", detector=detector, seq=1))
            getattr(live, f"observe_{kind}")(t)
        replayed = qos_from_spans(events, end_time=15.0)
        assert set(replayed) == {("q", "fd")}
        result = replayed[("q", "fd")]
        expected = live.snapshot(15.0)
        assert result.qos.td_samples == expected.td_samples
        assert len(result.qos.mistakes) == len(expected.mistakes)
        assert result.qos.p_a == pytest.approx(expected.p_a)
        assert result.qos.up_time == pytest.approx(expected.up_time)
        assert not result.suspecting_at_end
        assert result.inconsistencies == 0

    def test_crash_fans_out_to_detector_seen_later(self):
        """A crash span precedes the detector's first transition: the
        second discovery pass must still deliver it to that series."""
        events = [
            span(1.0, "crash", "q"),
            span(1.4, "suspect", "q", detector="fd"),
            span(3.0, "restore", "q"),
            span(3.1, "trust", "q", detector="fd"),
        ]
        result = qos_from_spans(events, end_time=5.0)[("q", "fd")]
        assert result.qos.td_samples == pytest.approx([0.4])
        assert result.qos.mistakes == []

    def test_detector_filter(self):
        events = [
            span(1.0, "suspect", "q", detector="fd"),
            span(1.5, "trust", "q", detector="fd"),
            span(1.0, "suspect", "q", detector="other"),
            span(1.5, "trust", "q", detector="other"),
        ]
        replayed = qos_from_spans(events, detectors=["fd"])
        assert set(replayed) == {("q", "fd")}

    def test_out_of_order_transition_counted_not_fatal(self):
        events = [
            span(2.0, "suspect", "q", detector="fd"),
            span(1.0, "trust", "q", detector="fd"),  # goes backwards
            span(3.0, "trust", "q", detector="fd"),
        ]
        result = qos_from_spans(events, end_time=4.0)[("q", "fd")]
        assert result.inconsistencies == 1
        assert len(result.qos.mistakes) == 1


class TestPostMortems:
    def _mistake_trace(self):
        events = heartbeat_journey("q", 7, 0.0)
        deadline = events[-1]["deadline"]  # 1.103
        events.append(span(deadline, "suspect", "q", detector="fd", seq=7))
        # The resolving heartbeat limped in 0.4s past the freshness point
        # with a 0.5s one-way delay: 0.1s less delay would have saved it.
        events.append(span(deadline + 0.4, "receive", "q", seq=8, delay=0.5))
        events.append(span(deadline + 0.401, "trust", "q", detector="fd",
                           seq=8))
        return events, deadline

    def test_mistake_post_mortem_reconstructs_cause(self):
        events, deadline = self._mistake_trace()
        [mortem] = post_mortems(events)
        assert mortem.kind == "mistake"
        assert mortem.freshness_seq == 7
        assert mortem.prediction == pytest.approx(0.3)
        assert mortem.deadline == pytest.approx(deadline)
        assert mortem.duration == pytest.approx(0.401)
        assert mortem.margin == pytest.approx(0.4)
        [preventer] = mortem.preventers
        assert preventer["seq"] == 8
        assert preventer["late_by"] == pytest.approx(0.4)
        assert preventer["preventing_delay"] == pytest.approx(0.1)

    def test_crash_detection_is_not_a_mistake(self):
        events = [
            span(1.0, "crash", "q"),
            span(1.9, "suspect", "q", detector="fd", seq=3),
        ]
        [mortem] = post_mortems(events)
        assert mortem.kind == "detection"
        assert mortem.trust_t is None and mortem.duration is None

    def test_endpoint_and_detector_filters(self):
        events, _ = self._mistake_trace()
        assert post_mortems(events, endpoint="other") == []
        assert post_mortems(events, detector="other") == []
        assert len(post_mortems(events, endpoint="q", detector="fd")) == 1


class TestAnalyzeAndCrossCheck:
    def test_analyze_aggregates_everything(self):
        events, _ = TestPostMortems()._mistake_trace()
        analysis = analyze(events, end_time=3.0)
        assert analysis.events_total == len(events)
        assert analysis.kinds["suspect"] == 1
        assert analysis.time_span[0] == 0.0
        assert ("q", "fd") in analysis.qos
        assert len(analysis.mortems) == 1
        document = analysis.to_dict()
        assert document["qos"]["q"]["fd"]["mistakes"] == 1
        json.dumps(document)  # JSON-able end to end

    def test_cross_check_agrees_with_identical_reference(self):
        events, _ = TestPostMortems()._mistake_trace()
        analysis = analyze(events, end_time=3.0)
        reference = {("q", "fd"): analysis.qos[("q", "fd")].qos}
        assert cross_check(analysis, reference) == []

    def test_cross_check_flags_count_and_pa_disagreement(self):
        events, _ = TestPostMortems()._mistake_trace()
        analysis = analyze(events, end_time=3.0)
        other = OnlineQosAccumulator("fd", start_time=0.0)
        other.observe_suspect(1.0)
        other.observe_trust(1.2)
        other.observe_suspect(2.0)
        other.observe_trust(2.8)
        problems = cross_check(
            analysis, {("q", "fd"): other.snapshot(3.0)}
        )
        assert any("mistakes" in p for p in problems)
        assert any("P_A" in p for p in problems)

    def test_cross_check_missing_series(self):
        analysis = analyze([], end_time=1.0)
        busy = OnlineQosAccumulator("fd", start_time=0.0)
        busy.observe_suspect(0.5)
        busy.observe_trust(0.6)
        problems = cross_check(analysis, {("q", "fd"): busy.snapshot(1.0)})
        assert problems == ["q/fd: missing from trace"]

    def test_history_reference_takes_newest_snapshot(self):
        store = WindowedQosStore()
        accumulator = OnlineQosAccumulator("fd")
        accumulator.observe_suspect(1.0)
        accumulator.observe_trust(2.0)
        store.record_snapshot("q", "fd", 3.0, accumulator.snapshot(3.0))
        store.record_snapshot("q", "fd", 6.0, accumulator.snapshot(6.0))
        reference = history_reference(store)
        assert set(reference) == {("q", "fd")}
        assert reference[("q", "fd")].observation_time == pytest.approx(6.0)
        store.close()


class TestCli:
    def _write_trace(self, tmp_path):
        events, _ = TestPostMortems()._mistake_trace()
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "".join(json.dumps(event) + "\n" for event in events)
        )
        return str(path)

    def test_trace_analyze_text(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert cli_main(["trace-analyze", "--input", path]) == 0
        out = capsys.readouterr().out
        assert "per-hop latency" in out
        assert "emit_to_intake" in out
        assert "QoS replayed from spans" in out
        assert "post-mortems: 1 suspicions (1 mistakes)" in out

    def test_trace_analyze_json(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert cli_main(["trace-analyze", "--input", path, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["qos"]["q"]["fd"]["mistakes"] == 1
        assert document["hops"]["q"]["emit_to_intake"]["count"] >= 1

    def test_trace_analyze_cross_check_roundtrip(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        db = str(tmp_path / "qos.sqlite")
        store = WindowedQosStore(db)
        mirror = OnlineQosAccumulator("fd", start_time=1.103)
        mirror.observe_suspect(1.103)
        mirror.observe_trust(1.504)
        store.record_snapshot("q", "fd", 1.504, mirror.snapshot(1.504))
        store.close()
        assert cli_main([
            "trace-analyze", "--input", path, "--end", "1.504",
            "--history-db", db,
        ]) == 0
        assert "1 series agree" in capsys.readouterr().out

    def test_cross_check_defaults_end_to_history_newest_time(
        self, tmp_path, capsys
    ):
        """A daemon that outlives the last span leaves open suspicions
        accruing wall time until its shutdown snapshot; without --end
        the replay must close at the store's newest recorded time, not
        at the last span, or every open interval disagrees."""
        events, _ = TestPostMortems()._mistake_trace()
        events.append(span(2.0, "suspect", "q", detector="fd", seq=9))
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "".join(json.dumps(event) + "\n" for event in events)
        )
        db = str(tmp_path / "qos.sqlite")
        store = WindowedQosStore(db)
        mirror = OnlineQosAccumulator("fd", start_time=1.103)
        mirror.observe_suspect(1.103)
        mirror.observe_trust(1.504)
        mirror.observe_suspect(2.0)
        store.record_snapshot("q", "fd", 5.0, mirror.snapshot(5.0))
        store.close()
        assert cli_main([
            "trace-analyze", "--input", str(path), "--history-db", db,
        ]) == 0
        assert "1 series agree" in capsys.readouterr().out

    def test_trace_analyze_cross_check_disagreement_exits_1(
        self, tmp_path, capsys
    ):
        path = self._write_trace(tmp_path)
        db = str(tmp_path / "qos.sqlite")
        store = WindowedQosStore(db)
        liar = OnlineQosAccumulator("fd", start_time=0.0)
        store.record_snapshot("q", "fd", 3.0, liar.snapshot(3.0))
        store.close()
        assert cli_main([
            "trace-analyze", "--input", path, "--history-db", db,
        ]) == 1
        assert "disagreement" in capsys.readouterr().out

    def test_trace_analyze_missing_input(self, tmp_path, capsys):
        assert cli_main([
            "trace-analyze", "--input", str(tmp_path / "nope.jsonl"),
        ]) == 2
        assert "error" in capsys.readouterr().err

    def test_postmortem_text_and_json(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert cli_main(["postmortem", "--input", path]) == 0
        out = capsys.readouterr().out
        assert "mistake q/fd" in out
        assert "would have prevented" in out
        assert cli_main(["postmortem", "--input", path, "--json"]) == 0
        [line] = capsys.readouterr().out.strip().splitlines()
        mortem = json.loads(line)
        assert mortem["endpoint"] == "q"
        assert mortem["margin"] == pytest.approx(0.4)

    def test_postmortem_filters_and_limit(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert cli_main([
            "postmortem", "--input", path, "--endpoint", "other",
        ]) == 0
        assert "no suspicions" in capsys.readouterr().out
        assert cli_main([
            "postmortem", "--input", path, "--limit", "1", "--json",
        ]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 1
