"""Tests for the predictor/margin plugin registry."""

import numpy as np
import pytest

from repro.fd.predictors import Predictor
from repro.fd.registry import (
    MedianPredictor,
    make_registered_margin,
    make_registered_predictor,
    make_registered_strategy,
    register_margin,
    register_predictor,
    registered_margins,
    registered_predictors,
)
from repro.fd.safety import ConstantMargin


class TestRegistry:
    def test_stock_names_resolve(self):
        predictor = make_registered_predictor("Last")
        assert predictor.name == "Last"
        margin = make_registered_margin("CI_low")
        assert margin.gamma == 1.0

    def test_median_is_preregistered(self):
        assert "Median" in registered_predictors()
        predictor = make_registered_predictor("Median")
        assert isinstance(predictor, MedianPredictor)

    def test_custom_registration(self):
        class DoubleLast(Predictor):
            name = "DoubleLast-test"

            def __init__(self):
                super().__init__()
                self._last = 0.0

            def _observe(self, value):
                self._last = value

            def _predict(self):
                return 2.0 * self._last

            def _reset(self):
                self._last = 0.0

        register_predictor("DoubleLast-test", lambda: DoubleLast())
        predictor = make_registered_predictor("DoubleLast-test")
        predictor.observe(0.2)
        assert predictor.predict() == pytest.approx(0.4)
        assert "DoubleLast-test" in registered_predictors()

    def test_custom_margin_registration(self):
        register_margin("Const50-test", lambda: ConstantMargin(0.05))
        margin = make_registered_margin("Const50-test")
        assert margin.current() == 0.05
        assert margin.name == "Const50-test"
        assert "Const50-test" in registered_margins()

    def test_stock_names_cannot_be_shadowed(self):
        with pytest.raises(ValueError):
            register_predictor("Last", lambda: None)
        with pytest.raises(ValueError):
            register_margin("CI_low", lambda: None)

    def test_duplicate_registration_rejected(self):
        register_predictor("Dup-test", lambda: MedianPredictor())
        with pytest.raises(ValueError):
            register_predictor("Dup-test", lambda: MedianPredictor())

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_predictor("", lambda: None)
        with pytest.raises(ValueError):
            register_margin("", lambda: None)

    def test_mixed_strategy(self):
        strategy = make_registered_strategy("Median", "JAC_med")
        assert strategy.name == "Median+JAC_med"
        strategy.observe(0.2)
        assert strategy.timeout() > 0


class TestMedianPredictor:
    def test_median_of_window(self):
        predictor = MedianPredictor(window=3)
        for value in [0.1, 0.9, 0.2]:
            predictor.observe(value)
        assert predictor.predict() == pytest.approx(0.2)

    def test_even_window_averages_middle(self):
        predictor = MedianPredictor(window=4)
        for value in [0.1, 0.2, 0.3, 0.4]:
            predictor.observe(value)
        assert predictor.predict() == pytest.approx(0.25)

    def test_window_slides(self):
        predictor = MedianPredictor(window=3)
        for value in [9.0, 0.1, 0.2, 0.3]:
            predictor.observe(value)
        assert predictor.predict() == pytest.approx(0.2)

    def test_robust_to_spikes(self):
        median = MedianPredictor(window=11)
        rng = np.random.default_rng(1)
        for _ in range(50):
            median.observe(0.2 + rng.normal(0, 0.001))
        median.observe(5.0)  # a huge spike
        assert median.predict() == pytest.approx(0.2, abs=0.01)

    def test_matches_numpy_median(self):
        rng = np.random.default_rng(2)
        values = rng.uniform(0.1, 0.4, 200)
        predictor = MedianPredictor(window=25)
        for value in values:
            predictor.observe(value)
        assert predictor.predict() == pytest.approx(np.median(values[-25:]))

    def test_reset(self):
        predictor = MedianPredictor(window=3)
        predictor.observe(0.5)
        predictor.reset()
        assert predictor.predict() == 0.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            MedianPredictor(window=0)

    def test_better_than_winmean_on_spiky_path(self):
        from repro.experiments.accuracy import collect_delay_trace
        from repro.fd.combinations import make_predictor
        from repro.timeseries.base import evaluate_forecaster

        trace = collect_delay_trace(count=8000, seed=6)
        median_msq, _ = evaluate_forecaster(
            MedianPredictor(window=11), trace.delays, warmup=1
        )
        winmean_msq, _ = evaluate_forecaster(
            make_predictor("WinMean"), trace.delays, warmup=1
        )
        # On the spiky WAN path the robust median is competitive with the
        # windowed mean (within 20%), typically beating it.
        assert median_msq < winmean_msq * 1.2
