"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fd.combinations import make_margin, make_predictor, make_strategy
from repro.fd.predictors import (
    LastPredictor,
    LpfPredictor,
    MeanPredictor,
    WinMeanPredictor,
)
from repro.nekostat.events import EventKind, StatEvent
from repro.nekostat.log import EventLog
from repro.nekostat.metrics import extract_qos
from repro.nekostat.stats import Welford, summarize
from repro.sim.engine import Simulator
from repro.timeseries.arima import difference, undifference_forecast

delays = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False), min_size=1, max_size=200
)
finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestPredictorProperties:
    @given(delays)
    def test_mean_predictor_equals_numpy_mean(self, values):
        predictor = MeanPredictor()
        for value in values:
            predictor.observe(value)
        assert predictor.predict() == pytest_approx(np.mean(values))

    @given(delays, st.integers(min_value=1, max_value=50))
    def test_winmean_equals_tail_mean(self, values, window):
        predictor = WinMeanPredictor(window=window)
        for value in values:
            predictor.observe(value)
        assert predictor.predict() == pytest_approx(np.mean(values[-window:]))

    @given(delays)
    def test_last_predictor_is_last(self, values):
        predictor = LastPredictor()
        for value in values:
            predictor.observe(value)
        assert predictor.predict() == values[-1]

    @given(delays)
    def test_lpf_bounded_by_observation_range(self, values):
        predictor = LpfPredictor(beta=0.125)
        for value in values:
            predictor.observe(value)
        assert min(values) - 1e-9 <= predictor.predict() <= max(values) + 1e-9

    @given(delays)
    def test_predictions_always_finite(self, values):
        for name in ("Last", "Mean", "WinMean", "LPF"):
            predictor = make_predictor(name)
            for value in values:
                predictor.observe(value)
                assert math.isfinite(predictor.predict())


class TestMarginProperties:
    @given(delays)
    def test_margins_never_negative(self, values):
        for name in ("CI_low", "CI_high", "JAC_low", "JAC_high"):
            margin = make_margin(name)
            prediction = 0.0
            for value in values:
                margin.update(value, prediction)
                prediction = value
                assert margin.current() >= 0.0

    @given(delays)
    def test_ci_margin_monotone_in_gamma(self, values):
        low = make_margin("CI_low")
        high = make_margin("CI_high")
        for value in values:
            low.update(value, 0.0)
            high.update(value, 0.0)
        assert high.current() >= low.current() - 1e-12

    @given(delays)
    def test_jac_margin_monotone_in_phi(self, values):
        low = make_margin("JAC_low")
        high = make_margin("JAC_high")
        prediction = 0.0
        for value in values:
            low.update(value, prediction)
            high.update(value, prediction)
            prediction = value
        assert high.current() >= low.current() - 1e-12

    @given(delays)
    def test_timeout_never_negative(self, values):
        strategy = make_strategy("Last", "JAC_med")
        for value in values:
            strategy.observe(value)
            assert strategy.timeout() >= 0.0


class TestStatsProperties:
    @given(st.lists(finite_floats, min_size=2, max_size=500))
    def test_welford_matches_numpy(self, values):
        acc = Welford()
        for value in values:
            acc.add(value)
        assert acc.mean == pytest_approx(np.mean(values), abs_tol=1e-6)
        assert acc.variance == pytest_approx(np.var(values, ddof=1), abs_tol=1e-4)

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_summary_bounds(self, values):
        stats = summarize(values)
        # Tolerance: np.mean of N identical values can differ from them in
        # the last ulp after the sum-and-divide round trip.
        slack = 1e-9 * (1.0 + abs(stats.mean))
        assert stats.minimum - slack <= stats.mean <= stats.maximum + slack
        assert stats.std >= 0.0

    @given(st.lists(finite_floats, min_size=2, max_size=200))
    def test_ci_contains_sample_mean(self, values):
        stats = summarize(values)
        assert stats.ci_low <= stats.mean <= stats.ci_high


class TestDifferencingProperties:
    @given(
        st.lists(finite_floats, min_size=4, max_size=50),
        st.integers(min_value=0, max_value=3),
    )
    def test_undifference_inverts_difference(self, values, d):
        if len(values) <= d:
            return
        w = difference(values, d)
        if w.size == 0:
            return
        reconstructed = undifference_forecast(float(w[-1]), values[:-1], d)
        assert reconstructed == pytest_approx(values[-1], abs_tol=1e-6 * (1 + abs(values[-1])))

    @given(st.lists(finite_floats, min_size=2, max_size=50))
    def test_difference_reduces_length_by_one(self, values):
        assert difference(values, 1).size == len(values) - 1


class TestEngineProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    def test_events_always_fire_in_nondecreasing_time_order(self, offsets):
        simulator = Simulator()
        fired = []
        for offset in offsets:
            simulator.schedule(offset, lambda: fired.append(simulator.now))
        simulator.run()
        assert fired == sorted(fired)
        assert len(fired) == len(offsets)


class TestMetricsProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=999.0, allow_nan=False),
                st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
            ),
            min_size=0,
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_mistake_algebra_consistent(self, raw_intervals):
        """For arbitrary non-overlapping suspicion intervals with no
        crashes, every interval is a mistake, T_MR entries equal start
        diffs, and empirical availability matches total duration."""
        end_time = 2000.0
        log = EventLog()
        cursor = 0.0
        intervals = []
        for gap, duration in raw_intervals:
            start = cursor + gap + 0.001
            end = start + duration
            if end >= end_time:
                break
            intervals.append((start, end))
            cursor = end
        for start, end in intervals:
            log.append(StatEvent(time=start, kind=EventKind.START_SUSPECT,
                                 site="m", detector="fd"))
            log.append(StatEvent(time=end, kind=EventKind.END_SUSPECT,
                                 site="m", detector="fd"))
        qos = extract_qos(log, end_time=end_time, detectors=["fd"])["fd"]
        assert len(qos.mistakes) == len(intervals)
        assert qos.undetected_crashes == 0
        total = sum(e - s for s, e in intervals)
        assert qos.suspected_up_time == pytest_approx(total, abs_tol=1e-6)
        if len(intervals) >= 2:
            expected = [b[0] - a[0] for a, b in zip(intervals, intervals[1:])]
            assert qos.tmr_samples == pytest_approx_list(expected)
        assert 0.0 <= qos.p_a <= 1.0
        assert 0.0 <= qos.empirical_p_a <= 1.0


def pytest_approx(value, abs_tol=1e-9):
    import pytest

    return pytest.approx(value, abs=abs_tol, rel=1e-9)


def pytest_approx_list(values):
    import pytest

    return pytest.approx(values, abs=1e-9)
