"""Tests for the loss models."""

import numpy as np
import pytest

from repro.net.loss import BernoulliLoss, GilbertElliottLoss, NoLoss


def drop_rate(model, count=50000):
    return sum(model.drops(float(i)) for i in range(count)) / count


class TestNoLoss:
    def test_never_drops(self):
        model = NoLoss()
        assert not any(model.drops(float(i)) for i in range(1000))


class TestBernoulliLoss:
    def test_zero_probability_never_drops(self, rng):
        assert drop_rate(BernoulliLoss(rng, 0.0), 1000) == 0.0

    def test_one_probability_always_drops(self, rng):
        assert drop_rate(BernoulliLoss(rng, 1.0), 1000) == 1.0

    def test_rate_matches_probability(self, rng):
        assert drop_rate(BernoulliLoss(rng, 0.05)) == pytest.approx(0.05, rel=0.1)

    def test_invalid_probability_rejected(self, rng):
        with pytest.raises(ValueError):
            BernoulliLoss(rng, 1.5)
        with pytest.raises(ValueError):
            BernoulliLoss(rng, -0.1)

    def test_drops_are_independent(self, rng):
        model = BernoulliLoss(rng, 0.5)
        outcomes = np.array([model.drops(float(i)) for i in range(50000)])
        # Lag-1 correlation of an independent sequence is ~0.
        centred = outcomes.astype(float) - outcomes.mean()
        lag1 = np.dot(centred[:-1], centred[1:]) / np.dot(centred, centred)
        assert abs(lag1) < 0.02


class TestGilbertElliottLoss:
    def test_steady_state_rate_formula(self, rng):
        model = GilbertElliottLoss(
            rng, p_good_to_bad=0.002, p_bad_to_good=0.3,
            loss_good=0.0005, loss_bad=0.75,
        )
        expected = model.steady_state_loss_rate()
        assert expected == pytest.approx(0.00547, rel=0.01)

    def test_observed_rate_matches_steady_state(self, rng):
        model = GilbertElliottLoss(
            rng, p_good_to_bad=0.01, p_bad_to_good=0.2,
            loss_good=0.0, loss_bad=1.0,
        )
        observed = drop_rate(model, 200000)
        assert observed == pytest.approx(model.steady_state_loss_rate(), rel=0.1)

    def test_losses_are_bursty(self, rng):
        model = GilbertElliottLoss(
            rng, p_good_to_bad=0.01, p_bad_to_good=0.2,
            loss_good=0.0, loss_bad=1.0,
        )
        outcomes = np.array([model.drops(float(i)) for i in range(200000)]).astype(float)
        centred = outcomes - outcomes.mean()
        lag1 = np.dot(centred[:-1], centred[1:]) / np.dot(centred, centred)
        # Markov-modulated losses must be positively correlated.
        assert lag1 > 0.3

    def test_never_transitions_when_probabilities_zero(self, rng):
        model = GilbertElliottLoss(
            rng, p_good_to_bad=0.0, p_bad_to_good=0.0,
            loss_good=0.0, loss_bad=1.0,
        )
        assert drop_rate(model, 1000) == 0.0
        assert model.steady_state_loss_rate() == 0.0

    def test_reset_returns_to_good_state(self, rng):
        model = GilbertElliottLoss(
            rng, p_good_to_bad=1.0, p_bad_to_good=0.0,
            loss_good=0.0, loss_bad=1.0,
        )
        model.drops(0.0)
        assert model.in_bad_state
        model.reset()
        assert not model.in_bad_state

    def test_invalid_probabilities_rejected(self, rng):
        with pytest.raises(ValueError):
            GilbertElliottLoss(rng, p_good_to_bad=1.5, p_bad_to_good=0.1)
        with pytest.raises(ValueError):
            GilbertElliottLoss(rng, 0.1, 0.1, loss_bad=2.0)
