"""Tests for named random streams."""

import pytest

from repro.sim.random import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).get("wan.delay")
        b = RandomStreams(7).get("wan.delay")
        assert a.random() == b.random()

    def test_different_names_independent(self):
        streams = RandomStreams(7)
        a = streams.get("alpha").random(1000)
        b = streams.get("beta").random(1000)
        assert list(a) != list(b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).get("x").random()
        b = RandomStreams(2).get("x").random()
        assert a != b

    def test_stream_object_is_cached(self):
        streams = RandomStreams(3)
        assert streams.get("x") is streams.get("x")

    def test_creation_order_does_not_matter(self):
        forward = RandomStreams(9)
        forward.get("a")
        value_b_after_a = forward.get("b").random()
        backward = RandomStreams(9)
        value_b_first = backward.get("b").random()
        assert value_b_after_a == value_b_first

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(0).get("")

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomStreams("seed")  # type: ignore[arg-type]

    def test_names_lists_created_streams(self):
        streams = RandomStreams(5)
        streams.get("one")
        streams.get("two")
        assert set(streams.names()) == {"one", "two"}

    def test_spawn_derives_independent_child(self):
        parent = RandomStreams(11)
        child = parent.spawn("run-1")
        assert child.seed != parent.seed
        assert child.get("x").random() != parent.get("x").random()

    def test_spawn_is_deterministic(self):
        a = RandomStreams(11).spawn("run-1").get("x").random()
        b = RandomStreams(11).spawn("run-1").get("x").random()
        assert a == b

    def test_spawn_different_names_differ(self):
        parent = RandomStreams(11)
        assert parent.spawn("run-1").seed != parent.spawn("run-2").seed
