"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCharacterize:
    def test_prints_table4(self, capsys):
        assert main(["characterize", "--samples", "5000"]) == 0
        out = capsys.readouterr().out
        assert "Mean one-way delay" in out
        assert "Loss probability" in out

    def test_profile_choice(self, capsys):
        assert main(["characterize", "--samples", "2000", "--profile", "lan"]) == 0
        assert "lan" in capsys.readouterr().out

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["characterize", "--profile", "mars"])


class TestAccuracy:
    def test_prints_table3(self, capsys):
        assert main(["accuracy", "--count", "3000"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        for predictor in ("Arima", "Last", "LPF", "Mean", "WinMean"):
            assert predictor in out


class TestTraceAndSelect:
    def test_trace_roundtrip_and_selection(self, tmp_path, capsys):
        path = tmp_path / "delays.txt"
        assert main(["trace", "--output", str(path), "--count", "3000"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and path.exists()

        assert main([
            "select-order", "--input", str(path),
            "--max-p", "1", "--max-d", "1", "--max-q", "1",
            "--limit", "1500",
        ]) == 0
        out = capsys.readouterr().out
        assert "selected" in out
        assert "ARIMA(" in out


class TestQos:
    def test_subset_of_detectors(self, capsys):
        assert main([
            "qos", "--cycles", "500", "--runs", "1",
            "--mttc", "60", "--ttr", "12",
            "--detectors", "Last+JAC_med,Mean+CI_low",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "Figure 8" in out
        assert "Last" in out and "Mean" in out

    def test_empty_detector_list_rejected(self, capsys):
        assert main([
            "qos", "--cycles", "500", "--runs", "1", "--detectors", " , ",
        ]) == 2

    def test_save_and_report_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "campaign.json"
        assert main([
            "qos", "--cycles", "500", "--runs", "1",
            "--mttc", "60", "--ttr", "12",
            "--detectors", "Last+JAC_med",
            "--output", str(path),
        ]) == 0
        capsys.readouterr()
        assert path.exists()
        assert main(["report", "--input", str(path), "--chart"]) == 0
        out = capsys.readouterr().out
        assert "loaded 1 detectors" in out
        assert "Figure 7" in out
        assert "L=Last" in out  # the chart legend

    def test_chart_flag(self, capsys):
        assert main([
            "qos", "--cycles", "500", "--runs", "1",
            "--mttc", "60", "--ttr", "12",
            "--detectors", "Last+JAC_med", "--chart",
        ]) == 0
        out = capsys.readouterr().out
        assert "L=Last" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestCalibrate:
    def test_calibrate_from_collected_trace(self, tmp_path, capsys):
        path = tmp_path / "delays.txt"
        assert main(["trace", "--output", str(path), "--count", "5000"]) == 0
        capsys.readouterr()
        assert main([
            "calibrate", "--input", str(path), "--check-samples", "3000",
        ]) == 0
        out = capsys.readouterr().out
        assert "floor" in out
        assert "fitted profile check" in out
        assert "Mean one-way delay" in out
