"""Tests for the TimeoutStrategy (delta = pred + sm) and combinations."""

import pytest

from repro.fd.combinations import (
    GAMMA_VALUES,
    MARGIN_NAMES,
    PHI_VALUES,
    PREDICTOR_NAMES,
    all_combinations,
    combination_ids,
    make_margin,
    make_predictor,
    make_strategy,
    parse_combination_id,
)
from repro.fd.predictors import LastPredictor, WinMeanPredictor
from repro.fd.safety import ConstantMargin, JacobsonMargin
from repro.fd.timeout import TimeoutStrategy


class TestTimeoutStrategy:
    def test_timeout_is_prediction_plus_margin(self):
        strategy = TimeoutStrategy(LastPredictor(), ConstantMargin(0.05))
        strategy.observe(0.2)
        assert strategy.timeout() == pytest.approx(0.25)

    def test_margin_sees_prediction_in_force(self):
        # The margin must be fed err_k = obs_n - pred_k, where pred_k was
        # the prediction made BEFORE the observation arrived.
        margin = JacobsonMargin(phi=1.0)
        strategy = TimeoutStrategy(LastPredictor(), margin)
        strategy.observe(0.2)   # pred in force was 0.0 -> err = 0.2
        assert margin.mean_deviation == pytest.approx(0.2)
        strategy.observe(0.3)   # pred in force was 0.2 -> err = 0.1
        assert margin.mean_deviation == pytest.approx(0.2 + 0.25 * (0.1 - 0.2))

    def test_timeout_clamped_at_zero(self):
        class NegativePredictor(LastPredictor):
            def _predict(self):
                return -1.0

        strategy = TimeoutStrategy(NegativePredictor(), ConstantMargin(0.0))
        strategy.observe(0.2)
        assert strategy.timeout() == 0.0

    def test_default_name(self):
        strategy = TimeoutStrategy(LastPredictor(), ConstantMargin(0.0))
        assert strategy.name == "Last+Const"

    def test_reset(self):
        strategy = TimeoutStrategy(LastPredictor(), JacobsonMargin(phi=1.0))
        strategy.observe(0.2)
        strategy.reset()
        assert strategy.prediction() == 0.0


class TestCombinations:
    def test_thirty_combinations(self):
        assert len(combination_ids()) == 30
        assert len(set(combination_ids())) == 30

    def test_all_combinations_generator(self):
        combos = list(all_combinations())
        assert len(combos) == 30
        detector_id, predictor, margin = combos[0]
        assert detector_id == f"{predictor}+{margin}"

    def test_paper_predictor_names(self):
        assert PREDICTOR_NAMES == ("Arima", "Last", "LPF", "Mean", "WinMean")

    def test_paper_margin_names_order(self):
        # CI side first, JAC side second, as on the paper's x-axis.
        assert MARGIN_NAMES[:3] == ("CI_low", "CI_med", "CI_high")
        assert MARGIN_NAMES[3:] == ("JAC_low", "JAC_med", "JAC_high")

    def test_table1_parameters(self):
        assert GAMMA_VALUES == {"CI_low": 1.0, "CI_med": 2.0, "CI_high": 3.31}
        assert PHI_VALUES == {"JAC_low": 1.0, "JAC_med": 2.0, "JAC_high": 4.0}

    def test_make_predictor_table2_defaults(self):
        arima = make_predictor("Arima")
        assert arima.order == (2, 1, 1)
        winmean = make_predictor("WinMean")
        assert winmean.window == 10
        lpf = make_predictor("LPF")
        assert lpf.beta == pytest.approx(1.0 / 8.0)

    def test_make_predictor_overrides(self):
        assert make_predictor("WinMean", window=20).window == 20

    def test_make_margin_parameters(self):
        ci = make_margin("CI_high")
        assert ci.gamma == pytest.approx(3.31)
        assert ci.name == "CI_high"
        jac = make_margin("JAC_med")
        assert jac.phi == 2.0
        assert jac.alpha == 0.25

    def test_make_strategy_name(self):
        strategy = make_strategy("Last", "JAC_low")
        assert strategy.name == "Last+JAC_low"

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            make_predictor("Oracle")
        with pytest.raises(KeyError):
            make_margin("CI_extreme")

    def test_parse_combination_id(self):
        assert parse_combination_id("Arima+CI_low") == ("Arima", "CI_low")

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_combination_id("ArimaCI_low")
        with pytest.raises(ValueError):
            parse_combination_id("Oracle+CI_low")
        with pytest.raises(ValueError):
            parse_combination_id("Arima+CI_extreme")

    def test_strategies_are_independent_instances(self):
        a = make_strategy("Last", "CI_low")
        b = make_strategy("Last", "CI_low")
        a.observe(0.5)
        assert b.prediction() == 0.0
