"""Equivalence tests for the vectorized trace-replay fast path.

Three layers of proof, per the performance-layer contract:

* the per-observation sequences (prediction, margin, time-out) match the
  scalar :class:`~repro.fd.timeout.TimeoutStrategy` classes;
* the derived freshness points and suspicion intervals match the scalar
  detector reference on traces with loss and reordering;
* the suspicion intervals match a *real* event-driven run — a
  :class:`~repro.fd.detector.PushFailureDetector` fed through a
  :class:`~repro.net.delay.TraceDelay` link on the simulation engine.
"""

import numpy as np
import pytest

from repro.clocks.clock import PerfectClock
from repro.fd.combinations import MARGIN_NAMES, make_strategy
from repro.fd.detector import PushFailureDetector
from repro.fd.heartbeat import Heartbeater
from repro.fd.replay import (
    REPLAY_PREDICTORS,
    replay_combination,
    replay_detector,
    replay_detector_scalar,
    replay_strategy,
    replay_strategy_scalar,
    supports_replay,
)
from repro.neko.layer import ProtocolStack
from repro.neko.system import NekoSystem
from repro.nekostat.log import EventLog
from repro.nekostat.metrics import _suspicion_intervals
from repro.net.delay import TraceDelay
from repro.sim.engine import Simulator

TOLERANCE = 1e-9


def make_trace(n, seed=42, spike_probability=0.01):
    """A WAN-looking delay trace: gamma body plus rare large spikes."""
    rng = np.random.default_rng(seed)
    delays = 0.1 + rng.gamma(2.0, 0.01, n)
    spikes = rng.random(n) < spike_probability
    return delays + spikes * rng.uniform(0.3, 2.5, n)


class TestSupports:
    def test_vectorized_predictors(self):
        for name in REPLAY_PREDICTORS:
            assert supports_replay(name)

    def test_arima_stays_scalar(self):
        assert not supports_replay("Arima")
        with pytest.raises(ValueError, match="scalar path"):
            replay_strategy("Arima", "CI_low", [0.1, 0.2])

    def test_unknown_margin_rejected(self):
        assert not supports_replay("Last", "nope")
        with pytest.raises(ValueError):
            replay_strategy("Last", "nope", [0.1, 0.2])


class TestStrategyEquivalence:
    """Vectorized sequences == scalar TimeoutStrategy, all 24 combos."""

    @pytest.mark.parametrize("predictor", REPLAY_PREDICTORS)
    @pytest.mark.parametrize("margin", MARGIN_NAMES)
    def test_matches_scalar_classes(self, predictor, margin):
        observations = make_trace(3000)
        fast = replay_strategy(predictor, margin, observations)
        predictions, margins, timeouts = replay_strategy_scalar(
            predictor, margin, observations
        )
        np.testing.assert_allclose(
            fast.predictions, predictions, rtol=0, atol=TOLERANCE
        )
        np.testing.assert_allclose(fast.margins, margins, rtol=0, atol=TOLERANCE)
        np.testing.assert_allclose(fast.timeouts, timeouts, rtol=0, atol=TOLERANCE)

    def test_combination_id_entry_point(self):
        observations = make_trace(500)
        by_id = replay_combination("Last+JAC_med", observations)
        by_name = replay_strategy("Last", "JAC_med", observations)
        np.testing.assert_array_equal(by_id.timeouts, by_name.timeouts)
        assert by_id.detector == "Last+JAC_med"

    def test_short_traces(self):
        for n in (1, 2, 3):
            observations = make_trace(n)
            fast = replay_strategy("Mean", "CI_med", observations)
            _, margins, timeouts = replay_strategy_scalar(
                "Mean", "CI_med", observations
            )
            np.testing.assert_allclose(fast.margins, margins, rtol=0, atol=TOLERANCE)
            np.testing.assert_allclose(fast.timeouts, timeouts, rtol=0, atol=TOLERANCE)

    def test_constant_trace_zero_sigma(self):
        observations = np.full(50, 0.125)
        fast = replay_strategy("Last", "CI_med", observations)
        _, margins, _ = replay_strategy_scalar("Last", "CI_med", observations)
        np.testing.assert_allclose(fast.margins, margins, rtol=0, atol=TOLERANCE)
        assert np.all(fast.margins[1:] == 0.0)  # sigma == 0 -> margin 0


class TestDetectorReplay:
    """Freshness points and suspicion intervals vs the scalar reference."""

    @pytest.mark.parametrize(
        "combo", [("Last", "JAC_med"), ("Mean", "CI_low"), ("LPF", "JAC_high")]
    )
    def test_matches_scalar_reference_with_loss(self, combo):
        n, eta = 4000, 1.0
        rng = np.random.default_rng(11)
        delays = make_trace(n, seed=11, spike_probability=0.02)
        lost = rng.random(n) < 0.03
        sends = np.arange(n) * eta
        fast = replay_detector(
            combo[0], combo[1], sends, delays, eta=eta, lost=lost, end_time=n * eta
        )
        taus, intervals = replay_detector_scalar(
            combo[0], combo[1], sends, delays, eta=eta, lost=lost, end_time=n * eta
        )
        assert len(fast.freshness_points) == len(taus)
        np.testing.assert_allclose(
            fast.freshness_points, taus, rtol=0, atol=TOLERANCE
        )
        assert len(fast.suspicion_intervals()) == len(intervals)
        for (a, b), (c, d) in zip(fast.suspicion_intervals(), intervals):
            assert abs(a - c) < TOLERANCE and abs(b - d) < TOLERANCE

    def test_observe_stale_false_path(self):
        n, eta = 1000, 1.0
        delays = make_trace(n, seed=3, spike_probability=0.05)
        sends = np.arange(n) * eta
        fast = replay_detector(
            "Last", "JAC_med", sends, delays, eta=eta,
            end_time=n * eta, observe_stale=False,
        )
        taus, intervals = replay_detector_scalar(
            "Last", "JAC_med", sends, delays, eta=eta,
            end_time=n * eta, observe_stale=False,
        )
        np.testing.assert_allclose(fast.freshness_points, taus, rtol=0, atol=TOLERANCE)
        assert len(fast.suspicion_intervals()) == len(intervals)

    def test_all_heartbeats_lost_is_rejected(self):
        n, eta = 10, 1.0
        with pytest.raises(ValueError, match="every heartbeat was lost"):
            replay_detector(
                "Last", "JAC_med",
                np.arange(n) * eta, np.full(n, 0.1),
                eta=eta, lost=np.ones(n, dtype=bool), end_time=50.0,
            )

    def test_qos_packaging(self):
        n, eta = 2000, 1.0
        delays = make_trace(n, seed=9, spike_probability=0.03)
        fast = replay_detector(
            "Last", "JAC_low", np.arange(n) * eta, delays, eta=eta, end_time=n * eta
        )
        qos = fast.to_detector_qos()
        assert qos.up_time == n * eta
        assert len(qos.mistakes) == len(fast.suspicion_intervals())
        assert qos.suspected_up_time == pytest.approx(
            float(np.sum(fast.mistake_durations))
        )
        if len(qos.mistakes) >= 2:
            assert len(qos.tmr_samples) == len(qos.mistakes) - 1


class TestAcceptanceScale:
    """The ISSUE acceptance check: 1e-9 agreement on a 30k-point trace."""

    def test_30k_trace_within_1e9(self):
        n, eta = 30_000, 1.0
        delays = make_trace(n, seed=2005, spike_probability=0.01)
        sends = np.arange(n) * eta
        for combo in (("Mean", "CI_med"), ("LPF", "JAC_med")):
            fast = replay_detector(
                combo[0], combo[1], sends, delays, eta=eta, end_time=n * eta
            )
            taus, intervals = replay_detector_scalar(
                combo[0], combo[1], sends, delays, eta=eta, end_time=n * eta
            )
            np.testing.assert_allclose(
                fast.freshness_points, taus, rtol=0, atol=TOLERANCE
            )
            assert len(fast.suspicion_intervals()) == len(intervals)


class TestEventDrivenEquivalence:
    """The determinism satellite: simulator vs replay on the same trace."""

    @pytest.mark.parametrize(
        "combo",
        [("Last", "JAC_med"), ("Mean", "CI_med"),
         ("WinMean", "CI_high"), ("LPF", "JAC_low")],
    )
    def test_replay_matches_simulator(self, combo):
        eta, n = 1.0, 2000
        duration = n * eta
        delays = make_trace(n + 1, seed=7, spike_probability=0.02)
        detector_id = "+".join(combo)

        sim = Simulator()
        system = NekoSystem(sim)
        system.network.set_link(
            "monitored", "monitor",
            TraceDelay(delays, wrap=False), record_delays=False,
        )
        log = EventLog()
        heartbeater = Heartbeater("monitor", eta, log)
        detector = PushFailureDetector(
            make_strategy(*combo), "monitored", eta, log,
            detector_id=detector_id, initial_timeout=10.0 * eta,
        )
        system.create_process(
            "monitored", ProtocolStack([heartbeater]), clock=PerfectClock(sim)
        )
        system.create_process(
            "monitor", ProtocolStack([detector]), clock=PerfectClock(sim)
        )
        system.run(until=duration)
        event_intervals = _suspicion_intervals(list(log), detector_id, duration)

        replayed = replay_detector(
            combo[0], combo[1],
            np.arange(heartbeater.sent) * eta, delays[: heartbeater.sent],
            eta=eta, end_time=duration,
        )
        replay_intervals = replayed.suspicion_intervals()
        assert len(replay_intervals) == len(event_intervals)
        for (a, b), (c, d) in zip(replay_intervals, event_intervals):
            assert abs(a - c) < TOLERANCE
            assert abs(b - d) < TOLERANCE
