"""Equivalence tests for the vectorized trace-replay fast path.

Three layers of proof, per the performance-layer contract:

* the per-observation sequences (prediction, margin, time-out) match the
  scalar :class:`~repro.fd.timeout.TimeoutStrategy` classes;
* the derived freshness points and suspicion intervals match the scalar
  detector reference on traces with loss and reordering;
* the suspicion intervals match a *real* event-driven run — a
  :class:`~repro.fd.detector.PushFailureDetector` fed through a
  :class:`~repro.net.delay.TraceDelay` link on the simulation engine.
"""

import numpy as np
import pytest

from repro.clocks.clock import PerfectClock
from repro.fd.combinations import MARGIN_NAMES, combination_ids, make_strategy
from repro.fd.detector import PushFailureDetector
from repro.fd.heartbeat import Heartbeater
from repro.fd.replay import (
    REPLAY_PREDICTORS,
    replay_combination,
    replay_detector,
    replay_detector_matrix,
    replay_detector_scalar,
    replay_strategy,
    replay_strategy_scalar,
    supports_replay,
)
from repro.timeseries.arima import ArimaForecaster, batch_arima_predictions
from repro.neko.layer import ProtocolStack
from repro.neko.system import NekoSystem
from repro.nekostat.log import EventLog
from repro.nekostat.metrics import _suspicion_intervals
from repro.net.delay import TraceDelay
from repro.sim.engine import Simulator

TOLERANCE = 1e-9


def make_trace(n, seed=42, spike_probability=0.01):
    """A WAN-looking delay trace: gamma body plus rare large spikes."""
    rng = np.random.default_rng(seed)
    delays = 0.1 + rng.gamma(2.0, 0.01, n)
    spikes = rng.random(n) < spike_probability
    return delays + spikes * rng.uniform(0.3, 2.5, n)


class TestSupports:
    def test_vectorized_predictors(self):
        for name in REPLAY_PREDICTORS:
            assert supports_replay(name)

    def test_all_thirty_combinations_supported(self):
        for detector_id in combination_ids():
            predictor, margin = detector_id.split("+")
            assert supports_replay(predictor, margin), detector_id

    def test_arima_is_vectorized(self):
        assert supports_replay("Arima")
        assert supports_replay("Arima", "CI_low")

    def test_margin_spec_tuples(self):
        assert supports_replay("Last", ("CI", 0.7))
        assert supports_replay("Last", ("JAC", 2.5))
        assert not supports_replay("Last", ("XX", 1.0))
        assert not supports_replay("Last", ("CI", -1.0))

    def test_unknown_margin_rejected(self):
        assert not supports_replay("Last", "nope")
        with pytest.raises(ValueError):
            replay_strategy("Last", "nope", [0.1, 0.2])


class TestStrategyEquivalence:
    """Vectorized sequences == scalar TimeoutStrategy, all 24 combos."""

    @pytest.mark.parametrize("predictor", REPLAY_PREDICTORS)
    @pytest.mark.parametrize("margin", MARGIN_NAMES)
    def test_matches_scalar_classes(self, predictor, margin):
        observations = make_trace(3000)
        fast = replay_strategy(predictor, margin, observations)
        predictions, margins, timeouts = replay_strategy_scalar(
            predictor, margin, observations
        )
        np.testing.assert_allclose(
            fast.predictions, predictions, rtol=0, atol=TOLERANCE
        )
        np.testing.assert_allclose(fast.margins, margins, rtol=0, atol=TOLERANCE)
        np.testing.assert_allclose(fast.timeouts, timeouts, rtol=0, atol=TOLERANCE)

    def test_combination_id_entry_point(self):
        observations = make_trace(500)
        by_id = replay_combination("Last+JAC_med", observations)
        by_name = replay_strategy("Last", "JAC_med", observations)
        np.testing.assert_array_equal(by_id.timeouts, by_name.timeouts)
        assert by_id.detector == "Last+JAC_med"

    def test_short_traces(self):
        for n in (1, 2, 3):
            observations = make_trace(n)
            fast = replay_strategy("Mean", "CI_med", observations)
            _, margins, timeouts = replay_strategy_scalar(
                "Mean", "CI_med", observations
            )
            np.testing.assert_allclose(fast.margins, margins, rtol=0, atol=TOLERANCE)
            np.testing.assert_allclose(fast.timeouts, timeouts, rtol=0, atol=TOLERANCE)

    def test_constant_trace_zero_sigma(self):
        observations = np.full(50, 0.125)
        fast = replay_strategy("Last", "CI_med", observations)
        _, margins, _ = replay_strategy_scalar("Last", "CI_med", observations)
        np.testing.assert_allclose(fast.margins, margins, rtol=0, atol=TOLERANCE)
        assert np.all(fast.margins[1:] == 0.0)  # sigma == 0 -> margin 0


class TestArimaReplay:
    """Tentpole proof: the batched ARIMA path is *bit-identical* to the
    scalar :class:`~repro.timeseries.arima.ArimaForecaster`, including the
    refit schedule and the failed-fit fallback."""

    @staticmethod
    def scalar_predictions(observations, forecaster=None):
        forecaster = forecaster or ArimaForecaster(2, 1, 1)
        out = []
        for value in observations:
            forecaster.observe(float(value))
            out.append(forecaster.predict())
        return forecaster, np.asarray(out)

    def test_batch_matches_forecaster_bitwise(self):
        # 2200 observations: fallback phase, initial fit at 200, refits at
        # 1000 and 2000 — every phase of the batch implementation.
        x = make_trace(2200, seed=13)
        forecaster, scalar = self.scalar_predictions(x)
        assert forecaster.refits >= 3
        np.testing.assert_array_equal(batch_arima_predictions(x), scalar)

    def test_refit_boundary_prefix_invariance(self):
        # predictions[k] must depend only on observations[:k+1]; check the
        # prefix property straddling the initial-fit and refit boundaries.
        x = make_trace(1100, seed=29)
        full = batch_arima_predictions(x)
        for n in (199, 200, 201, 999, 1000, 1001):
            np.testing.assert_array_equal(batch_arima_predictions(x[:n]), full[:n])

    def test_before_initial_fit_is_last_value(self):
        x = make_trace(150, seed=5)
        np.testing.assert_array_equal(batch_arima_predictions(x), x)

    def test_singular_fit_fallback(self, monkeypatch):
        import repro.timeseries.arima as arima_mod

        real_fit = arima_mod.fit_arma_hannan_rissanen
        x = make_trace(1400, seed=17)

        def flaky(fail_calls):
            calls = {"n": 0}

            def fit(w_series, p, q):
                calls["n"] += 1
                if calls["n"] in fail_calls:
                    raise np.linalg.LinAlgError("injected singular fit")
                return real_fit(w_series, p, q)

            return fit

        # Calls 1-2 are the initial fit and its first retry; call 4 is the
        # 1000-observation refit.  Both paths must retry / keep the old
        # coefficients identically.
        fail_calls = {1, 2, 4}
        monkeypatch.setattr(arima_mod, "fit_arma_hannan_rissanen", flaky(fail_calls))
        batch = batch_arima_predictions(x)
        monkeypatch.setattr(arima_mod, "fit_arma_hannan_rissanen", flaky(fail_calls))
        forecaster, scalar = self.scalar_predictions(x)
        assert forecaster.failed_fits == 3
        assert forecaster.refits == 1
        np.testing.assert_array_equal(batch, scalar)

    def test_strategy_path_uses_batch(self):
        x = make_trace(1500, seed=23)
        fast = replay_strategy("Arima", "CI_med", x)
        np.testing.assert_array_equal(fast.predictions, batch_arima_predictions(x))


class TestDetectorReplay:
    """Freshness points and suspicion intervals vs the scalar reference."""

    @pytest.mark.parametrize(
        "combo",
        [("Last", "JAC_med"), ("Mean", "CI_low"), ("LPF", "JAC_high"),
         ("Arima", "CI_med")],
    )
    def test_matches_scalar_reference_with_loss(self, combo):
        n, eta = 4000, 1.0
        rng = np.random.default_rng(11)
        delays = make_trace(n, seed=11, spike_probability=0.02)
        lost = rng.random(n) < 0.03
        sends = np.arange(n) * eta
        fast = replay_detector(
            combo[0], combo[1], sends, delays, eta=eta, lost=lost, end_time=n * eta
        )
        taus, intervals = replay_detector_scalar(
            combo[0], combo[1], sends, delays, eta=eta, lost=lost, end_time=n * eta
        )
        assert len(fast.freshness_points) == len(taus)
        np.testing.assert_allclose(
            fast.freshness_points, taus, rtol=0, atol=TOLERANCE
        )
        assert len(fast.suspicion_intervals()) == len(intervals)
        for (a, b), (c, d) in zip(fast.suspicion_intervals(), intervals):
            assert abs(a - c) < TOLERANCE and abs(b - d) < TOLERANCE

    def test_observe_stale_false_path(self):
        n, eta = 1000, 1.0
        delays = make_trace(n, seed=3, spike_probability=0.05)
        sends = np.arange(n) * eta
        fast = replay_detector(
            "Last", "JAC_med", sends, delays, eta=eta,
            end_time=n * eta, observe_stale=False,
        )
        taus, intervals = replay_detector_scalar(
            "Last", "JAC_med", sends, delays, eta=eta,
            end_time=n * eta, observe_stale=False,
        )
        np.testing.assert_allclose(fast.freshness_points, taus, rtol=0, atol=TOLERANCE)
        assert len(fast.suspicion_intervals()) == len(intervals)

    def test_all_heartbeats_lost_is_rejected(self):
        n, eta = 10, 1.0
        with pytest.raises(ValueError, match="every heartbeat was lost"):
            replay_detector(
                "Last", "JAC_med",
                np.arange(n) * eta, np.full(n, 0.1),
                eta=eta, lost=np.ones(n, dtype=bool), end_time=50.0,
            )

    def test_qos_packaging(self):
        n, eta = 2000, 1.0
        delays = make_trace(n, seed=9, spike_probability=0.03)
        fast = replay_detector(
            "Last", "JAC_low", np.arange(n) * eta, delays, eta=eta, end_time=n * eta
        )
        qos = fast.to_detector_qos()
        assert qos.up_time == n * eta
        assert len(qos.mistakes) == len(fast.suspicion_intervals())
        assert qos.suspected_up_time == pytest.approx(
            float(np.sum(fast.mistake_durations))
        )
        if len(qos.mistakes) >= 2:
            assert len(qos.tmr_samples) == len(qos.mistakes) - 1


class TestDetectorMatrix:
    """replay_detector_matrix == per-combination replay_detector, with the
    trace view and predictions shared instead of recomputed 30 times."""

    def test_full_matrix_matches_individual_replays(self):
        n, eta = 1500, 1.0
        rng = np.random.default_rng(31)
        delays = make_trace(n, seed=31, spike_probability=0.02)
        lost = rng.random(n) < 0.02
        sends = np.arange(n) * eta
        ids = combination_ids()
        matrix = replay_detector_matrix(
            ids, sends, delays, eta=eta, lost=lost, end_time=n * eta
        )
        assert list(matrix) == ids
        for detector_id in ids:
            predictor, margin = detector_id.split("+")
            single = replay_detector(
                predictor, margin, sends, delays,
                eta=eta, lost=lost, end_time=n * eta,
            )
            batch = matrix[detector_id]
            assert batch.detector == detector_id
            np.testing.assert_array_equal(
                batch.freshness_points, single.freshness_points
            )
            np.testing.assert_array_equal(
                batch.suspicion_starts, single.suspicion_starts
            )
            np.testing.assert_array_equal(
                batch.suspicion_ends, single.suspicion_ends
            )

    def test_margin_spec_tuple_ids_rejected_cleanly(self):
        with pytest.raises(ValueError):
            replay_detector_matrix(
                ["Last+nope"], [0.0, 1.0], [0.1, 0.1], eta=1.0
            )


class TestAcceptanceScale:
    """The ISSUE acceptance check: 1e-9 agreement on a 30k-point trace."""

    def test_30k_trace_within_1e9(self):
        n, eta = 30_000, 1.0
        delays = make_trace(n, seed=2005, spike_probability=0.01)
        sends = np.arange(n) * eta
        for combo in (("Mean", "CI_med"), ("LPF", "JAC_med")):
            fast = replay_detector(
                combo[0], combo[1], sends, delays, eta=eta, end_time=n * eta
            )
            taus, intervals = replay_detector_scalar(
                combo[0], combo[1], sends, delays, eta=eta, end_time=n * eta
            )
            np.testing.assert_allclose(
                fast.freshness_points, taus, rtol=0, atol=TOLERANCE
            )
            assert len(fast.suspicion_intervals()) == len(intervals)


class TestEventDrivenEquivalence:
    """The determinism satellite: simulator vs replay on the same trace."""

    @pytest.mark.parametrize(
        "combo",
        [("Last", "JAC_med"), ("Mean", "CI_med"),
         ("WinMean", "CI_high"), ("LPF", "JAC_low"), ("Arima", "CI_med")],
    )
    def test_replay_matches_simulator(self, combo):
        eta, n = 1.0, 2000
        duration = n * eta
        delays = make_trace(n + 1, seed=7, spike_probability=0.02)
        detector_id = "+".join(combo)

        sim = Simulator()
        system = NekoSystem(sim)
        system.network.set_link(
            "monitored", "monitor",
            TraceDelay(delays, wrap=False), record_delays=False,
        )
        log = EventLog()
        heartbeater = Heartbeater("monitor", eta, log)
        detector = PushFailureDetector(
            make_strategy(*combo), "monitored", eta, log,
            detector_id=detector_id, initial_timeout=10.0 * eta,
        )
        system.create_process(
            "monitored", ProtocolStack([heartbeater]), clock=PerfectClock(sim)
        )
        system.create_process(
            "monitor", ProtocolStack([detector]), clock=PerfectClock(sim)
        )
        system.run(until=duration)
        event_intervals = _suspicion_intervals(list(log), detector_id, duration)

        replayed = replay_detector(
            combo[0], combo[1],
            np.arange(heartbeater.sent) * eta, delays[: heartbeater.sent],
            eta=eta, end_time=duration,
        )
        replay_intervals = replayed.suspicion_intervals()
        assert len(replay_intervals) == len(event_intervals)
        for (a, b), (c, d) in zip(replay_intervals, event_intervals):
            assert abs(a - c) < TOLERANCE
            assert abs(b - d) < TOLERANCE
