"""Tests for the statistics helpers."""

import math

import numpy as np
import pytest

from repro.nekostat.stats import (
    SummaryStats,
    Welford,
    mean_squared_error,
    normal_quantile,
    summarize,
)


class TestSummarize:
    def test_basic_statistics(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_confidence_interval_contains_mean(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(10.0, 2.0, 100)
        stats = summarize(sample)
        assert stats.ci_low < 10.0 < stats.ci_high

    def test_ci_width_shrinks_with_samples(self):
        rng = np.random.default_rng(0)
        small = summarize(rng.normal(0, 1, 20))
        large = summarize(rng.normal(0, 1, 2000))
        assert large.ci_half_width < small.ci_half_width

    def test_t_interval_wider_than_normal_for_small_n(self):
        # For n=5 the t critical value (2.776) clearly exceeds z (1.96).
        stats = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        sem = stats.std / math.sqrt(5)
        assert stats.ci_half_width > 1.96 * sem

    def test_single_sample_infinite_ci(self):
        stats = summarize([5.0])
        assert stats.std == 0.0
        assert math.isinf(stats.ci_half_width)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValueError):
            summarize([1.0, 2.0], confidence=1.5)

    def test_scaled(self):
        stats = summarize([0.1, 0.2, 0.3]).scaled(1e3)
        assert stats.mean == pytest.approx(200.0)
        assert stats.minimum == pytest.approx(100.0)
        assert stats.confidence == 0.95


class TestWelford:
    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        sample = rng.normal(5.0, 3.0, 1000)
        acc = Welford()
        for value in sample:
            acc.add(value)
        assert acc.mean == pytest.approx(np.mean(sample))
        assert acc.variance == pytest.approx(np.var(sample, ddof=1))
        assert acc.minimum == sample.min()
        assert acc.maximum == sample.max()

    def test_empty_properties(self):
        acc = Welford()
        assert acc.count == 0
        assert acc.mean == 0.0
        assert acc.variance == 0.0
        with pytest.raises(ValueError):
            acc.minimum

    def test_single_value(self):
        acc = Welford()
        acc.add(7.0)
        assert acc.mean == 7.0
        assert acc.variance == 0.0

    def test_summary_matches_summarize(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        acc = Welford()
        for value in values:
            acc.add(value)
        direct = summarize(values)
        online = acc.summary()
        assert online.mean == pytest.approx(direct.mean)
        assert online.std == pytest.approx(direct.std)
        assert online.ci_half_width == pytest.approx(direct.ci_half_width)

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            Welford().summary()

    def test_numerical_stability_large_offset(self):
        # Welford must not lose precision with a huge common offset.
        acc = Welford()
        for value in [1e9 + 1, 1e9 + 2, 1e9 + 3]:
            acc.add(value)
        assert acc.variance == pytest.approx(1.0)


class TestMeanSquaredError:
    def test_zero_for_perfect_prediction(self):
        assert mean_squared_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        assert mean_squared_error([1.0, 2.0], [2.0, 4.0]) == pytest.approx(2.5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([], [])


class TestNormalQuantile:
    def test_median(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-8)

    def test_known_quantiles(self):
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert normal_quantile(0.9995) == pytest.approx(3.2905, abs=1e-3)

    def test_symmetry(self):
        assert normal_quantile(0.25) == pytest.approx(-normal_quantile(0.75), abs=1e-8)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)
        with pytest.raises(ValueError):
            normal_quantile(1.0)
