"""Outbound monitor traffic: the peer table and control-ack retransmits.

Covers the two service fixes that ride with the KV subsystem: the
monitor daemon can now transmit over its service socket (peer addresses
auto-learned from inbound datagrams), and crash/restore control
datagrams are retransmitted until acked — a lost crash announcement no
longer costs a ``T_D`` sample.
"""

import asyncio

import pytest

from repro.net.message import Datagram
from repro.net.udp import decode_datagram, encode_datagram
from repro.service import (
    AsyncioScheduler,
    HeartbeatEmitter,
    HeartbeatFleet,
    MonitorDaemon,
)

NETWORK_TIMEOUT = 60.0


def run(coroutine, timeout=NETWORK_TIMEOUT):
    """Run an async test body with a hard timeout (no plugin needed)."""
    return asyncio.run(asyncio.wait_for(coroutine, timeout=timeout))


async def eventually(predicate, *, timeout=10.0, interval=0.02):
    """Poll ``predicate`` until true or ``timeout`` elapses."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            return False
        await asyncio.sleep(interval)
    return True


class _Capture(asyncio.DatagramProtocol):
    """A loopback endpoint that records every datagram it receives."""

    def __init__(self):
        self.received = []

    def datagram_received(self, data, addr):
        self.received.append(decode_datagram(data))


# ----------------------------------------------------------------------
# Control retransmits (no sockets: emitter + scheduler only)
# ----------------------------------------------------------------------
class TestControlRetransmit:
    def test_unacked_control_is_retransmitted_then_given_up(self):
        async def main():
            scheduler = AsyncioScheduler()
            sent = []
            emitter = HeartbeatEmitter(
                "ep1", sent.append, scheduler, eta=10.0,
                control_retransmit=0.03, control_max_retries=2,
            )
            emitter.crash()
            assert await eventually(lambda: emitter.control_given_up == 1)
            assert emitter.control_retransmits == 2
            assert emitter.pending_controls == 0
            controls = [m for m in sent if m.kind == "crash"]
            assert len(controls) == 3  # original + 2 retransmits
            assert all(m.payload["ctl"] == 1 for m in controls)
            scheduler.close()

        run(main())

    def test_ack_stops_the_retransmit_loop(self):
        async def main():
            scheduler = AsyncioScheduler()
            sent = []
            emitter = HeartbeatEmitter(
                "ep1", sent.append, scheduler, eta=10.0,
                control_retransmit=0.03, control_max_retries=5,
            )
            emitter.crash()
            emitter.on_control_ack(1)
            assert emitter.control_acked == 1
            assert emitter.pending_controls == 0
            await asyncio.sleep(0.12)
            assert emitter.control_retransmits == 0
            assert [m.kind for m in sent] == ["crash"]
            scheduler.close()

        run(main())

    def test_stop_cancels_pending_controls(self):
        async def main():
            scheduler = AsyncioScheduler()
            emitter = HeartbeatEmitter(
                "ep1", lambda _m: None, scheduler, eta=10.0,
                control_retransmit=0.03,
            )
            emitter.start()
            emitter.crash()
            assert emitter.pending_controls == 1
            emitter.stop()
            assert emitter.pending_controls == 0
            scheduler.close()

        run(main())


# ----------------------------------------------------------------------
# Peer table and outbound sends (real loopback sockets)
# ----------------------------------------------------------------------
@pytest.mark.network
class TestDaemonOutbound:
    def test_send_datagram_uses_pinned_peer_address(self):
        async def main():
            loop = asyncio.get_running_loop()
            transport, capture = await loop.create_datagram_endpoint(
                _Capture, local_addr=("127.0.0.1", 0)
            )
            daemon = MonitorDaemon(port=0, http_port=None, eta=0.5,
                                   detector_ids=["Last+CI_med"])
            await daemon.start()
            try:
                message = Datagram(source="monitor", destination="peer1",
                                   kind="kv-view",
                                   payload={"epoch": 1, "primary": "a"})
                # Unknown destination: dropped, accounted.
                dropped = daemon.dropped_datagrams
                assert not daemon.send_datagram(message)
                assert daemon.dropped_datagrams == dropped + 1
                # Pinned destination: delivered.
                daemon.add_peer("peer1", transport.get_extra_info("sockname"))
                assert daemon.send_datagram(message)
                assert daemon.sent_datagrams == 1
                assert await eventually(lambda: capture.received)
                assert capture.received[0].kind == "kv-view"
                assert capture.received[0].payload == {"epoch": 1,
                                                       "primary": "a"}
            finally:
                await daemon.stop()
                transport.close()

        run(main())

    def test_pinned_peer_ignores_spoofed_source_address(self):
        async def main():
            daemon = MonitorDaemon(port=0, http_port=None, eta=0.5,
                                   detector_ids=["Last+CI_med"])
            await daemon.start()
            try:
                pinned = ("127.0.0.1", 40001)
                daemon.add_peer("ep1", pinned)
                # A datagram merely *claiming* to be ep1 from another
                # address must not redirect ep1's outbound traffic.
                spoof = Datagram(source="ep1", destination="monitor",
                                 kind="heartbeat", seq=1, timestamp=0.0)
                daemon._on_datagram(encode_datagram(spoof),
                                    ("127.0.0.1", 55555))
                assert daemon.peer_addr("ep1") == pinned
                # Unpinned names keep the auto-learning convention.
                other = Datagram(source="ep2", destination="monitor",
                                 kind="heartbeat", seq=1, timestamp=0.0)
                daemon._on_datagram(encode_datagram(other),
                                    ("127.0.0.1", 55556))
                assert daemon.peer_addr("ep2") == ("127.0.0.1", 55556)
            finally:
                await daemon.stop()

        run(main())

    def test_crash_control_roundtrip_learns_peer_and_acks(self):
        async def main():
            daemon = MonitorDaemon(port=0, http_port=None, eta=0.1,
                                   detector_ids=["Last+CI_med"],
                                   auto_register=True)
            await daemon.start()
            fleet = HeartbeatFleet(["ep1"], daemon.udp_endpoint, eta=0.1)
            await fleet.start()
            try:
                assert await eventually(lambda: daemon.heartbeats_total > 0)
                # The inbound heartbeat taught the daemon ep1's address.
                assert daemon.peer_addr("ep1") is not None
                fleet.crash("ep1")
                emitter = fleet.emitters["ep1"]
                # The daemon records the crash and acks it back over the
                # same socket, which stops the emitter's retransmit loop.
                assert await eventually(lambda: emitter.control_acked == 1)
                assert emitter.pending_controls == 0
                assert daemon.registry.get("ep1").crashed
                assert daemon.control_acks_sent >= 1
            finally:
                await fleet.stop()
                await daemon.stop()

        run(main())
