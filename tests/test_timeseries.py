"""Tests for the time-series substrate: AR, ARMA, ARIMA, selection, diagnostics."""

import math

import numpy as np
import pytest

from repro.timeseries.ar import fit_ar_ols, fit_ar_yule_walker
from repro.timeseries.arima import ArimaForecaster, difference, undifference_forecast
from repro.timeseries.arma import ArmaModel, fit_arma_hannan_rissanen
from repro.timeseries.base import evaluate_forecaster
from repro.timeseries.diagnostics import acf, ljung_box, pacf
from repro.timeseries.selection import score_order, select_arima_order


def make_ar1(n, phi, sigma=1.0, const=0.0, seed=0):
    rng = np.random.default_rng(seed)
    z = np.zeros(n)
    for t in range(1, n):
        z[t] = const + phi * z[t - 1] + rng.normal(0, sigma)
    return z


def make_arma11(n, phi, theta, sigma=1.0, seed=0):
    rng = np.random.default_rng(seed)
    z = np.zeros(n)
    noise = rng.normal(0, sigma, n)
    for t in range(1, n):
        z[t] = phi * z[t - 1] + noise[t] + theta * noise[t - 1]
    return z


class TestYuleWalker:
    def test_recovers_ar1_coefficient(self):
        z = make_ar1(20000, 0.7)
        phi, variance = fit_ar_yule_walker(z, 1)
        assert phi[0] == pytest.approx(0.7, abs=0.03)
        assert variance == pytest.approx(1.0, rel=0.1)

    def test_recovers_ar2_coefficients(self):
        rng = np.random.default_rng(1)
        z = np.zeros(20000)
        for t in range(2, len(z)):
            z[t] = 0.5 * z[t - 1] - 0.3 * z[t - 2] + rng.normal()
        phi, _ = fit_ar_yule_walker(z, 2)
        assert phi[0] == pytest.approx(0.5, abs=0.03)
        assert phi[1] == pytest.approx(-0.3, abs=0.03)

    def test_order_zero(self):
        phi, variance = fit_ar_yule_walker([1.0, 2.0, 3.0], 0)
        assert phi.size == 0
        assert variance == pytest.approx(np.var([1.0, 2.0, 3.0]))

    def test_constant_series_is_safe(self):
        phi, variance = fit_ar_yule_walker([5.0] * 100, 3)
        assert np.all(phi == 0.0)
        assert variance == 0.0

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            fit_ar_yule_walker([1.0], 2)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            fit_ar_yule_walker([1.0, float("nan"), 2.0], 1)


class TestArOls:
    def test_recovers_coefficient_and_intercept(self):
        z = make_ar1(20000, 0.6, const=2.0)
        phi, intercept, residuals = fit_ar_ols(z, 1)
        assert phi[0] == pytest.approx(0.6, abs=0.02)
        assert intercept == pytest.approx(2.0, abs=0.1)
        assert residuals.size == z.size - 1

    def test_residuals_are_white(self):
        z = make_ar1(20000, 0.8)
        _, _, residuals = fit_ar_ols(z, 1)
        correlations = acf(residuals, 5)
        assert np.all(np.abs(correlations[1:]) < 0.03)

    def test_order_zero_returns_mean(self):
        phi, intercept, residuals = fit_ar_ols([1.0, 2.0, 3.0], 0)
        assert intercept == pytest.approx(2.0)
        assert residuals == pytest.approx([-1.0, 0.0, 1.0])


class TestHannanRissanen:
    def test_recovers_arma11(self):
        z = make_arma11(50000, phi=0.6, theta=0.4)
        model = fit_arma_hannan_rissanen(z, 1, 1)
        assert model.phi[0] == pytest.approx(0.6, abs=0.05)
        assert model.theta[0] == pytest.approx(0.4, abs=0.06)
        assert model.noise_variance == pytest.approx(1.0, rel=0.1)

    def test_pure_ar_path(self):
        z = make_ar1(10000, 0.5)
        model = fit_arma_hannan_rissanen(z, 1, 0)
        assert model.q == 0
        assert model.phi[0] == pytest.approx(0.5, abs=0.03)

    def test_pure_ma(self):
        rng = np.random.default_rng(2)
        noise = rng.normal(0, 1, 50000)
        z = noise[1:] + 0.5 * noise[:-1]
        model = fit_arma_hannan_rissanen(z, 0, 1)
        assert model.theta[0] == pytest.approx(0.5, abs=0.05)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            fit_arma_hannan_rissanen(np.arange(6.0), 2, 2)

    def test_stationarity_check(self):
        stationary = ArmaModel(
            phi=np.array([0.5]), theta=np.zeros(0), const=0.0, noise_variance=1.0
        )
        explosive = ArmaModel(
            phi=np.array([1.2]), theta=np.zeros(0), const=0.0, noise_variance=1.0
        )
        assert stationary.is_stationary()
        assert not explosive.is_stationary()

    def test_forecast_one_uses_history(self):
        model = ArmaModel(
            phi=np.array([0.5]), theta=np.array([0.2]), const=1.0, noise_variance=1.0
        )
        forecast = model.forecast_one([2.0], [0.4])
        assert forecast == pytest.approx(1.0 + 0.5 * 2.0 + 0.2 * 0.4)

    def test_forecast_one_zero_pads_short_history(self):
        model = ArmaModel(
            phi=np.array([0.5, 0.3]), theta=np.zeros(0), const=0.0, noise_variance=1.0
        )
        assert model.forecast_one([2.0], []) == pytest.approx(1.0)

    def test_innovations_recover_noise(self):
        z = make_ar1(5000, 0.7, seed=3)
        model = fit_arma_hannan_rissanen(z, 1, 0)
        innovations = model.innovations(z)
        # Innovations of a well-fitted model are white.
        correlations = acf(innovations[10:], 3)
        assert np.all(np.abs(correlations[1:]) < 0.05)


class TestDifferencing:
    def test_difference_once(self):
        assert list(difference([1.0, 3.0, 6.0], 1)) == [2.0, 3.0]

    def test_difference_twice(self):
        assert list(difference([1.0, 3.0, 6.0, 10.0], 2)) == [1.0, 1.0]

    def test_difference_zero_identity(self):
        assert list(difference([1.0, 2.0], 0)) == [1.0, 2.0]

    def test_undifference_d1(self):
        # y_{t+1} = w + y_t
        assert undifference_forecast(2.0, [5.0], 1) == pytest.approx(7.0)

    def test_undifference_d2(self):
        # y_{t+1} = w + 2 y_t - y_{t-1}
        assert undifference_forecast(1.0, [3.0, 5.0], 2) == pytest.approx(1 + 10 - 3)

    def test_roundtrip(self):
        series = [1.0, 4.0, 9.0, 16.0, 25.0]
        w = difference(series, 2)
        reconstructed = undifference_forecast(w[-1], series[:-1], 2)
        assert reconstructed == pytest.approx(series[-1])

    def test_undifference_needs_history(self):
        with pytest.raises(ValueError):
            undifference_forecast(1.0, [5.0], 2)


class TestArimaForecaster:
    def test_tracks_ar1(self):
        z = make_ar1(3000, 0.8, seed=4) + 10.0
        forecaster = ArimaForecaster(1, 0, 0, refit_interval=500, initial_fit=100)
        msqerr, _ = evaluate_forecaster(forecaster, z, warmup=200)
        # Optimal one-step error variance is 1.0; allow slack.
        assert msqerr < 1.3

    def test_beats_last_value_on_trend(self):
        # A noisy ramp: ARIMA(0,1,0) with drift ~ should beat naive LAST.
        rng = np.random.default_rng(5)
        z = np.cumsum(np.full(2000, 0.5)) + rng.normal(0, 0.1, 2000)
        arima = ArimaForecaster(1, 1, 0, refit_interval=500, initial_fit=100)
        msq_arima, _ = evaluate_forecaster(arima, z, warmup=200)

        class LastValue:
            def __init__(self):
                self.last = 0.0

            def observe(self, v):
                self.last = v

            def predict(self):
                return self.last

        msq_last, _ = evaluate_forecaster(LastValue(), z, warmup=200)
        assert msq_arima < msq_last

    def test_fallback_before_first_fit_is_last_value(self):
        forecaster = ArimaForecaster(2, 1, 1, initial_fit=100)
        assert forecaster.predict() == 0.0
        forecaster.observe(5.0)
        assert forecaster.predict() == 5.0
        assert not forecaster.fitted

    def test_fits_after_initial_fit_threshold(self):
        z = make_ar1(300, 0.5, seed=6)
        forecaster = ArimaForecaster(1, 0, 0, refit_interval=1000, initial_fit=200)
        for value in z:
            forecaster.observe(value)
        assert forecaster.fitted
        assert forecaster.refits >= 1

    def test_refit_interval_respected(self):
        z = make_ar1(2500, 0.5, seed=7)
        forecaster = ArimaForecaster(1, 0, 0, refit_interval=1000, initial_fit=200)
        for value in z:
            forecaster.observe(value)
        # Fits at 200 (first), 1000, 2000.
        assert forecaster.refits == 3

    def test_reset_clears_state(self):
        forecaster = ArimaForecaster(1, 0, 0, initial_fit=50)
        for value in make_ar1(100, 0.5):
            forecaster.observe(value)
        forecaster.reset()
        assert not forecaster.fitted
        assert forecaster.predict() == 0.0

    def test_non_finite_observation_rejected(self):
        forecaster = ArimaForecaster(1, 0, 0)
        with pytest.raises(ValueError):
            forecaster.observe(float("inf"))

    def test_invalid_orders_rejected(self):
        with pytest.raises(ValueError):
            ArimaForecaster(-1, 0, 0)
        with pytest.raises(ValueError):
            ArimaForecaster(1, 0, 0, refit_interval=0)
        with pytest.raises(ValueError):
            ArimaForecaster(5, 0, 0, initial_fit=3)

    def test_paper_order_on_delay_like_series(self):
        # ARIMA(2,1,1) on a delay-like series stays sane and close.
        rng = np.random.default_rng(8)
        z = 0.2 + np.abs(rng.normal(0, 0.005, 3000))
        forecaster = ArimaForecaster(2, 1, 1, refit_interval=1000, initial_fit=200)
        msqerr, predictions = evaluate_forecaster(forecaster, z, warmup=300)
        assert math.isfinite(msqerr)
        assert msqerr < np.var(z) * 3
        assert np.all(np.isfinite(predictions[300:]))


class TestEvaluateForecaster:
    def test_returns_predictions_with_nan_warmup(self):
        class Zero:
            def observe(self, v):
                pass

            def predict(self):
                return 0.0

        msqerr, predictions = evaluate_forecaster(Zero(), [1.0, 1.0, 1.0], warmup=1)
        assert math.isnan(predictions[0])
        assert predictions[1] == 0.0
        assert msqerr == pytest.approx(1.0)

    def test_invalid_warmup_rejected(self):
        class Zero:
            def observe(self, v):
                pass

            def predict(self):
                return 0.0

        with pytest.raises(ValueError):
            evaluate_forecaster(Zero(), [1.0, 2.0], warmup=2)


class TestOrderSelection:
    def test_selects_differencing_for_random_walk(self):
        rng = np.random.default_rng(9)
        z = np.cumsum(rng.normal(0, 1, 2000))
        result = select_arima_order(
            z, p_range=range(0, 2), d_range=range(0, 2), q_range=range(0, 2)
        )
        assert result.best_order[1] == 1  # d = 1 wins on a random walk

    def test_selects_ar_for_ar_process(self):
        z = make_ar1(3000, 0.8, seed=10)
        result = select_arima_order(
            z, p_range=range(0, 3), d_range=range(0, 2), q_range=range(0, 2)
        )
        p, d, q = result.best_order
        assert d == 0
        assert p >= 1

    def test_ranked_is_sorted(self):
        z = make_ar1(1000, 0.5, seed=11)
        result = select_arima_order(
            z, p_range=range(0, 2), d_range=range(0, 1), q_range=range(0, 2)
        )
        scores = [score for _, score in result.ranked()]
        assert scores == sorted(scores)

    def test_score_order_inf_for_impossible_fit(self):
        z = make_ar1(30, 0.5, seed=12)
        assert score_order(z, 8, 0, 8) == math.inf

    def test_too_short_series_rejected(self):
        with pytest.raises(ValueError):
            select_arima_order([1.0] * 10)


class TestDiagnostics:
    def test_acf_of_white_noise(self):
        rng = np.random.default_rng(13)
        z = rng.normal(0, 1, 20000)
        correlations = acf(z, 5)
        assert correlations[0] == pytest.approx(1.0)
        assert np.all(np.abs(correlations[1:]) < 0.03)

    def test_acf_of_ar1_decays_geometrically(self):
        z = make_ar1(50000, 0.7, seed=14)
        correlations = acf(z, 3)
        assert correlations[1] == pytest.approx(0.7, abs=0.03)
        assert correlations[2] == pytest.approx(0.49, abs=0.04)

    def test_pacf_of_ar1_cuts_off(self):
        z = make_ar1(50000, 0.7, seed=15)
        partial = pacf(z, 4)
        assert partial[1] == pytest.approx(0.7, abs=0.03)
        assert np.all(np.abs(partial[2:]) < 0.05)

    def test_pacf_lag0_is_one(self):
        assert pacf([1.0, 2.0, 1.5, 2.5, 1.0, 2.0], 1)[0] == 1.0

    def test_ljung_box_small_for_white_noise(self):
        rng = np.random.default_rng(16)
        q, dof = ljung_box(rng.normal(0, 1, 5000), 10)
        assert dof == 10
        assert q < 25  # chi2(10) 95% quantile ~ 18.3; generous bound

    def test_ljung_box_large_for_correlated(self):
        z = make_ar1(5000, 0.8, seed=17)
        q, _ = ljung_box(z, 10)
        assert q > 1000

    def test_ljung_box_validation(self):
        with pytest.raises(ValueError):
            ljung_box([1.0, 2.0], 5)
        with pytest.raises(ValueError):
            ljung_box([1.0] * 100, 0)

    def test_acf_constant_series(self):
        correlations = acf([3.0] * 50, 4)
        assert correlations[0] == 1.0
        assert np.all(correlations[1:] == 0.0)
