"""The chaos invariant suite, live side.

The same fault plans replayed over real loopback UDP: the daemon never
crashes under any fault family, its online accumulators stay consistent
with the recorded trace, detectors re-trust within bounded time after a
partition heals, degraded mode is observable on ``/qos`` and
``/metrics``, and the ``repro chaos`` CLI replays one plan JSON against
both the simulator and the live path.
"""

import asyncio
import json

import pytest

from repro.chaos import (
    ChaosEngine,
    FaultPlan,
    attach_daemon,
    attach_fleet,
    run_daemon_scenario_async,
)
from repro.nekostat.metrics import OnlineQosAccumulator
from repro.obs import TraceRecorder
from repro.service import HeartbeatFleet, MonitorDaemon

pytestmark = [pytest.mark.chaos, pytest.mark.network]

NETWORK_TIMEOUT = 90.0
DETECTOR = "Last+CI_med"


def run(coroutine, timeout=NETWORK_TIMEOUT):
    """Run an async test body with a hard timeout (no plugin needed)."""
    return asyncio.run(asyncio.wait_for(coroutine, timeout=timeout))


async def eventually(predicate, *, timeout=30.0, interval=0.02):
    """Poll ``predicate`` until true or ``timeout`` elapses."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            return False
        await asyncio.sleep(interval)
    return True


def full_fault_matrix_plan() -> FaultPlan:
    """Every fault family the engine knows, packed into ~5 seconds."""
    return (
        FaultPlan.build(name="matrix", seed=0)
        .loss_burst(0.0, 1.0, 0.6)
        .duplicate(0.5, 1.5, copies=3)
        .reorder(1.0, 2.0, 0.8, 0.2)
        .corrupt(1.5, 2.5, 0.5)
        .truncate(2.0, 3.0, 0.5)
        .delay_spike(2.5, 3.5, 0.3)
        .clock_skew(3.0, 4.0, 0.15)
        .partition("node-2", "monitor", 3.5, 4.5, bidirectional=False)
        .pause("node-1", 4.0, 5.0)
        .done()
    )


class TestDaemonSurvivesChaos:
    def test_full_fault_matrix_never_crashes_the_daemon(self):
        report = run(run_daemon_scenario_async(
            full_fault_matrix_plan(),
            duration=8.0,
            eta=0.15,
            endpoints=("node-1", "node-2"),
        ))
        assert report["survived"]
        stats = report["chaos"]["stats"]
        assert stats["decisions"] > 0
        # Every family in the plan actually touched traffic.
        assert set(stats["by_kind"]) == {
            "loss-burst", "duplicate", "reorder", "corrupt", "truncate",
            "delay-spike", "clock-skew", "partition", "pause",
        }
        daemon = report["daemon"]
        assert daemon["heartbeats_total"] > 0
        # Faults ended 3s before the run did: both endpoints are
        # re-trusted by the end.
        for endpoint in report["endpoints"].values():
            assert endpoint["heartbeats"] > 0
            assert not endpoint["suspecting_at_end"]

    def test_accumulators_stay_consistent_with_recorded_trace(self):
        async def main():
            tracer = TraceRecorder(None, ring_capacity=8192)
            plan = (
                FaultPlan.build(name="consistency", seed=4)
                .loss_burst(0.5, 2.0, 0.7)
                .partition("node-1", "monitor", 2.5, 4.0,
                           bidirectional=False)
                .done()
            )
            engine = ChaosEngine(plan)
            daemon = MonitorDaemon(
                port=0, http_port=None, eta=0.15,
                detector_ids=[DETECTOR], initial_timeout=0.8,
                tracer=tracer,
            )
            intake = attach_daemon(engine, daemon)
            await daemon.start()
            intake.arm(daemon.scheduler.now)
            fleet = HeartbeatFleet(
                ["node-1", "node-2"], daemon.udp_endpoint, eta=0.15
            )
            attach_fleet(engine, fleet)
            await fleet.start()
            try:
                # fdlint: disable=clock-discipline (live loopback scenario runs in real time by contract)
                await asyncio.sleep(6.0)
                events = tracer.tail(8192)
                for monitor in daemon.registry:
                    accumulator = monitor.accumulators[DETECTOR]
                    detector = monitor.detectors[DETECTOR]
                    # The accumulator mirrors the live detector verdict...
                    assert accumulator.suspecting == detector.suspecting
                    # ...and replaying the recorded suspect/trust trace
                    # into a fresh accumulator reproduces it exactly.
                    transitions = [
                        e for e in events
                        if e["endpoint"] == monitor.name
                        and e.get("detector") == DETECTOR
                        and e["kind"] in ("suspect", "trust")
                    ]
                    replayed = OnlineQosAccumulator(
                        DETECTOR, start_time=monitor.registered_at
                    )
                    for event in transitions:
                        replayed.observe_transition(
                            event["kind"] == "suspect", event["t"]
                        )
                    assert replayed.transitions == accumulator.transitions
                    now = daemon.scheduler.now
                    live = accumulator.snapshot(now)
                    mirror = replayed.snapshot(now)
                    assert live.td_samples == mirror.td_samples
                    assert len(live.mistakes) == len(mirror.mistakes)
                    # Live scheduler: emit and observe read `now` a few
                    # microseconds apart, so the integral is approximate.
                    assert live.suspected_up_time == pytest.approx(
                        mirror.suspected_up_time, abs=0.01
                    )
            finally:
                await fleet.stop()
                await daemon.stop()
                tracer.close()

        run(main())

    def test_detectors_retrust_within_bounded_time_after_heal(self):
        async def main():
            plan = (
                FaultPlan.build(name="heal", seed=0)
                .partition("node-1", "monitor", 0.0, 2.5,
                           bidirectional=False)
                .done()
            )
            engine = ChaosEngine(plan)
            daemon = MonitorDaemon(
                port=0, http_port=None, eta=0.1,
                detector_ids=[DETECTOR], initial_timeout=0.8,
            )
            intake = attach_daemon(engine, daemon)
            await daemon.start()
            # Keep the plan dormant until the endpoint is registered.
            intake.arm(float("inf"))
            fleet = HeartbeatFleet(["node-1"], daemon.udp_endpoint, eta=0.1)
            await fleet.start()
            try:
                def detector():
                    monitor = daemon.registry.get("node-1")
                    return (
                        monitor.detectors[DETECTOR] if monitor else None
                    )

                assert await eventually(
                    lambda: detector() is not None
                    and detector().heartbeats_seen >= 3
                )
                intake.arm(daemon.scheduler.now)  # partition starts now
                assert await eventually(
                    lambda: detector().suspecting, timeout=10.0
                ), "partition must drive the detector to suspect"
                # After the heal the detector must re-trust in bounded
                # time (first fresh heartbeat through the healed link).
                assert await eventually(
                    lambda: not detector().suspecting, timeout=10.0
                ), "healed partition must restore trust"
            finally:
                await fleet.stop()
                await daemon.stop()

        run(main())

    def test_recorded_trace_reproduces_online_qos(self, tmp_path):
        """The PR's acceptance criterion: ``repro trace-analyze`` on a
        trace recorded from a chaos-scenario daemon run reproduces the
        online accumulators' QoS numbers from spans alone."""
        import os

        import repro.obs.analyze as obs_analyze
        from repro.nekostat.metrics import DetectorQos

        # CI points CHAOS_TRACE_DIR at a workspace directory so the
        # recorded trace survives the run and is uploaded as an
        # artifact when the chaos suite fails.
        trace_dir = os.environ.get("CHAOS_TRACE_DIR")
        if trace_dir:
            os.makedirs(trace_dir, exist_ok=True)
            trace_path = os.path.join(trace_dir, "acceptance-fd-trace.jsonl")
        else:
            trace_path = str(tmp_path / "fd-trace.jsonl")
        plan = (
            FaultPlan.build(name="acceptance", seed=2)
            .loss_burst(0.5, 2.0, 0.7)
            .delay_spike(2.5, 3.5, 0.4)
            .done()
        )
        report = run(run_daemon_scenario_async(
            plan, duration=6.0, eta=0.15,
            endpoints=("node-1", "node-2"), trace_path=trace_path,
        ))
        assert report["survived"]
        events = obs_analyze.load_events([trace_path])
        assert events, "the scenario must have recorded spans"
        analysis = obs_analyze.analyze(events, end_time=report["now"])
        # Rebuild the reference from the report's accumulator briefs.
        problems = []
        for endpoint, entry in report["endpoints"].items():
            for detector, brief in entry["qos"].items():
                span_qos = analysis.qos.get((endpoint, detector))
                if span_qos is None:
                    if brief["mistakes"] or brief["td_samples"]:
                        problems.append(f"{endpoint}/{detector} missing")
                    continue
                qos = span_qos.qos
                if len(qos.mistakes) != brief["mistakes"]:
                    problems.append(
                        f"{endpoint}/{detector} mistakes "
                        f"{len(qos.mistakes)} != {brief['mistakes']}"
                    )
                if len(qos.td_samples) != brief["td_samples"]:
                    problems.append(f"{endpoint}/{detector} td count")
                if abs(qos.p_a - brief["p_a"]) > 1e-3:
                    problems.append(
                        f"{endpoint}/{detector} P_A {qos.p_a} "
                        f"vs {brief['p_a']}"
                    )
                assert span_qos.inconsistencies == 0
        assert not problems, problems
        # At least one series actually exercised the mistake machinery
        # (the loss burst lasts ~10 heartbeat periods per endpoint).
        assert any(
            brief["mistakes"] > 0
            for entry in report["endpoints"].values()
            for brief in entry["qos"].values()
        ), "chaos plan should have induced at least one mistake"
        # cross_check agrees with the same data via the public surface.
        reference = {}
        for endpoint, entry in report["endpoints"].items():
            for detector, brief in entry["qos"].items():
                mirror = analysis.qos.get((endpoint, detector))
                if mirror is not None:
                    reference[(endpoint, detector)] = mirror.qos
        assert isinstance(next(iter(reference.values())), DetectorQos)
        assert obs_analyze.cross_check(analysis, reference) == []

    def test_load_shedding_is_bounded_and_counted(self):
        report = run(run_daemon_scenario_async(
            FaultPlan(name="empty"),
            duration=3.0,
            eta=0.02,
            endpoints=("n1", "n2", "n3"),
            max_intake_rate=20.0,
        ))
        assert report["survived"]
        daemon = report["daemon"]
        # 3 emitters at 50 Hz against a 20/s budget: intake shed load
        # instead of falling over, and counted every shed datagram.
        assert daemon["shed_datagrams"] > 0
        assert daemon["heartbeats_total"] > 0


class TestDegradedMode:
    def test_sqlite_failure_degrades_but_keeps_serving(self):
        async def main():
            from repro.obs import WindowedQosStore

            history = WindowedQosStore(":memory:", retention=3600.0)
            daemon = MonitorDaemon(
                port=0, http_port=None, eta=0.1,
                detector_ids=[DETECTOR], initial_timeout=0.8,
                history=history, snapshot_interval=0.0,
            )
            await daemon.start()
            fleet = HeartbeatFleet(["node-1"], daemon.udp_endpoint, eta=0.1)
            await fleet.start()
            try:
                assert await eventually(
                    lambda: daemon.registry.get("node-1") is not None
                )
                assert not daemon.qos_window(10.0)["degraded"]
                assert "fd_service_degraded 0" in daemon.metrics_text()

                # Chaos hook: the next sqlite statement fails.  The
                # store falls back to in-memory and keeps serving.
                history.inject_sqlite_failures(1)
                daemon._take_snapshots()
                payload = daemon.qos_window(10.0)
                assert payload["degraded"] is True
                assert payload["endpoints"], "degraded /qos still serves"
                metrics = daemon.metrics_text()
                assert "fd_service_degraded 1" in metrics
                assert history.degradations_total == 1
                # The degraded store still records new windows.
                daemon._take_snapshots()
                assert daemon.qos_window(10.0)["degraded"] is True
            finally:
                await fleet.stop()
                await daemon.stop()

        run(main())


class TestCliReplay:
    def test_same_plan_json_replays_against_sim_and_live(self, tmp_path):
        from repro.cli import main

        plan = (
            FaultPlan.build(name="replay", seed=6)
            .loss_burst(0.5, 2.0, 0.5)
            .delay_spike(2.0, 3.0, 0.2)
            .done()
        )
        plan_path = tmp_path / "plan.json"
        plan.save(str(plan_path))
        sim_out = tmp_path / "sim.json"
        live_out = tmp_path / "live.json"
        assert main([
            "chaos", "--plan", str(plan_path), "--target", "sim",
            "--duration", "10", "--output", str(sim_out),
        ]) == 0
        assert main([
            "chaos", "--plan", str(plan_path), "--target", "daemon",
            "--duration", "4", "--output", str(live_out),
        ]) == 0
        sim_report = json.loads(sim_out.read_text())
        live_report = json.loads(live_out.read_text())
        assert sim_report["target"] == "sim"
        assert live_report["target"] == "daemon"
        for report in (sim_report, live_report):
            assert report["survived"]
            assert report["chaos"]["plan"] == "replay"
            assert report["chaos"]["seed"] == 6
            assert report["chaos"]["stats"]["decisions"] > 0
