"""Tests for the ``repro lint`` command-line surface.

Exit-code contract: ``0`` clean, ``1`` findings, ``2`` usage error.
"""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
CLEAN = str(FIXTURES / "clock" / "negative.py")
DIRTY = str(FIXTURES / "clock" / "positive.py")


class TestExitCodes:
    def test_clean_fixture_exits_zero(self, capsys):
        assert main(["lint", CLEAN]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s) in 1 file(s)" in out

    def test_findings_exit_one(self, capsys):
        assert main(["lint", DIRTY]) == 1
        out = capsys.readouterr().out
        assert "clock-discipline" in out
        assert "FDL001" in out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", CLEAN, "--select", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "no/such/dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_write_baseline_requires_baseline_path(self, capsys):
        assert main(["lint", DIRTY, "--write-baseline"]) == 2
        assert "--write-baseline requires" in capsys.readouterr().err

    def test_missing_baseline_file_exits_two(self, capsys):
        assert main(["lint", DIRTY, "--baseline", "no/such.json"]) == 2
        assert "no such baseline" in capsys.readouterr().err


class TestSelection:
    def test_select_by_code(self, capsys):
        assert main(["lint", DIRTY, "--select", "FDL001"]) == 1
        assert "clock-discipline" in capsys.readouterr().out

    def test_ignore_makes_dirty_file_clean(self, capsys):
        assert main(["lint", DIRTY, "--ignore", "clock-discipline"]) == 0
        capsys.readouterr()


class TestBaselineFlow:
    def test_write_then_filter(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main([
            "lint", DIRTY, "--baseline", baseline, "--write-baseline",
        ]) == 0
        assert "wrote" in capsys.readouterr().out

        assert main(["lint", DIRTY, "--baseline", baseline]) == 0
        assert "baselined" in capsys.readouterr().out


class TestJsonOutput:
    def test_json_document_parses(self, capsys):
        assert main(["lint", DIRTY, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert payload["counts"]["clock-discipline"] >= 1
        for finding in payload["findings"]:
            assert finding["code"].startswith("FDL")

    def test_json_clean_document(self, capsys):
        assert main(["lint", CLEAN, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
