"""Validation of the analytic QoS model against the simulator.

Chen et al. validated their NFD analysis by simulation; here the roles
are reversed — the closed-form predictions of
:class:`repro.fd.analysis.ConstantTimeoutAnalysis` validate the whole
simulation pipeline (engine, links, detector, metric extraction) on
configurations where both are exact.
"""

import math

import numpy as np
import pytest

from repro.fd.analysis import ConstantTimeoutAnalysis
from repro.fd.baselines import constant_timeout_strategy
from repro.fd.detector import PushFailureDetector
from repro.fd.heartbeat import Heartbeater
from repro.fd.simcrash import SimCrash
from repro.neko.layer import ProtocolStack
from repro.neko.system import NekoSystem
from repro.nekostat.log import EventLog
from repro.nekostat.metrics import extract_qos
from repro.net.delay import ShiftedGammaDelay
from repro.net.loss import BernoulliLoss
from repro.sim.engine import Simulator


def simulate(delta, *, duration=20000.0, eta=1.0, loss=0.0,
             crash_schedule=(), seed=3):
    sim = Simulator()
    rng = np.random.default_rng(seed)
    event_log = EventLog()
    system = NekoSystem(sim)
    delay_model = ShiftedGammaDelay(rng, minimum=0.15, shape=2.0, scale=0.02)
    loss_model = BernoulliLoss(np.random.default_rng(seed + 1), loss)
    system.network.set_link("q", "p", delay_model, loss_model, record_delays=False)
    heartbeater = Heartbeater("p", eta, event_log)
    simcrash = SimCrash(100.0, 20.0, None, event_log, schedule=list(crash_schedule))
    system.create_process("q", ProtocolStack([heartbeater, simcrash]))
    detector = PushFailureDetector(
        constant_timeout_strategy(delta), "q", eta, event_log,
        detector_id="fd", initial_timeout=5.0,
    )
    system.create_process("p", ProtocolStack([detector]))
    system.run(until=duration)
    return extract_qos(event_log, end_time=duration)["fd"]


@pytest.fixture(scope="module")
def analysis():
    rng = np.random.default_rng(3)
    sample = 0.15 + rng.gamma(2.0, 0.02, 200_000)
    return ConstantTimeoutAnalysis(sample, eta=1.0)


class TestAgainstSimulation:
    def test_mistake_recurrence_matches(self, analysis):
        delta = 0.25
        predicted = analysis.predict(delta)
        observed = simulate(delta)
        assert observed.t_mr is not None
        assert observed.t_mr.mean == pytest.approx(
            predicted.mistake_recurrence_mean, rel=0.15
        )

    def test_mistake_duration_matches(self, analysis):
        delta = 0.25
        predicted = analysis.predict(delta)
        observed = simulate(delta)
        assert observed.t_m.mean == pytest.approx(
            predicted.mistake_duration_mean, rel=0.25
        )

    def test_query_accuracy_matches(self, analysis):
        delta = 0.25
        predicted = analysis.predict(delta)
        observed = simulate(delta)
        assert observed.p_a == pytest.approx(predicted.query_accuracy, abs=2e-4)

    def test_detection_time_matches(self, analysis):
        delta = 0.3
        predicted = analysis.predict(delta)
        # Crash phases swept over the heartbeat cycle (k * 0.37 mod 1) so
        # the "uniform crash instant" assumption of the formula holds.
        schedule = [
            (100.0 * k + 50.0 + (k * 0.37) % 1.0,
             100.0 * k + 70.0 + (k * 0.37) % 1.0)
            for k in range(100)
        ]
        observed = simulate(delta, crash_schedule=schedule, duration=10_050.0)
        assert observed.t_d.mean == pytest.approx(
            predicted.detection_time_mean, rel=0.05
        )
        assert observed.t_d_upper <= predicted.detection_time_worst + 1e-6

    def test_loss_dominates_at_large_delta(self, analysis):
        loss = 0.01
        rng = np.random.default_rng(3)
        sample = 0.15 + rng.gamma(2.0, 0.02, 200_000)
        lossy = ConstantTimeoutAnalysis(sample, eta=1.0, loss_probability=loss)
        delta = 0.6  # effectively no late messages
        predicted = lossy.predict(delta)
        observed = simulate(delta, loss=loss, duration=50_000.0)
        assert predicted.mistake_probability_per_cycle == pytest.approx(loss, rel=0.01)
        assert observed.t_mr.mean == pytest.approx(
            predicted.mistake_recurrence_mean, rel=0.15
        )


class TestPredictions:
    def test_worst_case_formula(self, analysis):
        qos = analysis.predict(0.4)
        assert qos.detection_time_worst == pytest.approx(1.4)
        assert qos.detection_time_mean == pytest.approx(0.9)

    def test_larger_delta_rarer_mistakes(self, analysis):
        small = analysis.predict(0.2)
        large = analysis.predict(0.3)
        assert large.mistake_recurrence_mean > small.mistake_recurrence_mean
        assert large.query_accuracy >= small.query_accuracy

    def test_huge_delta_mistake_free(self, analysis):
        qos = analysis.predict(10.0)
        assert math.isinf(qos.mistake_recurrence_mean)
        assert qos.query_accuracy == 1.0

    def test_delta_for_recurrence_inverts_predict(self, analysis):
        target = 120.0
        delta = analysis.delta_for_recurrence(target)
        achieved = analysis.predict(delta).mistake_recurrence_mean
        assert achieved >= target * 0.95

    def test_delta_for_recurrence_unsatisfiable_with_loss(self):
        rng = np.random.default_rng(0)
        sample = 0.15 + rng.gamma(2.0, 0.02, 10_000)
        lossy = ConstantTimeoutAnalysis(sample, eta=1.0, loss_probability=0.01)
        with pytest.raises(ValueError):
            lossy.delta_for_recurrence(1_000.0)  # loss alone caps T_MR at 100 s

    def test_late_probability_empirical(self):
        analysis = ConstantTimeoutAnalysis([0.1, 0.2, 0.3, 0.4], eta=1.0)
        assert analysis.late_probability(0.25) == pytest.approx(0.5)
        assert analysis.late_probability(0.45) == 0.0

    def test_mean_excess(self):
        analysis = ConstantTimeoutAnalysis([0.1, 0.2, 0.3, 0.4], eta=1.0)
        assert analysis.mean_excess(0.25) == pytest.approx(0.1)
        assert analysis.mean_excess(1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantTimeoutAnalysis([], eta=1.0)
        with pytest.raises(ValueError):
            ConstantTimeoutAnalysis([0.1], eta=0.0)
        with pytest.raises(ValueError):
            ConstantTimeoutAnalysis([0.1], eta=1.0, loss_probability=1.0)
        analysis = ConstantTimeoutAnalysis([0.1], eta=1.0)
        with pytest.raises(ValueError):
            analysis.predict(-0.1)
        with pytest.raises(ValueError):
            analysis.delta_for_recurrence(0.0)
