"""Focused edge-case tests across modules (coverage deepening)."""

import math

import numpy as np
import pytest

from repro.experiments.qos import figure_data, qos_metric_value
from repro.experiments.report import format_qos_report
from repro.experiments.runner import MONITORED, build_qos_system, run_qos_experiment
from repro.fd.combinations import make_strategy
from repro.fd.detector import PushFailureDetector
from repro.neko.config import ExperimentConfig
from repro.nekostat.metrics import DetectorQos, extract_qos
from repro.nekostat.quantities import IntervalQuantity, QuantitySet
from repro.nekostat.events import EventKind
from repro.timeseries.arma import ArmaModel


class TestConfigExtras:
    def test_extras_flow_to_initial_timeout(self):
        config = ExperimentConfig(
            num_cycles=200, mttc=60.0, ttr=12.0,
            extras={"initial_timeout": 42.0},
        )
        parts = build_qos_system(config, ["Last+JAC_med"])
        detector = parts["detectors"]["Last+JAC_med"]
        assert detector._initial_timeout == 42.0

    def test_extras_default_initial_timeout_scales_with_eta(self):
        config = ExperimentConfig(num_cycles=200, mttc=60.0, ttr=12.0, eta=2.0)
        parts = build_qos_system(config, ["Last+JAC_med"])
        detector = parts["detectors"]["Last+JAC_med"]
        assert detector._initial_timeout == 20.0


class TestMetricValueEdges:
    def test_nan_for_missing_samples(self):
        empty = DetectorQos(detector="x", observation_time=10.0, up_time=10.0)
        assert math.isnan(qos_metric_value(empty, "td"))
        assert math.isnan(qos_metric_value(empty, "tdu"))
        assert math.isnan(qos_metric_value(empty, "tm"))
        assert math.isnan(qos_metric_value(empty, "tmr"))
        assert qos_metric_value(empty, "pa") == 1.0

    def test_figure_data_custom_axes(self):
        config = ExperimentConfig(num_cycles=300, mttc=60.0, ttr=12.0, seed=1)
        result = run_qos_experiment(config, ["Last+JAC_med"])
        data = figure_data(
            result.qos, "td", predictors=["Last"], margins=["JAC_med"]
        )
        assert set(data) == {"Last"}
        assert set(data["Last"]) == {"JAC_med"}

    def test_format_qos_report_custom_titles(self):
        data = {"td": {"Last": {"CI_low": 0.5}}}
        text = format_qos_report(data, titles={"td": "My Custom Title"})
        assert "My Custom Title" in text


class TestArmaEdges:
    def test_empty_ar_is_stationary(self):
        model = ArmaModel(
            phi=np.zeros(0), theta=np.array([0.4]), const=0.0, noise_variance=1.0
        )
        assert model.is_stationary()

    def test_innovations_of_empty_series(self):
        model = ArmaModel(
            phi=np.array([0.5]), theta=np.zeros(0), const=0.0, noise_variance=1.0
        )
        assert model.innovations([]).size == 0

    def test_forecast_with_empty_history(self):
        model = ArmaModel(
            phi=np.array([0.5]), theta=np.array([0.3]), const=2.0,
            noise_variance=1.0,
        )
        assert model.forecast_one([], []) == pytest.approx(2.0)


class TestSelectionEdges:
    def test_ranked_puts_failures_last(self):
        from repro.timeseries.selection import GridSearchResult

        result = GridSearchResult(
            best_order=(1, 0, 0),
            best_msqerr=1.0,
            scores={(1, 0, 0): 1.0, (9, 9, 9): math.inf, (0, 0, 0): 2.0},
        )
        ranked = result.ranked()
        assert ranked[0][0] == (1, 0, 0)
        assert ranked[-1][0] == (9, 9, 9)


class TestLiveMembershipIntegration:
    def test_membership_over_real_detectors(self):
        """End-to-end: MembershipService consuming live detector events."""
        from repro.apps.membership import MembershipService

        config = ExperimentConfig(num_cycles=600, mttc=80.0, ttr=15.0, seed=9)
        parts = build_qos_system(config, ["Arima+CI_high"])
        service = MembershipService(
            parts["event_log"],
            members=[MONITORED, "backup"],
            detector_of={MONITORED: "Arima+CI_high", "backup": "phantom"},
        )
        parts["system"].run(until=config.duration)
        qos = extract_qos(
            parts["event_log"], end_time=config.duration,
            detectors=["Arima+CI_high"],
        )["Arima+CI_high"]
        # Every crash must have flipped the coordinator to the backup and
        # every repair back: elections >= 2 * detected crashes.
        assert service.stats.elections >= 2 * len(qos.td_samples)
        # The membership view mirrors the live detector state exactly.
        detector = parts["detectors"]["Arima+CI_high"]
        assert service.is_suspected(MONITORED) == detector.suspecting
        expected = "backup" if detector.suspecting else MONITORED
        assert service.coordinator() == expected

    def test_quantities_over_real_experiment(self):
        """The generic quantity framework measures a real run's downtime."""
        config = ExperimentConfig(num_cycles=600, mttc=80.0, ttr=15.0, seed=9)
        parts = build_qos_system(config, ["Last+JAC_med"])
        quantities = QuantitySet(parts["event_log"])
        downtime = quantities.add(IntervalQuantity(
            "downtime",
            starts=lambda e: e.kind is EventKind.CRASH,
            ends=lambda e: e.kind is EventKind.RESTORE,
        ))
        parts["system"].run(until=config.duration)
        summary = downtime.summary()
        assert summary is not None
        # TTR is constant: every downtime sample equals 15 s.
        assert summary.mean == pytest.approx(15.0)
        assert summary.std == pytest.approx(0.0, abs=1e-9)


class TestUdpExtras:
    def test_wallclock_schedule_at(self):
        import time

        from repro.net.udp import WallClockScheduler

        scheduler = WallClockScheduler()
        fired = []
        scheduler.schedule_at(scheduler.now + 0.03, lambda: fired.append(True))
        time.sleep(0.15)
        assert fired == [True]

    def test_add_peer_endpoint(self):
        from repro.net.udp import UdpNetwork, WallClockScheduler

        with UdpNetwork(WallClockScheduler()) as network:
            network.add_peer("remote", "10.0.0.1", 9999)
            assert network.endpoint("remote") == ("10.0.0.1", 9999)

    def test_oversized_datagram_rejected(self):
        from repro.net.message import Datagram
        from repro.net.udp import UdpNetwork, WallClockScheduler

        with UdpNetwork(WallClockScheduler()) as network:
            network.register("a", lambda m: None)
            network.add_peer("b", "127.0.0.1", 1)
            huge = Datagram(
                source="a", destination="b", kind="t", payload="x" * 70_000
            )
            with pytest.raises(ValueError):
                network.send(huge)


class TestDetectorClockInteraction:
    def test_constant_offset_cancels_for_adaptive_detectors(self):
        """A constant clock offset inflates every measured delay by the
        offset — and every translation-equivariant predictor (all five of
        the paper's) passes that inflation straight into the prediction,
        which the local→global conversion of the freshness point then
        subtracts again.  Net effect after warm-up: *exactly none*.  The
        paper's NTP requirement therefore protects adaptive detectors
        from drift, not from offset."""
        base = ExperimentConfig(num_cycles=800, mttc=80.0, ttr=15.0, seed=2)
        plain = run_qos_experiment(base, ["Last+JAC_med"])
        shifted = run_qos_experiment(
            ExperimentConfig(
                num_cycles=800, mttc=80.0, ttr=15.0, seed=2, clock_offset=0.1
            ),
            ["Last+JAC_med"],
        )
        plain_td = plain.qos["Last+JAC_med"].t_d.mean
        shifted_td = shifted.qos["Last+JAC_med"].t_d.mean
        assert shifted_td == pytest.approx(plain_td, abs=1e-3)

    def test_constant_offset_shifts_constant_timeout_detector(self):
        """A constant-time-out detector has no adapting prediction to
        absorb the offset: a monitor clock running +100 ms ahead fires
        every freshness point 100 ms early (shorter detection, more
        mistakes)."""
        from repro.fd.baselines import constant_timeout_strategy

        def run(offset):
            config = ExperimentConfig(
                num_cycles=800, mttc=80.0, ttr=15.0, seed=2,
                clock_offset=offset,
            )
            parts = build_qos_system(config, [], extra_monitor_layers=lambda log: [
                PushFailureDetector(
                    constant_timeout_strategy(0.35), MONITORED, config.eta,
                    log, detector_id="const", initial_timeout=5.0,
                )
            ])
            parts["system"].run(until=config.duration)
            return extract_qos(
                parts["event_log"], end_time=config.duration,
                detectors=["const"],
            )["const"]

        plain = run(0.0)
        fast_clock = run(0.1)
        assert fast_clock.t_d.mean == pytest.approx(
            plain.t_d.mean - 0.1, abs=0.01
        )
        assert len(fast_clock.mistakes) >= len(plain.mistakes)

    def test_drifting_clock_still_detects(self):
        config = ExperimentConfig(
            num_cycles=800, mttc=80.0, ttr=15.0, seed=2, clock_drift=5e-5
        )
        result = run_qos_experiment(config, ["Last+JAC_med"])
        qos = result.qos["Last+JAC_med"]
        assert qos.undetected_crashes == 0
        assert len(qos.td_samples) >= 5
