"""Tests for LaTeX export."""

import math

import pytest

from repro.experiments.characterize import characterize_profile
from repro.experiments.latex import (
    latex_figure_grid,
    latex_predictor_accuracy_table,
    latex_wan_table,
)


class TestAccuracyTable:
    def test_rows_ranked_and_scaled(self):
        text = latex_predictor_accuracy_table({"Arima": 3e-5, "Last": 5e-5})
        lines = text.splitlines()
        arima_index = next(i for i, l in enumerate(lines) if "Arima" in l)
        last_index = next(i for i, l in enumerate(lines) if "Last" in l)
        assert arima_index < last_index
        assert "30.000" in lines[arima_index]

    def test_valid_tabular_structure(self):
        text = latex_predictor_accuracy_table({"Arima": 3e-5})
        assert text.startswith(r"\begin{tabular}")
        assert text.endswith(r"\end{tabular}")
        assert text.count(r"\hline") == 3


class TestWanTable:
    def test_contains_measured_values(self):
        result = characterize_profile(samples=3000, seed=1)
        text = latex_wan_table(result)
        assert "Mean one-way delay" in text
        assert r"\%" in text  # escaped percent in the loss row
        assert text.count(r"\\") == 6


class TestFigureGrid:
    DATA = {"Arima": {"CI_low": 0.5}, "Mean": {"CI_low": 0.6, "JAC_high": 0.7}}

    def test_grid_layout(self):
        text = latex_figure_grid(self.DATA, "T_D per combination")
        assert r"\begin{table}" in text and r"\caption" in text
        assert "500.0" in text and "700.0" in text
        assert "--" in text  # missing cells

    def test_caption_escaped(self):
        text = latex_figure_grid(self.DATA, "T_D (50% load & more)")
        assert r"\%" in text and r"\&" in text

    def test_underscored_names_escaped(self):
        text = latex_figure_grid(self.DATA, "x")
        assert r"CI\_low" in text

    def test_custom_axes(self):
        text = latex_figure_grid(
            self.DATA, "x", predictors=["Arima"], margins=["CI_low"]
        )
        assert "Mean" not in text
        assert "JAC" not in text

    def test_probability_scaling(self):
        data = {"Arima": {"CI_low": 0.999}}
        text = latex_figure_grid(data, "P_A", scale=1.0, decimals=4)
        assert "0.9990" in text
