"""Per-rule fixture tests: each rule is present, firing, and precise.

Every rule in ``src/repro/lint/rules/`` has one positive fixture (must
flag) and one negative fixture (must stay silent) under
``tests/lint_fixtures/``.  Rules are resolved through the engine's
package discovery, so deleting a rule module makes its positive test
fail — the corpus is genuinely load-bearing.
"""

from pathlib import Path

import pytest

from repro.lint import DEFAULT_CONFIG, lint_file
from repro.lint.engine import discover_rules

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
SRC = Path(__file__).resolve().parent.parent / "src"

#: rule slug -> (positive fixture, negative fixture)
CORPUS = {
    "clock-discipline": ("clock/positive.py", "clock/negative.py"),
    "seeded-randomness": (
        "randomness/positive.py", "randomness/negative.py"
    ),
    "async-blocking": (
        "service/async_positive.py", "service/async_negative.py"
    ),
    "lock-discipline": ("obs/lock_positive.py", "obs/lock_negative.py"),
    "float-time-equality": (
        "float_time/positive.py", "float_time/negative.py"
    ),
    "mutable-shared-state": (
        "fd/mutable_positive.py", "fd/mutable_negative.py"
    ),
    "sample-array-narrowing": (
        "metrics/positive.py", "metrics/negative.py"
    ),
    "detector-bank-construction": (
        "bank/positive.py", "bank/negative.py"
    ),
    "error-swallowing": ("errors/positive.py", "errors/negative.py"),
}


def findings_for(fixture: str, rule: str):
    result = lint_file(str(FIXTURES / fixture), DEFAULT_CONFIG, select=[rule])
    return [f for f in result.findings if f.rule == rule]


class TestRuleDiscovery:
    def test_at_least_six_rules_ship(self):
        assert len(discover_rules()) >= 6

    @pytest.mark.parametrize("slug", sorted(CORPUS))
    def test_rule_is_discovered(self, slug):
        assert slug in discover_rules(), (
            f"rule module for {slug!r} is missing from repro/lint/rules"
        )

    def test_codes_are_unique(self):
        rules = discover_rules().values()
        codes = [rule.code for rule in rules]
        assert len(set(codes)) == len(codes)

    def test_every_rule_states_its_invariant(self):
        for rule in discover_rules().values():
            assert rule.invariant, f"{rule.rule} has no invariant line"


class TestFixtureCorpus:
    @pytest.mark.parametrize("slug", sorted(CORPUS))
    def test_positive_fixture_is_flagged(self, slug):
        positive, _ = CORPUS[slug]
        found = findings_for(positive, slug)
        assert found, f"{positive} raised no {slug} finding"
        for finding in found:
            assert finding.line > 0 and finding.code.startswith("FDL")
            assert finding.hint, "findings must carry a fix hint"

    @pytest.mark.parametrize("slug", sorted(CORPUS))
    def test_negative_fixture_is_clean(self, slug):
        _, negative = CORPUS[slug]
        assert findings_for(negative, slug) == [], (
            f"{negative} should be clean for {slug}"
        )


class TestClockRulePrecision:
    """Regression: docstrings/comments are never confused with code.

    ``src/repro/service/runtime.py`` *documents* its epoch anchoring
    with the literal text ``time.time()`` and also really calls it once
    in ``AsyncioScheduler.__init__``.  With the whitelist stripped, the
    rule must flag exactly the call line — not the docstring.
    """

    RUNTIME = SRC / "repro" / "service" / "runtime.py"

    def test_runtime_docstring_not_flagged_call_is(self):
        from repro.lint import LintConfig

        source = self.RUNTIME.read_text(encoding="utf-8")
        lines = source.splitlines()
        call_lines = {
            index
            for index, text in enumerate(lines, start=1)
            if "self._epoch_t0 = time.time()" in text
        }
        prose_lines = {
            index
            for index, text in enumerate(lines, start=1)
            if "time.time()" in text
        } - call_lines
        assert call_lines and prose_lines, "runtime.py layout changed"

        config = LintConfig(clock_allowed_files=())
        result = lint_file(
            str(self.RUNTIME), config, select=["clock-discipline"]
        )
        flagged = {f.line for f in result.findings}
        assert flagged == call_lines
        assert not (flagged & prose_lines)

    def test_runtime_is_whitelisted_by_default(self):
        result = lint_file(
            str(self.RUNTIME), DEFAULT_CONFIG, select=["clock-discipline"]
        )
        assert result.findings == []
