"""Tests for events and the event log."""

import pytest

from repro.nekostat.events import EventKind, StatEvent
from repro.nekostat.log import EventLog


def suspect(time, detector="fd", kind=EventKind.START_SUSPECT):
    return StatEvent(time=time, kind=kind, site="monitor", detector=detector)


class TestStatEvent:
    def test_suspect_requires_detector(self):
        with pytest.raises(ValueError):
            StatEvent(time=0.0, kind=EventKind.START_SUSPECT, site="m")

    def test_sent_requires_seq(self):
        with pytest.raises(ValueError):
            StatEvent(time=0.0, kind=EventKind.SENT, site="m")

    def test_received_requires_seq(self):
        with pytest.raises(ValueError):
            StatEvent(time=0.0, kind=EventKind.RECEIVED, site="m")

    def test_crash_needs_no_extras(self):
        event = StatEvent(time=1.0, kind=EventKind.CRASH, site="monitored")
        assert event.detector is None

    def test_frozen(self):
        event = StatEvent(time=1.0, kind=EventKind.CRASH, site="m")
        with pytest.raises(AttributeError):
            event.time = 2.0  # type: ignore[misc]


class TestEventLog:
    def test_append_and_iterate(self, event_log):
        event_log.append(suspect(1.0))
        event_log.append(suspect(2.0, kind=EventKind.END_SUSPECT))
        assert len(event_log) == 2
        assert [e.time for e in event_log] == [1.0, 2.0]

    def test_rejects_time_regression(self, event_log):
        event_log.append(suspect(2.0))
        with pytest.raises(ValueError):
            event_log.append(suspect(1.0))

    def test_equal_times_allowed(self, event_log):
        event_log.append(suspect(1.0, detector="a"))
        event_log.append(suspect(1.0, detector="b"))
        assert len(event_log) == 2

    def test_filter_by_kind(self, event_log):
        event_log.append(suspect(1.0))
        event_log.append(StatEvent(time=2.0, kind=EventKind.CRASH, site="q"))
        crashes = event_log.filter(kind=EventKind.CRASH)
        assert len(crashes) == 1 and crashes[0].time == 2.0

    def test_filter_by_detector(self, event_log):
        event_log.append(suspect(1.0, detector="a"))
        event_log.append(suspect(2.0, detector="b"))
        assert len(event_log.filter(detector="a")) == 1

    def test_filter_by_site(self, event_log):
        event_log.append(StatEvent(time=1.0, kind=EventKind.CRASH, site="q"))
        event_log.append(StatEvent(time=2.0, kind=EventKind.CRASH, site="r"))
        assert len(event_log.filter(site="q")) == 1

    def test_detectors_sorted_unique(self, event_log):
        event_log.append(suspect(1.0, detector="b"))
        event_log.append(suspect(2.0, detector="a"))
        event_log.append(suspect(3.0, detector="b", kind=EventKind.END_SUSPECT))
        assert event_log.detectors() == ["a", "b"]

    def test_subscribers_notified(self, event_log):
        seen = []
        event_log.subscribe(seen.append)
        event = suspect(1.0)
        event_log.append(event)
        assert seen == [event]

    def test_crash_intervals_pairs(self, event_log):
        event_log.append(StatEvent(time=1.0, kind=EventKind.CRASH, site="q"))
        event_log.append(StatEvent(time=2.0, kind=EventKind.RESTORE, site="q"))
        event_log.append(StatEvent(time=5.0, kind=EventKind.CRASH, site="q"))
        event_log.append(StatEvent(time=6.0, kind=EventKind.RESTORE, site="q"))
        assert event_log.crash_intervals() == [(1.0, 2.0), (5.0, 6.0)]

    def test_open_crash_closed_at_end_time(self, event_log):
        event_log.append(StatEvent(time=3.0, kind=EventKind.CRASH, site="q"))
        assert event_log.crash_intervals(end_time=10.0) == [(3.0, 10.0)]

    def test_double_crash_rejected(self, event_log):
        event_log.append(StatEvent(time=1.0, kind=EventKind.CRASH, site="q"))
        event_log.append(StatEvent(time=2.0, kind=EventKind.CRASH, site="q"))
        with pytest.raises(ValueError):
            event_log.crash_intervals()

    def test_restore_without_crash_rejected(self, event_log):
        event_log.append(StatEvent(time=1.0, kind=EventKind.RESTORE, site="q"))
        with pytest.raises(ValueError):
            event_log.crash_intervals()

    def test_getitem(self, event_log):
        event_log.append(suspect(1.0))
        assert event_log[0].time == 1.0
        assert event_log[-1].time == 1.0
