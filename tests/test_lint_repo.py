"""Tier-1 guard: the repository's own source passes its own analyzer.

This is the point of the linter — the invariants it encodes (time only
through the Scheduler surface, seeded randomness, no blocking I/O on
the event loop, lock discipline, no float-time equality, no shared
mutable state) must hold for ``src/`` at all times, and every escape
hatch must carry a written justification.
"""

from pathlib import Path

from repro.lint import DEFAULT_CONFIG, lint_paths
from repro.lint.engine import discover_rules

SRC = Path(__file__).resolve().parent.parent / "src"

EXPECTED_RULES = {
    "clock-discipline",
    "seeded-randomness",
    "async-blocking",
    "lock-discipline",
    "float-time-equality",
    "mutable-shared-state",
    # interprocedural project tier
    "clock-seed-taint",
    "async-blocking-reach",
    "lock-read-race",
    "contract-drift",
}

PROJECT_RULES = {
    "clock-seed-taint",
    "async-blocking-reach",
    "lock-read-race",
    "contract-drift",
}


class TestRepoIsClean:
    def test_src_has_zero_findings(self):
        result = lint_paths([str(SRC)], DEFAULT_CONFIG)
        assert result.files_scanned > 50
        rendered = "\n".join(f.render() for f in result.findings)
        assert result.clean, f"repo lint regressions:\n{rendered}"

    def test_every_suppression_is_justified(self):
        result = lint_paths([str(SRC)], DEFAULT_CONFIG)
        for suppression in result.suppressions:
            assert suppression.justified, (
                f"{suppression.path}:{suppression.line} pragma has no "
                "written justification"
            )
            assert len(suppression.justification.strip()) >= 10, (
                f"{suppression.path}:{suppression.line} justification "
                "is too thin to audit"
            )

    def test_full_rule_set_is_active(self):
        assert EXPECTED_RULES <= set(discover_rules())

    def test_src_is_clean_under_project_rules_alone(self):
        # The interprocedural tier specifically: taint, blocking
        # reachability, lock races, and contract drift must hold even
        # when selected on their own (no per-file rules to hide behind).
        result = lint_paths(
            [str(SRC)], DEFAULT_CONFIG, select=sorted(PROJECT_RULES)
        )
        rendered = "\n".join(f.render() for f in result.findings)
        assert result.clean, f"project-tier regressions:\n{rendered}"

    def test_linter_lints_itself(self):
        result = lint_paths([str(SRC / "repro" / "lint")], DEFAULT_CONFIG)
        assert result.clean, [f.render() for f in result.findings]
        assert result.suppressions == []
