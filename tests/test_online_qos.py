"""Streaming QoS vs. batch extraction equivalence.

The live service computes T_D/T_M/T_MR/P_A with
:class:`repro.nekostat.metrics.OnlineQosAccumulator`, one transition at
a time; the batch experiments compute the same metrics with
:func:`repro.nekostat.metrics.extract_qos` from a finished event log.
These tests assert the two paths agree exactly on identical transition
sequences — deterministically on hand-built edge cases, and
property-based over hypothesis-generated crash/suspicion interleavings.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.nekostat.events import EventKind, StatEvent
from repro.nekostat.log import EventLog
from repro.nekostat.metrics import OnlineQosAccumulator, extract_qos

DETECTOR = "fd"
SITE = "monitored"

# Transition tokens: Crash, Restore, start-Suspect, Trust.
_EVENT_KINDS = {
    "C": EventKind.CRASH,
    "R": EventKind.RESTORE,
    "S": EventKind.START_SUSPECT,
    "T": EventKind.END_SUSPECT,
}


def _legalize(tokens):
    """Drop tokens that would violate the two state machines.

    Crash/restore must alternate starting from "up"; suspect/trust must
    alternate starting from "trusting".  Skipping invalid tokens (rather
    than rejecting the example) keeps hypothesis generation efficient.
    """
    crashed = False
    suspecting = False
    legal = []
    for token in tokens:
        if token == "C" and not crashed:
            crashed = True
        elif token == "R" and crashed:
            crashed = False
        elif token == "S" and not suspecting:
            suspecting = True
        elif token == "T" and suspecting:
            suspecting = False
        else:
            continue
        legal.append(token)
    return legal


def _build_log(sequence):
    """An EventLog holding the (token, time) sequence."""
    log = EventLog()
    for token, t in sequence:
        kind = _EVENT_KINDS[token]
        if token in ("S", "T"):
            log.append(StatEvent(time=t, kind=kind, site="monitor", detector=DETECTOR))
        else:
            log.append(StatEvent(time=t, kind=kind, site=SITE))
    return log


def _feed(accumulator, sequence):
    for token, t in sequence:
        if token == "C":
            accumulator.observe_crash(t)
        elif token == "R":
            accumulator.observe_restore(t)
        elif token == "S":
            accumulator.observe_suspect(t)
        else:
            accumulator.observe_trust(t)


def _close(a, b):
    if a is None and b is None:
        return True
    if a is None or b is None:
        return False
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


def assert_equivalent(sequence, end_time):
    """Both paths over ``sequence``, compared field by field."""
    batch = extract_qos(
        _build_log(sequence), end_time=end_time, detectors=[DETECTOR]
    )[DETECTOR]
    accumulator = OnlineQosAccumulator(DETECTOR)
    _feed(accumulator, sequence)
    online = accumulator.snapshot(end_time)

    assert online.td_samples == pytest.approx(batch.td_samples, abs=1e-9)
    assert online.undetected_crashes == batch.undetected_crashes
    assert [(m.start, m.end) for m in online.mistakes] == pytest.approx(
        [(m.start, m.end) for m in batch.mistakes], abs=1e-9
    )
    assert online.tmr_samples == pytest.approx(batch.tmr_samples, abs=1e-9)
    assert _close(online.observation_time, batch.observation_time)
    assert _close(online.up_time, batch.up_time)
    assert _close(online.suspected_up_time, batch.suspected_up_time)
    # Derived metrics follow from the fields above, but check the public
    # surface the exporter actually reads.
    assert _close(online.t_d_upper, batch.t_d_upper)
    assert _close(online.p_a, batch.p_a)
    assert _close(online.empirical_p_a, batch.empirical_p_a)
    assert _close(
        online.t_m.mean if online.t_m else None,
        batch.t_m.mean if batch.t_m else None,
    )
    assert _close(
        online.t_mr.mean if online.t_mr else None,
        batch.t_mr.mean if batch.t_mr else None,
    )
    return online


class TestDeterministicEquivalence:
    """Hand-built interleavings covering every verdict path."""

    def test_mistake_then_detected_crash(self):
        seq = [("S", 1.0), ("T", 2.0), ("C", 4.0), ("S", 5.0), ("R", 8.0), ("T", 8.5)]
        online = assert_equivalent(seq, 10.0)
        assert online.td_samples == [pytest.approx(1.0)]
        assert len(online.mistakes) == 1

    def test_suspicion_spanning_crash_detects_instantly(self):
        # Suspicion raised before the crash and still standing at restore:
        # a detection with T_D = 0, not a mistake.
        seq = [("S", 2.0), ("C", 3.0), ("R", 6.0), ("T", 7.0)]
        online = assert_equivalent(seq, 9.0)
        assert online.td_samples == [pytest.approx(0.0)]
        assert online.mistakes == []

    def test_undetected_crash(self):
        seq = [("C", 2.0), ("R", 3.0)]
        online = assert_equivalent(seq, 5.0)
        assert online.undetected_crashes == 1
        assert online.td_samples == []

    def test_one_suspicion_detects_two_crashes(self):
        seq = [("C", 1.0), ("S", 2.0), ("R", 3.0), ("C", 4.0), ("R", 6.0), ("T", 7.0)]
        online = assert_equivalent(seq, 8.0)
        assert online.td_samples == pytest.approx([1.0, 0.0])
        assert online.mistakes == []

    def test_mid_crash_suspicion_cleared_before_restore(self):
        # Raised and cleared inside the crash window: neither a
        # detection nor a mistake.
        seq = [("C", 1.0), ("S", 2.0), ("T", 3.0), ("R", 5.0)]
        online = assert_equivalent(seq, 6.0)
        assert online.undetected_crashes == 1
        assert online.mistakes == []

    def test_open_crash_and_open_suspicion_at_end(self):
        seq = [("C", 2.0), ("S", 3.0)]
        online = assert_equivalent(seq, 7.0)
        assert online.td_samples == [pytest.approx(1.0)]
        assert online.mistakes == []

    def test_open_mistake_at_end(self):
        seq = [("S", 1.0), ("T", 2.0), ("S", 4.0)]
        online = assert_equivalent(seq, 6.0)
        assert len(online.mistakes) == 2
        assert online.tmr_samples == [pytest.approx(3.0)]

    def test_empty_sequence(self):
        online = assert_equivalent([], 5.0)
        assert online.up_time == pytest.approx(5.0)
        assert online.p_a == pytest.approx(1.0)


TOKEN = st.sampled_from(["S", "T", "C", "R"])
GAP = st.integers(min_value=1, max_value=4)
SCALE = st.sampled_from([0.25, 1.0, 7.3])


@settings(max_examples=300, deadline=None)
@given(
    tokens=st.lists(TOKEN, max_size=40),
    gaps=st.lists(GAP, min_size=40, max_size=40),
    scale=SCALE,
    tail_gaps=GAP,
    cut=st.integers(min_value=0, max_value=40),
)
def test_streaming_equals_batch(tokens, gaps, scale, tail_gaps, cut):
    """The tentpole equivalence property.

    Any legal interleaving of crash/restore and suspect/trust
    transitions (strictly increasing times) yields identical QoS from
    the streaming accumulator and the batch extractor — both at an
    intermediate snapshot (prefix of the sequence) and at the end.
    """
    legal = _legalize(tokens)
    times = []
    t = 0
    for gap in gaps[: len(legal)]:
        t += gap
        times.append(t * scale)
    sequence = list(zip(legal, times))
    end_time = (t + tail_gaps) * scale

    # Full-sequence equivalence.
    assert_equivalent(sequence, end_time)

    # Prefix equivalence: a snapshot mid-stream equals batch extraction
    # over the prefix log, and must not disturb the accumulator.
    cut = min(cut, len(sequence))
    prefix = sequence[:cut]
    accumulator = OnlineQosAccumulator(DETECTOR)
    _feed(accumulator, prefix)
    mid = (prefix[-1][1] if prefix else 0.0) + 0.5 * scale
    batch_prefix = extract_qos(
        _build_log(prefix), end_time=mid, detectors=[DETECTOR]
    )[DETECTOR]
    first = accumulator.snapshot(mid)
    again = accumulator.snapshot(mid)  # snapshot must be non-mutating
    for snap in (first, again):
        assert snap.td_samples == pytest.approx(batch_prefix.td_samples, abs=1e-9)
        assert snap.undetected_crashes == batch_prefix.undetected_crashes
        assert len(snap.mistakes) == len(batch_prefix.mistakes)
        assert _close(snap.up_time, batch_prefix.up_time)
        assert _close(snap.p_a, batch_prefix.p_a)
    # The rest of the sequence still feeds cleanly after snapshots.
    _feed(accumulator, sequence[cut:])
    final = accumulator.snapshot(end_time)
    batch_full = extract_qos(
        _build_log(sequence), end_time=end_time, detectors=[DETECTOR]
    )[DETECTOR]
    assert final.td_samples == pytest.approx(batch_full.td_samples, abs=1e-9)
    assert len(final.mistakes) == len(batch_full.mistakes)


class TestAccumulatorContract:
    """Guard rails of the streaming API itself."""

    def test_out_of_order_transition_rejected(self):
        accumulator = OnlineQosAccumulator(DETECTOR)
        accumulator.observe_suspect(2.0)
        with pytest.raises(ValueError):
            accumulator.observe_trust(1.0)

    def test_double_suspect_rejected(self):
        accumulator = OnlineQosAccumulator(DETECTOR)
        accumulator.observe_suspect(1.0)
        with pytest.raises(ValueError):
            accumulator.observe_suspect(2.0)

    def test_restore_without_crash_rejected(self):
        accumulator = OnlineQosAccumulator(DETECTOR)
        with pytest.raises(ValueError):
            accumulator.observe_restore(1.0)

    def test_snapshot_before_last_transition_rejected(self):
        accumulator = OnlineQosAccumulator(DETECTOR)
        accumulator.observe_suspect(3.0)
        with pytest.raises(ValueError):
            accumulator.snapshot(2.0)

    def test_start_time_offsets_observation(self):
        accumulator = OnlineQosAccumulator(DETECTOR, start_time=100.0)
        accumulator.observe_suspect(101.0)
        accumulator.observe_trust(102.0)
        qos = accumulator.snapshot(110.0)
        assert qos.observation_time == pytest.approx(10.0)
        assert qos.up_time == pytest.approx(10.0)
        assert len(qos.mistakes) == 1

    def test_transition_counter(self):
        accumulator = OnlineQosAccumulator(DETECTOR)
        accumulator.observe_suspect(1.0)
        accumulator.observe_trust(2.0)
        accumulator.observe_crash(3.0)
        accumulator.observe_restore(4.0)
        assert accumulator.transitions == 2  # detector transitions only
