"""Tests for the extension modules: store, quantities, topology, charts."""

import math

import numpy as np
import pytest

from repro.experiments.chart import render_figure
from repro.experiments.runner import AggregatedQos, aggregate_runs, run_repetitions
from repro.experiments.store import (
    campaign_from_dict,
    campaign_to_dict,
    load_campaign,
    load_campaign_config,
    save_campaign,
)
from repro.neko.config import ExperimentConfig
from repro.nekostat.events import EventKind, StatEvent
from repro.nekostat.log import EventLog
from repro.nekostat.quantities import (
    CounterQuantity,
    IntervalQuantity,
    QuantitySet,
    SeriesQuantity,
)
from repro.net.topology import HopDelay, MultiHopDelay, RouteFlappingDelay


class TestStore:
    CONFIG = ExperimentConfig(num_cycles=400, mttc=60.0, ttr=12.0, seed=3)
    DETECTORS = ["Last+JAC_med", "Mean+CI_low"]

    def pooled(self):
        return aggregate_runs(run_repetitions(self.CONFIG, 2, self.DETECTORS))

    def test_roundtrip_through_dict(self):
        pooled = self.pooled()
        document = campaign_to_dict(pooled, self.CONFIG, runs=2)
        restored = campaign_from_dict(document)
        for detector_id in self.DETECTORS:
            assert restored[detector_id].td_samples == pooled[detector_id].td_samples
            assert restored[detector_id].up_time == pooled[detector_id].up_time
            assert restored[detector_id].p_a == pooled[detector_id].p_a

    def test_roundtrip_through_file(self, tmp_path):
        pooled = self.pooled()
        path = tmp_path / "campaign.json"
        save_campaign(path, pooled, self.CONFIG, runs=2)
        restored = load_campaign(path)
        assert set(restored) == set(self.DETECTORS)
        config = load_campaign_config(path)
        assert config.num_cycles == 400
        assert config.seed == 3

    def test_config_extras_survive_roundtrip(self, tmp_path):
        from dataclasses import replace

        config = replace(self.CONFIG, extras={"initial_timeout": 7.5})
        path = tmp_path / "campaign.json"
        save_campaign(path, {"x": AggregatedQos("x")}, config, runs=1)
        assert load_campaign_config(path).extras == {"initial_timeout": 7.5}

    def test_summaries_survive_roundtrip(self, tmp_path):
        pooled = self.pooled()
        path = tmp_path / "campaign.json"
        save_campaign(path, pooled, self.CONFIG, runs=2)
        restored = load_campaign(path)
        for detector_id in self.DETECTORS:
            original = pooled[detector_id].t_d
            loaded = restored[detector_id].t_d
            assert loaded.mean == pytest.approx(original.mean)
            assert loaded.ci_half_width == pytest.approx(original.ci_half_width)

    def test_version_check(self):
        with pytest.raises(ValueError):
            campaign_from_dict({"format_version": 99, "detectors": {}})

    def test_empty_aggregate_serialises(self):
        empty = {"x": AggregatedQos("x")}
        document = campaign_to_dict(empty, self.CONFIG, runs=1)
        restored = campaign_from_dict(document)
        assert restored["x"].t_d is None
        assert restored["x"].p_a == 1.0


class TestQuantities:
    def crash(self, t):
        return StatEvent(time=t, kind=EventKind.CRASH, site="q")

    def restore(self, t):
        return StatEvent(time=t, kind=EventKind.RESTORE, site="q")

    def suspect(self, t, detector="fd", data=None):
        return StatEvent(
            time=t, kind=EventKind.START_SUSPECT, site="m",
            detector=detector, data=data or {},
        )

    def test_counter(self, event_log):
        quantities = QuantitySet(event_log)
        counter = quantities.add(
            CounterQuantity("crashes", lambda e: e.kind is EventKind.CRASH)
        )
        event_log.append(self.crash(1.0))
        event_log.append(self.restore(2.0))
        event_log.append(self.crash(3.0))
        assert counter.count == 2

    def test_interval_measures_downtime(self, event_log):
        quantities = QuantitySet(event_log)
        downtime = quantities.add(IntervalQuantity(
            "downtime",
            starts=lambda e: e.kind is EventKind.CRASH,
            ends=lambda e: e.kind is EventKind.RESTORE,
        ))
        event_log.append(self.crash(1.0))
        event_log.append(self.restore(4.0))
        event_log.append(self.crash(10.0))
        event_log.append(self.restore(12.5))
        assert downtime.samples() == pytest.approx([3.0, 2.5])
        assert downtime.summary().mean == pytest.approx(2.75)

    def test_interval_pairs_by_key(self, event_log):
        quantities = QuantitySet(event_log)
        per_detector = quantities.add(IntervalQuantity(
            "suspicion",
            starts=lambda e: e.kind is EventKind.START_SUSPECT,
            ends=lambda e: e.kind is EventKind.END_SUSPECT,
            key=lambda e: e.detector,
        ))
        event_log.append(self.suspect(1.0, "a"))
        event_log.append(self.suspect(2.0, "b"))
        event_log.append(StatEvent(
            time=5.0, kind=EventKind.END_SUSPECT, site="m", detector="a"
        ))
        assert per_detector.samples() == pytest.approx([4.0])
        assert per_detector.open_intervals == 1

    def test_unmatched_end_ignored(self, event_log):
        quantities = QuantitySet(event_log)
        interval = quantities.add(IntervalQuantity(
            "downtime",
            starts=lambda e: e.kind is EventKind.CRASH,
            ends=lambda e: e.kind is EventKind.RESTORE,
        ))
        event_log.append(self.restore(2.0))
        assert interval.samples() == []

    def test_series_extracts_values(self, event_log):
        quantities = QuantitySet(event_log)
        timeouts = quantities.add(SeriesQuantity(
            "timeout",
            lambda e: e.data.get("timeout")
            if e.kind is EventKind.START_SUSPECT else None,
        ))
        event_log.append(self.suspect(1.0, data={"timeout": 0.3}))
        event_log.append(self.suspect(2.0, "other", data={"timeout": 0.5}))
        assert timeouts.samples() == [0.3, 0.5]

    def test_report_and_lookup(self, event_log):
        quantities = QuantitySet(event_log)
        quantities.add(CounterQuantity("c", lambda e: True))
        assert "c" in quantities
        assert quantities["c"].name == "c"
        event_log.append(self.crash(1.0))
        report = quantities.report()
        assert report["c"].mean == 1.0

    def test_duplicate_name_rejected(self, event_log):
        quantities = QuantitySet(event_log)
        quantities.add(CounterQuantity("c", lambda e: True))
        with pytest.raises(ValueError):
            quantities.add(CounterQuantity("c", lambda e: True))

    def test_empty_summary_is_none(self, event_log):
        quantities = QuantitySet(event_log)
        series = quantities.add(SeriesQuantity("s", lambda e: None))
        assert series.summary() is None


class TestTopology:
    def test_hop_delay_floor(self, rng):
        hop = HopDelay(rng, 0.01)
        samples = [hop.sample(float(i)) for i in range(1000)]
        assert min(samples) >= 0.01

    def test_multihop_floor_and_mean(self, rng):
        path = MultiHopDelay(rng, hop_count=18, total_propagation=0.18)
        assert path.hop_count == 18
        assert path.floor() == pytest.approx(0.18)
        samples = np.array([path.sample(float(i)) for i in range(5000)])
        assert samples.min() >= 0.18
        # 18 hops x shape*scale queueing each.
        expected_mean = 0.18 + 18 * 1.5 * 0.0004
        assert samples.mean() == pytest.approx(expected_mean, rel=0.1)

    def test_more_hops_more_variance(self, rng):
        short = MultiHopDelay(np.random.default_rng(1), 2, 0.1)
        long = MultiHopDelay(np.random.default_rng(1), 20, 0.1)
        short_samples = np.array([short.sample(float(i)) for i in range(5000)])
        long_samples = np.array([long.sample(float(i)) for i in range(5000)])
        assert long_samples.std() > short_samples.std()

    def test_route_flapping_switches(self, rng):
        from repro.net.delay import ConstantDelay

        routes = [ConstantDelay(0.1), ConstantDelay(0.2)]
        flapper = RouteFlappingDelay(rng, routes, flap_probability=0.1)
        samples = {flapper.sample(float(i)) for i in range(500)}
        assert samples == {0.1, 0.2}
        assert flapper.flaps > 10

    def test_route_flapping_zero_probability_stays(self, rng):
        from repro.net.delay import ConstantDelay

        flapper = RouteFlappingDelay(
            rng, [ConstantDelay(0.1), ConstantDelay(0.2)], flap_probability=0.0
        )
        assert all(flapper.sample(float(i)) == 0.1 for i in range(100))

    def test_route_flapping_reset(self, rng):
        from repro.net.delay import ConstantDelay

        flapper = RouteFlappingDelay(
            rng, [ConstantDelay(0.1), ConstantDelay(0.2)], flap_probability=1.0
        )
        flapper.sample(0.0)
        flapper.reset()
        assert flapper.active_route == 0
        assert flapper.flaps == 0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            MultiHopDelay(rng, 0, 0.1)
        with pytest.raises(ValueError):
            HopDelay(rng, -0.1)
        with pytest.raises(ValueError):
            RouteFlappingDelay(rng, [], 0.1)


class TestChart:
    DATA = {
        "Arima": {"CI_low": 0.5, "CI_med": 0.6, "CI_high": 0.7,
                  "JAC_low": 0.45, "JAC_med": 0.5, "JAC_high": 0.55},
        "Mean": {"CI_low": 0.5, "CI_med": 0.6, "CI_high": 0.7,
                 "JAC_low": 0.5, "JAC_med": 0.6, "JAC_high": 0.8},
    }

    def test_renders_markers_and_axis(self):
        text = render_figure(self.DATA, "T_D (s)")
        assert "T_D (s)" in text
        assert "A=Arima" in text and "M=Mean" in text
        assert "CI_low" in text and "JAC_high" in text
        assert "A" in text and "M" in text

    def test_extremes_labelled(self):
        text = render_figure(self.DATA, "T_D")
        assert "0.8" in text   # maximum
        assert "0.45" in text  # minimum

    def test_log_scale(self):
        data = {"Arima": {"CI_low": 10.0, "CI_high": 10000.0}}
        text = render_figure(data, "T_MR", log_scale=True)
        assert "log scale" in text

    def test_missing_cells_tolerated(self):
        data = {"Arima": {"CI_low": 1.0}}
        text = render_figure(data, "partial")
        assert "A" in text

    def test_empty_data(self):
        assert "(no data)" in render_figure({}, "empty")

    def test_flat_data_no_crash(self):
        data = {"Arima": {m: 1.0 for m in
                          ("CI_low", "CI_med", "CI_high",
                           "JAC_low", "JAC_med", "JAC_high")}}
        text = render_figure(data, "flat")
        assert "A" in text

    def test_height_validation(self):
        with pytest.raises(ValueError):
            render_figure(self.DATA, "x", height=2)
