"""Tests for the discrete-event simulation engine."""

import math

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_non_finite_start_time_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(start_time=math.inf)

    def test_schedule_advances_time(self, sim):
        fired = []
        sim.schedule(1.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.5]
        assert sim.now == 1.5

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(3.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [3.0]

    def test_zero_delay_event_fires(self, sim):
        fired = []
        sim.schedule(0.0, lambda: fired.append(True))
        sim.run()
        assert fired == [True]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_past_absolute_time_rejected(self, sim):
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_non_finite_time_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_at(math.nan, lambda: None)

    def test_non_callable_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(1.0, "not callable")


class TestOrdering:
    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo_order(self, sim):
        order = []
        for label in "abcde":
            sim.schedule(1.0, lambda lbl=label: order.append(lbl))
        sim.run()
        assert order == list("abcde")

    def test_priority_breaks_ties(self, sim):
        order = []
        sim.schedule(1.0, lambda: order.append("late"), priority=1)
        sim.schedule(1.0, lambda: order.append("early"), priority=0)
        sim.run()
        assert order == ["early", "late"]

    def test_events_scheduled_during_execution(self, sim):
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("nested"))

        sim.schedule(1.0, first)
        sim.schedule(3.0, lambda: order.append("last"))
        sim.run()
        assert order == ["first", "nested", "last"]

    def test_zero_delay_nested_event_fires_same_time(self, sim):
        times = []

        def outer():
            sim.schedule(0.0, lambda: times.append(sim.now))

        sim.schedule(2.0, outer)
        sim.run()
        assert times == [2.0]


class TestRunControl:
    def test_run_until_stops_at_bound(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=3.0)
        assert fired == [1]
        assert sim.now == 3.0

    def test_run_until_includes_boundary_event(self, sim):
        fired = []
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run(until=3.0)
        assert fired == [3]

    def test_run_until_advances_clock_without_events(self, sim):
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_remaining_events_fire_on_second_run(self, sim):
        fired = []
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=3.0)
        sim.run(until=10.0)
        assert fired == [5]

    def test_run_until_past_rejected(self, sim):
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_max_events_budget(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_stop_halts_run(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, sim.stop)
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run()
        assert fired == [1]

    def test_reentrant_run_rejected(self, sim):
        def reenter():
            sim.run()

        sim.schedule(1.0, reenter)
        with pytest.raises(SimulationError):
            sim.run()

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_step_executes_one_event(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_cancelled_events_not_counted_as_processed(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 1

    def test_pending_events_excludes_cancelled(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending_events == 1

    def test_handle_reports_time_and_name(self, sim):
        handle = sim.schedule(2.5, lambda: None, name="probe")
        assert handle.time == 2.5
        assert handle.name == "probe"

    def test_cancel_during_run(self, sim):
        fired = []
        handle = sim.schedule(2.0, lambda: fired.append("victim"))
        sim.schedule(1.0, handle.cancel)
        sim.run()
        assert fired == []


class TestDeterminism:
    def test_identical_schedules_identical_traces(self):
        def run_once():
            simulator = Simulator()
            trace = []
            for i in range(50):
                simulator.schedule(
                    (i * 7919 % 101) / 10.0,
                    lambda i=i: trace.append((simulator.now, i)),
                )
            simulator.run()
            return trace

        assert run_once() == run_once()


class TestPendingCounter:
    """pending_events is a live O(1) counter, not a heap scan."""

    def test_counts_down_as_events_fire(self, sim):
        for i in range(4):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.pending_events == 4
        sim.step()
        assert sim.pending_events == 3
        sim.run()
        assert sim.pending_events == 0

    def test_cancel_after_fire_is_a_noop(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.pending_events == 0
        handle.cancel()  # already fired: must not drive the counter negative
        assert sim.pending_events == 0

    def test_schedule_during_run_is_counted(self, sim):
        def chain(depth):
            if depth:
                sim.schedule_at(sim.now + 1.0, lambda: chain(depth - 1))

        chain(3)
        assert sim.pending_events == 1
        sim.run()
        assert sim.pending_events == 0
        assert sim.events_processed == 3
