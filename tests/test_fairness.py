"""Fair-comparison guarantees of the experimental architecture.

The paper's MultiPlexer exists so all 30 detectors "perceive identical
network conditions".  In this reproduction the guarantee is even
stronger and testable: detectors are pure observers (nothing they do
feeds back into the network or the crash schedule), and all randomness
comes from streams named independently of the detector set — so a
detector's QoS samples are bit-identical whether it runs alone, among
all thirty, or listed in a different order."""

import pytest

from repro.experiments.runner import run_qos_experiment
from repro.fd.combinations import combination_ids
from repro.neko.config import ExperimentConfig

CONFIG = ExperimentConfig(num_cycles=800, mttc=80.0, ttr=15.0, seed=33)


def samples(result, detector_id):
    qos = result.qos[detector_id]
    return (
        qos.td_samples,
        [(m.start, m.end) for m in qos.mistakes],
        qos.suspected_up_time,
    )


class TestObserverPurity:
    def test_alone_vs_full_set_identical(self):
        alone = run_qos_experiment(CONFIG, ["Arima+JAC_high"])
        full = run_qos_experiment(CONFIG, combination_ids())
        assert samples(alone, "Arima+JAC_high") == samples(full, "Arima+JAC_high")

    def test_order_of_detectors_irrelevant(self):
        forward = run_qos_experiment(CONFIG, ["Last+CI_low", "Mean+JAC_med"])
        backward = run_qos_experiment(CONFIG, ["Mean+JAC_med", "Last+CI_low"])
        for detector_id in ("Last+CI_low", "Mean+JAC_med"):
            assert samples(forward, detector_id) == samples(backward, detector_id)

    def test_crash_schedule_independent_of_detector_set(self):
        a = run_qos_experiment(CONFIG, ["Last+CI_low"])
        b = run_qos_experiment(CONFIG, combination_ids())
        assert a.crashes == b.crashes
        assert a.event_log.crash_intervals(end_time=CONFIG.duration) == (
            b.event_log.crash_intervals(end_time=CONFIG.duration)
        )

    def test_network_conditions_independent_of_detector_set(self):
        a = run_qos_experiment(CONFIG, ["Last+CI_low"])
        b = run_qos_experiment(CONFIG, combination_ids())
        assert a.heartbeats_delivered == b.heartbeats_delivered
        assert a.link_loss_rate == b.link_loss_rate
