"""Unit and scenario tests for the heartbeat trace recorder.

The recorder itself is exercised directly (ring bounds, JSONL output,
rotation, self-measurement); the emission sites are exercised through
the real simulator architecture so every suspect/trust transition and
freshness arming shows up as span events with the right sequence
numbers.
"""

import json

import pytest

from repro.fd.combinations import make_strategy
from repro.fd.detector import PushFailureDetector
from repro.fd.heartbeat import Heartbeater
from repro.fd.multiplexer import MultiPlexer
from repro.fd.simcrash import SimCrash
from repro.neko.layer import ProtocolStack
from repro.neko.system import NekoSystem
from repro.net.delay import ConstantDelay
from repro.obs import TraceEvent, TraceRecorder

pytestmark = pytest.mark.obs


class TestTraceEvent:
    def test_to_dict_includes_only_set_fields(self):
        event = TraceEvent(t=1.5, kind="send", endpoint="q")
        assert event.to_dict() == {"t": 1.5, "kind": "send", "endpoint": "q"}

    def test_to_dict_full(self):
        event = TraceEvent(
            t=2.0, kind="freshness", endpoint="q", detector="Last+CI_med",
            seq=7, delay=0.2, timeout=0.31, deadline=3.51,
        )
        record = event.to_dict()
        assert record["detector"] == "Last+CI_med"
        assert record["seq"] == 7
        assert record["delay"] == 0.2
        assert record["timeout"] == 0.31
        assert record["deadline"] == 3.51

    def test_slots(self):
        event = TraceEvent(t=0.0, kind="send", endpoint="q")
        with pytest.raises(AttributeError):
            event.extra = 1


class TestTraceRecorderRing:
    def test_ring_is_bounded_and_counts_evictions(self):
        recorder = TraceRecorder(ring_capacity=4)
        for i in range(10):
            recorder.emit(float(i), "send", "q", seq=i)
        assert len(recorder) == 4
        assert recorder.events_total == 10
        assert recorder.evicted_total == 6
        assert [e["seq"] for e in recorder.tail()] == [6, 7, 8, 9]

    def test_tail_limit_returns_newest(self):
        recorder = TraceRecorder(ring_capacity=16)
        for i in range(8):
            recorder.emit(float(i), "send", "q", seq=i)
        assert [e["seq"] for e in recorder.tail(3)] == [5, 6, 7]
        assert recorder.tail(0) == []
        with pytest.raises(ValueError):
            recorder.tail(-1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder(ring_capacity=0)
        with pytest.raises(ValueError):
            TraceRecorder(max_bytes=100)
        with pytest.raises(ValueError):
            TraceRecorder(backups=-1)


class TestTraceRecorderFile:
    def test_jsonl_lines_parse(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(str(path))
        recorder.emit(0.0, "send", "q", seq=0)
        recorder.emit(0.2, "receive", "q", seq=0, delay=0.2)
        recorder.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0] == {"t": 0.0, "kind": "send", "endpoint": "q", "seq": 0}
        assert records[1]["delay"] == 0.2
        assert recorder.bytes_total == len(path.read_bytes())

    def test_rotation_keeps_bounded_generations(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(str(path), max_bytes=4096, backups=2)
        payload = "x" * 120
        for i in range(200):
            recorder.emit(float(i), "send", payload, seq=i)
        recorder.close()
        assert recorder.rotations_total >= 2
        assert (tmp_path / "trace.jsonl.1").exists()
        assert (tmp_path / "trace.jsonl.2").exists()
        assert not (tmp_path / "trace.jsonl.3").exists()
        # Every surviving generation is valid JSONL.
        for name in ("trace.jsonl", "trace.jsonl.1", "trace.jsonl.2"):
            for line in (tmp_path / name).read_text().splitlines():
                json.loads(line)

    def test_close_is_idempotent_and_emit_noops_after(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(str(path))
        recorder.emit(0.0, "send", "q")
        recorder.close()
        recorder.close()
        recorder.emit(1.0, "send", "q")
        assert recorder.closed
        assert recorder.events_total == 1

    def test_stats_payload(self):
        recorder = TraceRecorder(ring_capacity=8)
        recorder.emit(0.0, "send", "q")
        stats = recorder.stats()
        assert stats["events_total"] == 1
        assert stats["ring_size"] == 1
        assert stats["ring_capacity"] == 8
        assert stats["path"] is None
        assert stats["overhead_seconds"] >= 0.0


def _traced_scenario(sim, event_log, tracer, *, crash_schedule=()):
    """Heartbeater -> SimCrash -> link -> MultiPlexer -> one detector,
    with the tracer plugged into both monitor-side layers."""
    system = NekoSystem(sim)
    system.network.set_link("monitored", "monitor", ConstantDelay(0.2))
    heartbeater = Heartbeater("monitor", 1.0, event_log)
    simcrash = SimCrash(100.0, 10.0, None, event_log, schedule=list(crash_schedule))
    system.create_process("monitored", ProtocolStack([heartbeater, simcrash]))
    detector = PushFailureDetector(
        make_strategy("Last", "CI_med"), "monitored", 1.0, event_log,
        detector_id="fd", initial_timeout=5.0, tracer=tracer,
    )
    multiplexer = MultiPlexer([detector], event_log, tracer=tracer)
    system.create_process("monitor", ProtocolStack([multiplexer]))
    system.start()
    return detector


class TestDetectorEmission:
    def test_steady_state_emits_fanout_and_freshness(self, sim, event_log):
        tracer = TraceRecorder(ring_capacity=1024)
        _traced_scenario(sim, event_log, tracer)
        sim.run(until=10.0)
        kinds = [e["kind"] for e in tracer.tail(1024)]
        assert "fanout" in kinds and "freshness" in kinds
        assert "suspect" not in kinds  # stable link, no mistakes
        freshness = [e for e in tracer.tail(1024) if e["kind"] == "freshness"]
        # Every fresh heartbeat arms a deadline beyond its arrival.
        for e in freshness:
            assert e["deadline"] > e["t"]
            assert e["timeout"] > 0.0
            assert e["detector"] == "fd"

    def test_crash_produces_suspect_then_trust_with_matching_seq(
        self, sim, event_log
    ):
        tracer = TraceRecorder(ring_capacity=4096)
        detector = _traced_scenario(
            sim, event_log, tracer, crash_schedule=[(10.5, 20.5)]
        )
        sim.run(until=40.0)
        events = tracer.tail(4096)
        suspects = [e for e in events if e["kind"] == "suspect"]
        trusts = [e for e in events if e["kind"] == "trust"]
        assert len(suspects) == 1 and len(trusts) == 1
        assert suspects[0]["t"] < trusts[0]["t"]
        # The suspicion froze at the last pre-crash heartbeat; trust came
        # from the first post-restore one, a strictly higher sequence.
        assert trusts[0]["seq"] > suspects[0]["seq"]
        assert detector.highest_sequence >= trusts[0]["seq"]

    def test_disabled_tracer_is_default(self, sim, event_log):
        detector = _traced_scenario(sim, event_log, None)
        sim.run(until=10.0)
        assert detector.heartbeats_seen == 10
