"""Unit and scenario tests for the heartbeat trace recorder.

The recorder itself is exercised directly (ring bounds, JSONL output,
rotation, self-measurement); the emission sites are exercised through
the real simulator architecture so every suspect/trust transition and
freshness arming shows up as span events with the right sequence
numbers.
"""

import json

import pytest

from repro.fd.combinations import make_strategy
from repro.fd.detector import PushFailureDetector
from repro.fd.heartbeat import Heartbeater
from repro.fd.multiplexer import MultiPlexer
from repro.fd.simcrash import SimCrash
from repro.neko.layer import ProtocolStack
from repro.neko.system import NekoSystem
from repro.net.delay import ConstantDelay
from repro.obs import TraceEvent, TraceRecorder

pytestmark = pytest.mark.obs


class TestTraceEvent:
    def test_to_dict_includes_only_set_fields(self):
        event = TraceEvent(t=1.5, kind="send", endpoint="q")
        assert event.to_dict() == {"t": 1.5, "kind": "send", "endpoint": "q"}

    def test_to_dict_full(self):
        event = TraceEvent(
            t=2.0, kind="freshness", endpoint="q", detector="Last+CI_med",
            seq=7, delay=0.2, timeout=0.31, deadline=3.51,
        )
        record = event.to_dict()
        assert record["detector"] == "Last+CI_med"
        assert record["seq"] == 7
        assert record["delay"] == 0.2
        assert record["timeout"] == 0.31
        assert record["deadline"] == 3.51

    def test_slots(self):
        event = TraceEvent(t=0.0, kind="send", endpoint="q")
        with pytest.raises(AttributeError):
            event.extra = 1


class TestTraceRecorderRing:
    def test_ring_is_bounded_and_counts_evictions(self):
        recorder = TraceRecorder(ring_capacity=4)
        for i in range(10):
            recorder.emit(float(i), "send", "q", seq=i)
        assert len(recorder) == 4
        assert recorder.events_total == 10
        assert recorder.evicted_total == 6
        assert [e["seq"] for e in recorder.tail()] == [6, 7, 8, 9]

    def test_tail_limit_returns_newest(self):
        recorder = TraceRecorder(ring_capacity=16)
        for i in range(8):
            recorder.emit(float(i), "send", "q", seq=i)
        assert [e["seq"] for e in recorder.tail(3)] == [5, 6, 7]
        assert recorder.tail(0) == []
        with pytest.raises(ValueError):
            recorder.tail(-1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder(ring_capacity=0)
        with pytest.raises(ValueError):
            TraceRecorder(max_bytes=100)
        with pytest.raises(ValueError):
            TraceRecorder(backups=-1)

    def test_tail_filters_by_endpoint_and_kind(self):
        recorder = TraceRecorder(ring_capacity=64)
        for i in range(4):
            recorder.emit(float(i), "send", "a", seq=i)
            recorder.emit(float(i) + 0.1, "receive", "a", seq=i, delay=0.1)
            recorder.emit(float(i) + 0.2, "send", "b", seq=i)
        only_a = recorder.tail(64, endpoint="a")
        assert {e["endpoint"] for e in only_a} == {"a"}
        assert len(only_a) == 8
        sends = recorder.tail(64, kind="send")
        assert {e["kind"] for e in sends} == {"send"}
        assert len(sends) == 8
        a_sends = recorder.tail(64, endpoint="a", kind="send")
        assert [e["seq"] for e in a_sends] == [0, 1, 2, 3]
        assert recorder.tail(64, endpoint="nope") == []

    def test_tail_filter_applies_before_limit(self):
        """A scoped tail digs past newer events of other endpoints."""
        recorder = TraceRecorder(ring_capacity=64)
        recorder.emit(0.0, "send", "a", seq=0)
        for i in range(10):
            recorder.emit(1.0 + i, "send", "b", seq=i)
        assert [e["seq"] for e in recorder.tail(2, endpoint="a")] == [0]


class TestTraceRecorderFile:
    def test_jsonl_lines_parse(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(str(path))
        recorder.emit(0.0, "send", "q", seq=0)
        recorder.emit(0.2, "receive", "q", seq=0, delay=0.2)
        recorder.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0] == {"t": 0.0, "kind": "send", "endpoint": "q", "seq": 0}
        assert records[1]["delay"] == 0.2
        assert recorder.bytes_total == len(path.read_bytes())

    def test_rotation_keeps_bounded_generations(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(str(path), max_bytes=4096, backups=2)
        payload = "x" * 120
        for i in range(200):
            recorder.emit(float(i), "send", payload, seq=i)
        recorder.close()
        assert recorder.rotations_total >= 2
        assert (tmp_path / "trace.jsonl.1").exists()
        assert (tmp_path / "trace.jsonl.2").exists()
        assert not (tmp_path / "trace.jsonl.3").exists()
        # Every surviving generation is valid JSONL.
        for name in ("trace.jsonl", "trace.jsonl.1", "trace.jsonl.2"):
            for line in (tmp_path / name).read_text().splitlines():
                json.loads(line)

    def test_rotation_mid_burst_loses_nothing(self, tmp_path):
        """Rotate in the middle of a dense burst: counting every line in
        every surviving generation accounts for every emitted event."""
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(str(path), max_bytes=4096, backups=8)
        payload = "y" * 100
        total = 250
        for i in range(total):
            recorder.emit(float(i), "send", payload, seq=i)
        recorder.close()
        assert recorder.rotations_total >= 2
        seqs = []
        names = [f"trace.jsonl.{n}" for n in
                 range(recorder.rotations_total, 0, -1)] + ["trace.jsonl"]
        for name in names:
            generation = tmp_path / name
            if generation.exists():
                for line in generation.read_text().splitlines():
                    seqs.append(json.loads(line)["seq"])
        assert seqs == list(range(total))

    def test_reopen_after_close_appends(self, tmp_path):
        """A new recorder on an existing path appends (daemon restart)."""
        path = tmp_path / "trace.jsonl"
        first = TraceRecorder(str(path))
        first.emit(0.0, "send", "q", seq=0)
        first.close()
        second = TraceRecorder(str(path))
        second.emit(1.0, "send", "q", seq=1)
        second.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["seq"] for r in records] == [0, 1]

    def test_tail_continuity_across_rotation(self, tmp_path):
        """The in-memory ring is oblivious to file rotation: the tail
        stays contiguous straight through a rotation boundary."""
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(
            str(path), ring_capacity=512, max_bytes=4096, backups=1
        )
        payload = "z" * 100
        for i in range(120):
            recorder.emit(float(i), "send", payload, seq=i)
        assert recorder.rotations_total >= 1
        seqs = [e["seq"] for e in recorder.tail(512)]
        assert seqs == list(range(120))
        recorder.close()

    def test_close_is_idempotent_and_emit_noops_after(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(str(path))
        recorder.emit(0.0, "send", "q")
        recorder.close()
        recorder.close()
        recorder.emit(1.0, "send", "q")
        assert recorder.closed
        assert recorder.events_total == 1

    def test_stats_payload(self):
        recorder = TraceRecorder(ring_capacity=8)
        recorder.emit(0.0, "send", "q")
        stats = recorder.stats()
        assert stats["events_total"] == 1
        assert stats["ring_size"] == 1
        assert stats["ring_capacity"] == 8
        assert stats["path"] is None
        assert stats["overhead_seconds"] >= 0.0


def _traced_scenario(sim, event_log, tracer, *, crash_schedule=()):
    """Heartbeater -> SimCrash -> link -> MultiPlexer -> one detector,
    with the tracer plugged into both monitor-side layers."""
    system = NekoSystem(sim)
    system.network.set_link("monitored", "monitor", ConstantDelay(0.2))
    heartbeater = Heartbeater("monitor", 1.0, event_log)
    simcrash = SimCrash(100.0, 10.0, None, event_log, schedule=list(crash_schedule))
    system.create_process("monitored", ProtocolStack([heartbeater, simcrash]))
    detector = PushFailureDetector(
        make_strategy("Last", "CI_med"), "monitored", 1.0, event_log,
        detector_id="fd", initial_timeout=5.0, tracer=tracer,
    )
    multiplexer = MultiPlexer([detector], event_log, tracer=tracer)
    system.create_process("monitor", ProtocolStack([multiplexer]))
    system.start()
    return detector


class TestDetectorEmission:
    def test_steady_state_emits_fanout_and_freshness(self, sim, event_log):
        tracer = TraceRecorder(ring_capacity=1024)
        _traced_scenario(sim, event_log, tracer)
        sim.run(until=10.0)
        kinds = [e["kind"] for e in tracer.tail(1024)]
        assert "fanout" in kinds and "freshness" in kinds
        assert "suspect" not in kinds  # stable link, no mistakes
        freshness = [e for e in tracer.tail(1024) if e["kind"] == "freshness"]
        # Every fresh heartbeat arms a deadline beyond its arrival.
        for e in freshness:
            assert e["deadline"] > e["t"]
            assert e["timeout"] > 0.0
            assert e["detector"] == "fd"

    def test_crash_produces_suspect_then_trust_with_matching_seq(
        self, sim, event_log
    ):
        tracer = TraceRecorder(ring_capacity=4096)
        detector = _traced_scenario(
            sim, event_log, tracer, crash_schedule=[(10.5, 20.5)]
        )
        sim.run(until=40.0)
        events = tracer.tail(4096)
        suspects = [e for e in events if e["kind"] == "suspect"]
        trusts = [e for e in events if e["kind"] == "trust"]
        assert len(suspects) == 1 and len(trusts) == 1
        assert suspects[0]["t"] < trusts[0]["t"]
        # The suspicion froze at the last pre-crash heartbeat; trust came
        # from the first post-restore one, a strictly higher sequence.
        assert trusts[0]["seq"] > suspects[0]["seq"]
        assert detector.highest_sequence >= trusts[0]["seq"]

    def test_disabled_tracer_is_default(self, sim, event_log):
        detector = _traced_scenario(sim, event_log, None)
        sim.run(until=10.0)
        assert detector.heartbeats_seen == 10


class TestSendSpanRegression:
    """Satellite guarantees: every ``send`` span carries the emitter's
    wall-time and sequence, so breakdowns never have to infer the emit
    time; and a failing daemon socket emits a well-formed ``send-error``
    span instead of raising (the span kind collides with ``emit()``'s
    positional, so the datagram kind must ride in ``detector``)."""

    def test_emitter_send_span_time_equals_datagram_timestamp(self):
        import asyncio

        from repro.service.heartbeat import HeartbeatEmitter
        from repro.service.runtime import AsyncioScheduler

        async def main():
            scheduler = AsyncioScheduler()
            tracer = TraceRecorder(ring_capacity=64)
            datagrams = []
            emitter = HeartbeatEmitter(
                "ep", datagrams.append, scheduler, eta=0.02, tracer=tracer
            )
            emitter.start()
            # fdlint: disable=clock-discipline (live emitter test runs on the wall clock by contract)
            await asyncio.sleep(0.2)
            emitter.stop()
            spans = tracer.tail(64, kind="send")
            assert len(spans) >= 3
            assert len(spans) == len(datagrams)
            for span, datagram in zip(spans, datagrams):
                # The span's t IS the datagram's wire timestamp — the
                # same scheduler read, not a second sample.
                assert span["t"] == datagram.timestamp
                assert span["seq"] == datagram.seq
                assert span["endpoint"] == "ep"

        asyncio.run(asyncio.wait_for(main(), timeout=10.0))

    def test_daemon_send_error_emits_span_not_typeerror(self):
        import asyncio

        from repro.net.message import Datagram
        from repro.service import MonitorDaemon

        class BrokenTransport:
            def is_closing(self):
                return False

            def sendto(self, data, addr):
                raise OSError("socket gone")

        async def main():
            tracer = TraceRecorder(ring_capacity=16)
            daemon = MonitorDaemon(
                port=0, http_port=None, eta=0.5, tracer=tracer
            )
            await daemon.start()
            try:
                daemon._peers["ep"] = ("127.0.0.1", 9)
                daemon._transport = BrokenTransport()
                message = Datagram(
                    source="monitor", destination="ep", kind="crash-ack"
                )
                assert daemon._send(message) is False
                assert daemon.send_errors_total == 1
                [span] = tracer.tail(16, kind="send-error")
                assert span["endpoint"] == "ep"
                assert span["detector"] == "crash-ack"
            finally:
                daemon._transport = None
                await daemon.stop()

        asyncio.run(asyncio.wait_for(main(), timeout=10.0))
