"""Tests for the Neko-style framework: layers, stacks, processes, system."""

import pytest

from repro.clocks.clock import DriftingClock
from repro.neko.config import ExperimentConfig
from repro.neko.layer import Layer, ProtocolStack
from repro.neko.system import NekoSystem, SimulatedNetwork
from repro.net.delay import ConstantDelay
from repro.net.message import Datagram

from tests.conftest import RecordingLayer, make_two_process_system


class TaggingLayer(Layer):
    """Appends its name to a payload list in both directions."""

    def send(self, message):
        message.payload.append(f"{self.name}:down")
        self.send_down(message)

    def deliver(self, message):
        message.payload.append(f"{self.name}:up")
        self.deliver_up(message)


class TestProtocolStack:
    def test_requires_at_least_one_layer(self):
        with pytest.raises(ValueError):
            ProtocolStack([])

    def test_top_and_bottom(self):
        a, b, c = Layer("a"), Layer("b"), Layer("c")
        stack = ProtocolStack([a, b, c])
        assert stack.top is a
        assert stack.bottom is c

    def test_find_by_type(self):
        recorder = RecordingLayer()
        stack = ProtocolStack([recorder, Layer("x")])
        assert stack.find(RecordingLayer) is recorder

    def test_find_missing_raises(self):
        stack = ProtocolStack([Layer("x")])
        with pytest.raises(LookupError):
            stack.find(RecordingLayer)

    def test_send_traverses_top_down(self, sim):
        order_a, order_b = TaggingLayer("A"), TaggingLayer("B")
        sent = []
        stack = ProtocolStack([order_a, order_b])
        system = NekoSystem(sim)
        process = system.create_process("p", stack)
        system.network.set_link("p", "q", ConstantDelay(0.0))
        message = Datagram(source="p", destination="q", kind="t", payload=[])
        stack.top.send(message)
        assert message.payload == ["A:down", "B:down"]

    def test_deliver_traverses_bottom_up(self, sim):
        recorder = RecordingLayer()
        tagger = TaggingLayer("B")
        stack = ProtocolStack([recorder, tagger])
        system = NekoSystem(sim)
        system.create_process("p", stack)
        message = Datagram(source="q", destination="p", kind="t", payload=[])
        stack.deliver_from_network(message)
        assert message.payload == ["B:up"]
        assert recorder.received == [message]

    def test_top_layer_deliver_up_is_silent(self, sim):
        layer = Layer("only")
        stack = ProtocolStack([layer])
        system = NekoSystem(sim)
        system.create_process("p", stack)
        # Delivering to the top layer's deliver_up must not raise.
        layer.deliver_up(Datagram(source="q", destination="p", kind="t"))

    def test_unattached_layer_cannot_send(self):
        layer = Layer("floating")
        with pytest.raises(RuntimeError):
            layer.send_down(Datagram(source="a", destination="b", kind="t"))

    def test_unattached_layer_has_no_process(self):
        with pytest.raises(RuntimeError):
            Layer("floating").process


class TestNekoProcess:
    def test_process_properties(self, sim):
        system = NekoSystem(sim)
        process = system.create_process("p", ProtocolStack([Layer()]))
        assert process.address == "p"
        assert process.sim is sim
        assert process.system is system

    def test_empty_address_rejected(self, sim):
        system = NekoSystem(sim)
        with pytest.raises(ValueError):
            system.create_process("", ProtocolStack([Layer()]))

    def test_duplicate_address_rejected(self, sim):
        system = NekoSystem(sim)
        system.create_process("p", ProtocolStack([Layer()]))
        with pytest.raises(ValueError):
            system.create_process("p", ProtocolStack([Layer()]))

    def test_local_time_uses_clock(self, sim):
        system = NekoSystem(sim)
        clock = DriftingClock(sim, offset=0.5)
        process = system.create_process("p", ProtocolStack([Layer()]), clock=clock)
        assert process.local_time() == 0.5

    def test_timer_factory(self, sim):
        system = NekoSystem(sim)
        process = system.create_process("p", ProtocolStack([Layer()]))
        fired = []
        timer = process.timer(lambda: fired.append(sim.now))
        timer.arm(1.0)
        sim.run()
        assert fired == [1.0]

    def test_periodic_timer_factory(self, sim):
        system = NekoSystem(sim)
        process = system.create_process("p", ProtocolStack([Layer()]))
        ticks = []
        process.periodic_timer(1.0, ticks.append).start()
        sim.run(until=2.5)
        assert ticks == [0, 1, 2]


class TestSimulatedNetwork:
    def test_routes_between_processes(self, sim):
        sender = Layer("send")
        recorder = RecordingLayer()
        system, monitored, monitor = make_two_process_system(
            sim, [sender], [recorder], delay=0.1
        )
        sender.send(Datagram(source="monitored", destination="monitor", kind="t"))
        sim.run()
        assert len(recorder.received) == 1

    def test_unknown_destination_dropped_silently(self, sim):
        sender = Layer("send")
        system, _, _ = make_two_process_system(sim, [sender], [RecordingLayer()])
        sender.send(Datagram(source="monitored", destination="ghost", kind="t"))
        sim.run()  # must not raise

    def test_default_link_created_on_demand(self, sim):
        system = NekoSystem(sim)
        sender = Layer("s")
        recorder = RecordingLayer()
        system.create_process("a", ProtocolStack([sender]))
        system.create_process("b", ProtocolStack([recorder]))
        sender.send(Datagram(source="a", destination="b", kind="t"))
        sim.run()
        assert len(recorder.received) == 1

    def test_link_lookup(self, sim):
        network = SimulatedNetwork(sim)
        link = network.set_link("a", "b", ConstantDelay(0.1))
        assert network.link("a", "b") is link
        with pytest.raises(LookupError):
            network.link("b", "a")

    def test_duplicate_registration_rejected(self, sim):
        network = SimulatedNetwork(sim)
        network.register("a", lambda m: None)
        with pytest.raises(ValueError):
            network.register("a", lambda m: None)

    def test_per_direction_links(self, sim):
        received = []

        class Echo(Layer):
            def deliver(self, message):
                received.append((self.process.address, sim.now))

        system = NekoSystem(sim)
        system.network.set_link("a", "b", ConstantDelay(0.1))
        system.network.set_link("b", "a", ConstantDelay(0.5))
        a_layer, b_layer = Echo("ea"), Echo("eb")
        system.create_process("a", ProtocolStack([a_layer]))
        system.create_process("b", ProtocolStack([b_layer]))
        a_layer.send(Datagram(source="a", destination="b", kind="t"))
        b_layer.send(Datagram(source="b", destination="a", kind="t"))
        sim.run()
        times = dict(received)
        assert times["b"] == pytest.approx(0.1)
        assert times["a"] == pytest.approx(0.5)


class TestSystemLifecycle:
    def test_start_invokes_on_start_bottom_up(self, sim):
        order = []

        class Probe(Layer):
            def on_start(self):
                order.append(self.name)

        stack = ProtocolStack([Probe("top"), Probe("bottom")])
        system = NekoSystem(sim)
        system.create_process("p", stack)
        system.start()
        assert order == ["bottom", "top"]

    def test_start_is_idempotent(self, sim):
        count = []

        class Probe(Layer):
            def on_start(self):
                count.append(1)

        system = NekoSystem(sim)
        system.create_process("p", ProtocolStack([Probe()]))
        system.start()
        system.start()
        assert len(count) == 1

    def test_run_starts_and_advances(self, sim):
        fired = []

        class Probe(Layer):
            def on_start(self):
                self.process.sim.schedule(1.0, lambda: fired.append(True))

        system = NekoSystem(sim)
        system.create_process("p", ProtocolStack([Probe()]))
        system.run(until=2.0)
        assert fired == [True]
        assert sim.now == 2.0


class TestExperimentConfig:
    def test_defaults_match_table5(self):
        config = ExperimentConfig()
        assert config.num_cycles == 100_000
        assert config.mttc == 300.0
        assert config.ttr == 30.0
        assert config.eta == 1.0

    def test_duration(self):
        assert ExperimentConfig(num_cycles=1000, eta=0.5).duration == 500.0

    def test_expected_crashes(self):
        config = ExperimentConfig()
        assert config.expected_crashes == pytest.approx(100000 / 330)

    def test_with_run_changes_seed(self):
        base = ExperimentConfig(seed=1)
        run1 = base.with_run(1)
        run2 = base.with_run(2)
        assert run1.seed != base.seed
        assert run1.seed != run2.seed
        assert run1.run_id == 1

    def test_with_run_is_deterministic(self):
        base = ExperimentConfig(seed=1)
        assert base.with_run(3).seed == base.with_run(3).seed

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(num_cycles=0)
        with pytest.raises(ValueError):
            ExperimentConfig(mttc=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(ttr=-1.0)
        with pytest.raises(ValueError):
            ExperimentConfig(eta=0.0)

    def test_describe_mentions_parameters(self):
        text = ExperimentConfig(seed=42).describe()
        assert "42" in text and "italy-japan" in text
