"""Tests for the live fleet-monitoring service (`repro.service`).

Unit tests exercise the asyncio scheduler, the bounded log, the metric
renderers, the HTTP router and the endpoint registry without any
sockets.  The integration test at the bottom runs the acceptance
scenario: a daemon tracking 50 heartbeat endpoints over real loopback
UDP with all thirty detector combinations live, surviving an injected
crash/recovery cycle and shutting down without leaking threads, sockets
or timers.

No external timeout plugin is available, so every test that touches the
network wraps its event-loop body in ``asyncio.wait_for``.
"""

import asyncio
import json
import threading

import pytest

from repro.fd.combinations import combination_ids
from repro.nekostat.events import EventKind, StatEvent
from repro.nekostat.metrics import DetectorQos
from repro.net.message import Datagram
from repro.service import (
    AsyncioScheduler,
    BoundedEventLog,
    HeartbeatEmitter,
    HeartbeatFleet,
    LiveCrashInjector,
    MetricsHttpServer,
    MonitorDaemon,
    render_prometheus,
    render_status,
)
from repro.service.registry import EndpointRegistry
from repro.service.runtime import ServiceSystem

NETWORK_TIMEOUT = 60.0


def run(coroutine, timeout=NETWORK_TIMEOUT):
    """Run an async test body with a hard timeout (no plugin needed)."""
    return asyncio.run(asyncio.wait_for(coroutine, timeout=timeout))


# ----------------------------------------------------------------------
# Runtime substrate
# ----------------------------------------------------------------------
class TestAsyncioScheduler:
    def test_now_is_epoch_anchored_and_advances(self):
        async def main():
            scheduler = AsyncioScheduler()
            first = scheduler.now
            assert first > 1_000_000_000  # UNIX-epoch seconds, not loop time
            await asyncio.sleep(0.02)
            assert scheduler.now > first

        run(main())

    def test_schedule_fires_in_order(self):
        async def main():
            scheduler = AsyncioScheduler()
            fired = []
            scheduler.schedule(0.04, lambda: fired.append("late"))
            scheduler.schedule(0.01, lambda: fired.append("early"))
            await asyncio.sleep(0.15)
            assert fired == ["early", "late"]
            assert scheduler.outstanding == 0

        run(main())

    def test_cancel_prevents_firing(self):
        async def main():
            scheduler = AsyncioScheduler()
            fired = []
            handle = scheduler.schedule(0.02, lambda: fired.append(True))
            assert not handle.cancelled
            handle.cancel()
            assert handle.cancelled
            await asyncio.sleep(0.1)
            assert fired == []
            assert scheduler.outstanding == 0

        run(main())

    def test_close_cancels_everything_and_rejects_new_work(self):
        async def main():
            scheduler = AsyncioScheduler()
            fired = []
            for _ in range(5):
                scheduler.schedule(0.02, lambda: fired.append(True))
            assert scheduler.outstanding == 5
            scheduler.close()
            assert scheduler.closed
            assert scheduler.outstanding == 0
            with pytest.raises(RuntimeError):
                scheduler.schedule(0.01, lambda: None)
            await asyncio.sleep(0.1)
            assert fired == []

        run(main())


class TestBoundedEventLog:
    def test_keeps_only_the_tail(self):
        log = BoundedEventLog(capacity=3)
        for i in range(10):
            log.append(
                StatEvent(time=float(i), kind=EventKind.SENT, site="q", seq=i)
            )
        assert len(log) == 3
        assert [event.seq for event in log] == [7, 8, 9]
        assert log.capacity == 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            BoundedEventLog(capacity=0)


# ----------------------------------------------------------------------
# Exporter
# ----------------------------------------------------------------------
def _status_fixture():
    qos = DetectorQos(
        detector="Last+CI_med",
        observation_time=100.0,
        up_time=95.0,
        suspected_up_time=1.0,
        td_samples=[0.4, 0.6],
        undetected_crashes=1,
    )
    empty = DetectorQos(detector="Mean+JAC_low", observation_time=100.0, up_time=100.0)
    return render_status(
        uptime_seconds=100.0,
        heartbeats_total=1234,
        dropped_datagrams_total=5,
        endpoints={
            'node"1': {
                "heartbeats": 617,
                "crashes": 2,
                "crashed": True,
                "qos": {
                    "Last+CI_med": (qos, True),
                    "Mean+JAC_low": (empty, False),
                },
            },
        },
    )


class TestExporter:
    def test_status_document_shape(self):
        status = _status_fixture()
        assert status["heartbeats_total"] == 1234
        entry = status["endpoints"]['node"1']
        assert entry["crashed"] is True
        detectors = entry["detectors"]
        assert detectors["Last+CI_med"]["fd_qos_detection_time_seconds"] == (
            pytest.approx(0.5)
        )
        assert detectors["Last+CI_med"]["detection_samples"] == 2
        assert detectors["Last+CI_med"]["fd_suspecting"] == 1
        assert detectors["Mean+JAC_low"]["fd_qos_detection_time_seconds"] is None
        # The document must round-trip through JSON (the /status route).
        json.dumps(status)

    def test_prometheus_rendering(self):
        text = render_prometheus(_status_fixture())
        assert "# TYPE fd_qos_detection_time_seconds gauge" in text
        assert "# TYPE fd_service_heartbeats_total counter" in text
        assert "fd_service_endpoints 1" in text
        # Label values are escaped, samples carry both labels.
        assert (
            'fd_qos_detection_time_seconds{endpoint="node\\"1",'
            'detector="Last+CI_med"} 0.5' in text
        )
        # Series with no observation render as NaN, not 0.
        assert (
            'fd_qos_detection_time_seconds{endpoint="node\\"1",'
            'detector="Mean+JAC_low"} NaN' in text
        )
        assert 'fd_endpoint_crashed{endpoint="node\\"1"} 1' in text
        assert text.endswith("\n")


# ----------------------------------------------------------------------
# HTTP routing (no sockets: _route is synchronous)
# ----------------------------------------------------------------------
class _StubDaemon:
    def __init__(self):
        self.endpoints = {"existing"}
        self.full = False

    def metrics_text(self):
        return "fd_service_endpoints 1\n"

    def status(self):
        return {"endpoints": sorted(self.endpoints)}

    def add_endpoint(self, name):
        if self.full:
            raise RuntimeError("endpoint limit reached")
        if name in self.endpoints:
            raise ValueError("duplicate")
        self.endpoints.add(name)

    def remove_endpoint(self, name):
        if name not in self.endpoints:
            raise KeyError(name)
        self.endpoints.discard(name)


class TestHttpRouting:
    def _server(self):
        return MetricsHttpServer(_StubDaemon())

    def test_metrics_and_status_and_healthz(self):
        server = self._server()
        status, content_type, body = server._route("GET", "/metrics", b"")
        assert status == 200 and "0.0.4" in content_type
        assert b"fd_service_endpoints" in body
        status, content_type, body = server._route("GET", "/status?x=1", b"")
        assert status == 200
        assert json.loads(body)["endpoints"] == ["existing"]
        assert server._route("GET", "/healthz", b"")[0] == 200

    def test_endpoint_registration_routes(self):
        server = self._server()
        daemon = server._daemon
        assert server._route("POST", "/endpoints", b'{"name": "n1"}')[0] == 201
        assert "n1" in daemon.endpoints
        assert server._route("POST", "/endpoints", b'{"name": "n1"}')[0] == 409
        assert server._route("POST", "/endpoints", b"not json")[0] == 400
        assert server._route("POST", "/endpoints", b'{"name": ""}')[0] == 400
        daemon.full = True
        assert server._route("POST", "/endpoints", b'{"name": "n2"}')[0] == 503
        assert server._route("DELETE", "/endpoints/n1", b"")[0] == 200
        assert "n1" not in daemon.endpoints
        assert server._route("DELETE", "/endpoints/ghost", b"")[0] == 404

    def test_unknown_routes_and_methods(self):
        server = self._server()
        assert server._route("GET", "/nope", b"")[0] == 404
        assert server._route("PUT", "/metrics", b"")[0] == 405
        assert server._route("GET", "/endpoints", b"")[0] == 405


# ----------------------------------------------------------------------
# Registry (scheduler-backed, socket-less)
# ----------------------------------------------------------------------
class TestEndpointRegistry:
    def _registry(self, max_endpoints=10):
        scheduler = AsyncioScheduler()
        system = ServiceSystem(scheduler, None)
        return scheduler, EndpointRegistry(
            system,
            eta=0.5,
            detector_ids=["Last+CI_med", "Mean+JAC_low"],
            initial_timeout=5.0,
            max_endpoints=max_endpoints,
        )

    def test_add_remove_lifecycle(self):
        async def main():
            scheduler, registry = self._registry()
            monitor = registry.add("ep1")
            assert len(registry) == 1 and "ep1" in registry
            assert sorted(monitor.detectors) == ["Last+CI_med", "Mean+JAC_low"]
            # Registration armed one initial-timeout timer per detector.
            assert scheduler.outstanding == 2
            with pytest.raises(ValueError):
                registry.add("ep1")
            removed = registry.remove("ep1")
            assert removed is monitor and removed.closed
            assert scheduler.outstanding == 0  # detectors quiesced
            with pytest.raises(KeyError):
                registry.remove("ep1")
            scheduler.close()

        run(main())

    def test_endpoint_limit(self):
        async def main():
            scheduler, registry = self._registry(max_endpoints=2)
            registry.add("a")
            registry.add("b")
            with pytest.raises(RuntimeError):
                registry.add("c")
            registry.close()
            scheduler.close()

        run(main())

    def test_crash_notifications_are_idempotent(self):
        async def main():
            scheduler, registry = self._registry()
            monitor = registry.add("ep1")
            monitor.record_crash()
            monitor.record_crash()  # duplicated control datagram
            assert monitor.crashes == 1 and monitor.crashed
            monitor.record_restore()
            monitor.record_restore()
            assert not monitor.crashed
            qos = monitor.snapshot()["Last+CI_med"]
            # One crash window, no detector transition yet: undetected.
            assert qos.undetected_crashes == 1
            registry.close()
            scheduler.close()

        run(main())

    def test_closed_monitor_ignores_traffic(self):
        async def main():
            scheduler, registry = self._registry()
            monitor = registry.remove_name = registry.add("ep1")
            registry.remove("ep1")
            monitor.deliver(
                Datagram(source="ep1", destination="monitor", kind="heartbeat",
                         seq=0, timestamp=scheduler.now)
            )
            monitor.record_crash()
            assert monitor.heartbeats == 0 and monitor.crashes == 0
            scheduler.close()

        run(main())


# ----------------------------------------------------------------------
# Daemon dispatch (binds an ephemeral loopback socket, no traffic)
# ----------------------------------------------------------------------
@pytest.mark.network
class TestDaemonDispatch:
    def test_routing_and_drop_accounting(self):
        async def main():
            daemon = MonitorDaemon(
                port=0, http_port=None, eta=0.5,
                detector_ids=["Last+CI_med"], auto_register=True,
            )
            await daemon.start()
            try:
                now = daemon.scheduler.now
                hb = Datagram(source="ep1", destination="monitor",
                              kind="heartbeat", seq=0, timestamp=now)
                daemon.dispatch(hb)  # auto-registers
                assert daemon.registry.names() == ["ep1"]
                assert daemon.heartbeats_total == 1
                daemon.dispatch(Datagram(source="ep1", destination="monitor",
                                         kind="crash"))
                assert daemon.registry.get("ep1").crashed
                daemon.dispatch(Datagram(source="ep1", destination="monitor",
                                         kind="restore"))
                assert not daemon.registry.get("ep1").crashed
                # Unknown kinds and control messages for unknown sources drop.
                dropped = daemon.dropped_datagrams
                daemon.dispatch(Datagram(source="ep1", destination="monitor",
                                         kind="gossip"))
                daemon.dispatch(Datagram(source="ghost", destination="monitor",
                                         kind="crash"))
                daemon._on_datagram(b"not json at all", ("127.0.0.1", 1))
                assert daemon.dropped_datagrams == dropped + 3
            finally:
                await daemon.stop()
            assert daemon.scheduler.outstanding == 0

        run(main())

    def test_auto_register_disabled_drops_unknown_sources(self):
        async def main():
            daemon = MonitorDaemon(
                port=0, http_port=None, eta=0.5,
                detector_ids=["Last+CI_med"], auto_register=False,
            )
            await daemon.start()
            try:
                daemon.dispatch(Datagram(source="ep1", destination="monitor",
                                         kind="heartbeat", seq=0,
                                         timestamp=daemon.scheduler.now))
                assert len(daemon.registry) == 0
                assert daemon.dropped_datagrams == 1
                daemon.add_endpoint("ep1")
                daemon.dispatch(Datagram(source="ep1", destination="monitor",
                                         kind="heartbeat", seq=1,
                                         timestamp=daemon.scheduler.now))
                assert daemon.heartbeats_total == 1
            finally:
                await daemon.stop()

        run(main())

    def test_stop_is_idempotent(self):
        async def main():
            daemon = MonitorDaemon(port=0, http_port=None, eta=0.5,
                                   detector_ids=["Last+CI_med"])
            await daemon.start()
            await daemon.stop()
            await daemon.stop()
            assert not daemon.running

        run(main())


# ----------------------------------------------------------------------
# Heartbeat emitter semantics (socket-less: send is a list.append)
# ----------------------------------------------------------------------
class TestHeartbeatEmitter:
    def test_seq_advances_across_crash(self):
        async def main():
            scheduler = AsyncioScheduler()
            sent = []
            emitter = HeartbeatEmitter("q", sent.append, scheduler, eta=0.02)
            emitter.start()
            await asyncio.sleep(0.08)
            emitter.crash()
            await asyncio.sleep(0.06)
            emitter.restore()
            await asyncio.sleep(0.06)
            emitter.stop()
            scheduler.close()
            kinds = [m.kind for m in sent]
            assert "crash" in kinds and "restore" in kinds
            beats = [m for m in sent if m.kind == "heartbeat"]
            assert emitter.suppressed >= 1
            # SimCrash semantics: numbering keeps advancing while silent,
            # so the post-restore seq jumps over the suppressed beats.
            seqs = [m.seq for m in beats]
            assert seqs == sorted(seqs)
            assert max(seqs) >= len(beats)  # gap proves suppression

        run(main())

    def test_injector_drives_crash_cycles(self):
        async def main():
            import numpy as np

            scheduler = AsyncioScheduler()
            emitter = HeartbeatEmitter("q", lambda m: None, scheduler, eta=0.05)
            emitter.start()
            injector = LiveCrashInjector(
                emitter, scheduler, mttc=0.06, ttr=0.02,
                rng=np.random.default_rng(7),
            )
            injector.start()
            await asyncio.sleep(0.5)
            injector.stop()
            emitter.stop()
            scheduler.close()
            assert emitter.crash_count >= 2

        run(main())


# ----------------------------------------------------------------------
# The acceptance scenario
# ----------------------------------------------------------------------
FLEET_SIZE = 50
FLEET_ETA = 0.05
CRASHED_ENDPOINT = "ep00"


async def _fleet_scenario():
    daemon = MonitorDaemon(
        port=0, http_port=0, eta=FLEET_ETA, initial_timeout=0.6,
    )
    await daemon.start()
    names = [f"ep{i:02d}" for i in range(FLEET_SIZE)]
    fleet = HeartbeatFleet(names, daemon.udp_endpoint, eta=FLEET_ETA, seed=11)
    await fleet.start()
    try:
        # Warm-up: every endpoint auto-registers and the predictors see
        # a stretch of normal traffic.
        await asyncio.sleep(1.2)
        assert len(daemon.registry) == FLEET_SIZE

        # Injected crash/recovery cycle on one endpoint.
        fleet.crash(CRASHED_ENDPOINT)
        await asyncio.sleep(1.0)
        fleet.restore(CRASHED_ENDPOINT)
        await asyncio.sleep(0.4)

        status = daemon.status()
        assert len(status["endpoints"]) == FLEET_SIZE
        all_ids = set(combination_ids())
        assert len(all_ids) == 30
        for name in names:
            entry = status["endpoints"][name]
            assert set(entry["detectors"]) == all_ids
            assert entry["heartbeats"] > 0

        crashed = status["endpoints"][CRASHED_ENDPOINT]
        assert crashed["crashes"] == 1
        assert crashed["crashed"] is False
        detected = [
            detector_id
            for detector_id, entry in crashed["detectors"].items()
            if entry["detection_samples"] >= 1
            and entry["fd_qos_detection_time_seconds"] is not None
            and 0.0 <= entry["fd_qos_detection_time_seconds"] < 10.0
        ]
        # The crash lasted ~20 heartbeat periods: every live combination
        # had ample time to raise a permanent suspicion.
        assert len(detected) >= 25, f"only {len(detected)} detected: {detected}"

        # Metrics over real HTTP.
        host, port = daemon.http_endpoint
        status_code, body = await _http(host, port, "GET", "/metrics")
        assert status_code == 200
        text = body.decode()
        assert f"fd_service_endpoints {FLEET_SIZE}" in text
        assert (
            f'fd_qos_detection_time_seconds{{endpoint="{CRASHED_ENDPOINT}",'
            in text
        )
        status_code, body = await _http(host, port, "GET", "/healthz")
        assert status_code == 200 and body == b"ok\n"

        # Runtime endpoint management over HTTP.
        status_code, _ = await _http(
            host, port, "POST", "/endpoints",
            body=json.dumps({"name": "late-joiner"}).encode(),
        )
        assert status_code == 201
        assert "late-joiner" in daemon.registry
        status_code, _ = await _http(
            host, port, "DELETE", "/endpoints/late-joiner"
        )
        assert status_code == 200
        assert "late-joiner" not in daemon.registry

        heartbeats_received = daemon.heartbeats_total
        assert heartbeats_received > 0
        assert fleet.total_sent() >= heartbeats_received  # loopback may drop
    finally:
        await fleet.stop()
        await daemon.stop()

    # Clean shutdown: no timers, no socket, scheduler refuses new work.
    assert daemon.scheduler.outstanding == 0
    assert daemon.scheduler.closed
    assert daemon.http_endpoint is None
    with pytest.raises(RuntimeError):
        daemon.udp_endpoint


async def _http(host, port, method, path, body=b""):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = (
            f"{method} {path} HTTP/1.0\r\n"
            f"Host: {host}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        ).encode()
        writer.write(head + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    header_block, _, payload = raw.partition(b"\r\n\r\n")
    return int(header_block.split()[1]), payload


@pytest.mark.network
class TestFleetIntegration:
    def test_fifty_endpoints_crash_cycle_and_clean_shutdown(self):
        baseline_threads = threading.active_count()
        run(_fleet_scenario())
        # asyncio.run joins its default executor on exit; anything above
        # the baseline would be a thread leaked by the service itself.
        assert threading.active_count() <= baseline_threads
