"""Tests for the fair-lossy link."""

import pytest

from repro.net.delay import ConstantDelay, TraceDelay
from repro.net.link import FairLossyLink
from repro.net.loss import BernoulliLoss
from repro.net.message import Datagram
from repro.sim.random import RandomStreams


def make_datagram(seq=None):
    return Datagram(source="p", destination="q", kind="test", seq=seq)


class TestDelivery:
    def test_delivers_after_sampled_delay(self, sim):
        received = []
        link = FairLossyLink(sim, ConstantDelay(0.25))
        link.connect(lambda m: received.append((sim.now, m)))
        link.send(make_datagram())
        sim.run()
        assert len(received) == 1
        assert received[0][0] == pytest.approx(0.25)

    def test_send_returns_sampled_delay(self, sim):
        link = FairLossyLink(sim, ConstantDelay(0.1), receiver=lambda m: None)
        assert link.send(make_datagram()) == pytest.approx(0.1)

    def test_send_without_receiver_raises(self, sim):
        link = FairLossyLink(sim, ConstantDelay(0.1))
        with pytest.raises(RuntimeError):
            link.send(make_datagram())

    def test_payload_unmodified(self, sim):
        received = []
        link = FairLossyLink(sim, ConstantDelay(0.0), receiver=received.append)
        message = Datagram(source="p", destination="q", kind="t", payload={"x": 1})
        link.send(message)
        sim.run()
        assert received[0] is message

    def test_stats_counters(self, sim):
        link = FairLossyLink(sim, ConstantDelay(0.01), receiver=lambda m: None)
        for _ in range(5):
            link.send(make_datagram())
        sim.run()
        assert link.stats.sent == 5
        assert link.stats.delivered == 5
        assert link.stats.dropped == 0

    def test_records_delays(self, sim):
        link = FairLossyLink(
            sim, TraceDelay([0.1, 0.2, 0.3]), receiver=lambda m: None
        )
        for _ in range(3):
            link.send(make_datagram())
        sim.run()
        assert link.stats.delays == pytest.approx([0.1, 0.2, 0.3])

    def test_record_delays_can_be_disabled(self, sim):
        link = FairLossyLink(
            sim, ConstantDelay(0.1), receiver=lambda m: None, record_delays=False
        )
        link.send(make_datagram())
        sim.run()
        assert link.stats.delays == []


class TestLoss:
    def test_dropped_datagrams_never_delivered(self, sim, streams):
        received = []
        link = FairLossyLink(
            sim,
            ConstantDelay(0.01),
            BernoulliLoss(streams.get("loss"), 1.0),
            receiver=received.append,
        )
        for _ in range(10):
            assert link.send(make_datagram()) is None
        sim.run()
        assert received == []
        assert link.stats.dropped == 10
        assert link.stats.loss_rate == 1.0

    def test_loss_rate_zero_when_nothing_sent(self, sim):
        link = FairLossyLink(sim, ConstantDelay(0.0), receiver=lambda m: None)
        assert link.stats.loss_rate == 0.0

    def test_partial_loss(self, sim, streams):
        link = FairLossyLink(
            sim,
            ConstantDelay(0.001),
            BernoulliLoss(streams.get("loss"), 0.3),
            receiver=lambda m: None,
        )
        for _ in range(5000):
            link.send(make_datagram())
        sim.run()
        assert link.stats.loss_rate == pytest.approx(0.3, rel=0.1)
        assert link.stats.delivered + link.stats.dropped == 5000


class TestReordering:
    def test_faster_datagram_overtakes(self, sim):
        received = []
        link = FairLossyLink(
            sim, TraceDelay([0.5, 0.1]), receiver=lambda m: received.append(m.seq)
        )
        link.send(make_datagram(seq=0))
        link.send(make_datagram(seq=1))
        sim.run()
        assert received == [1, 0]
        assert link.stats.reordered == 1

    def test_fifo_mode_prevents_overtaking(self, sim):
        received = []
        link = FairLossyLink(
            sim,
            TraceDelay([0.5, 0.1]),
            receiver=lambda m: received.append((sim.now, m.seq)),
            fifo=True,
        )
        link.send(make_datagram(seq=0))
        link.send(make_datagram(seq=1))
        sim.run()
        assert [seq for _, seq in received] == [0, 1]
        # The overtaking datagram was clamped to the earlier delivery time.
        assert received[1][0] >= received[0][0]
        assert link.stats.reordered == 0

    def test_in_order_delays_not_counted_reordered(self, sim):
        link = FairLossyLink(
            sim, TraceDelay([0.1, 0.2, 0.3]), receiver=lambda m: None
        )
        for i in range(3):
            link.send(make_datagram(seq=i))
        sim.run()
        assert link.stats.reordered == 0

    def test_negative_delay_from_model_rejected(self, sim):
        class BadModel:
            def sample(self, now):
                return -1.0

            def reset(self):
                pass

        link = FairLossyLink(sim, BadModel(), receiver=lambda m: None)
        with pytest.raises(ValueError):
            link.send(make_datagram())
