"""Property-based scenario tests for the failure detector.

Hypothesis generates random delay sequences, loss patterns and crash
schedules; the invariants below must hold for every one of them:

* suspect/trust transitions strictly alternate in the event log;
* a crash is always permanently detected if the repair time exceeds the
  worst in-force time-out plus one period (completeness);
* with delays bounded by the time-out, no mistakes ever occur (accuracy
  under synchrony);
* the extracted QoS is internally consistent (sample counts, bounds).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fd.baselines import constant_timeout_strategy
from repro.fd.detector import PushFailureDetector
from repro.fd.heartbeat import Heartbeater
from repro.fd.simcrash import SimCrash
from repro.neko.layer import ProtocolStack
from repro.neko.system import NekoSystem
from repro.nekostat.events import EventKind
from repro.nekostat.log import EventLog
from repro.nekostat.metrics import extract_qos
from repro.net.delay import TraceDelay
from repro.sim.engine import Simulator

ETA = 1.0
DELTA = 0.5  # constant time-out under test


def run_scenario(delays, crash_schedule, duration):
    sim = Simulator()
    event_log = EventLog()
    system = NekoSystem(sim)
    system.network.set_link("q", "p", TraceDelay(delays, wrap=True))
    heartbeater = Heartbeater("p", ETA, event_log)
    simcrash = SimCrash(
        100.0, 10.0, None, event_log, schedule=list(crash_schedule)
    )
    system.create_process("q", ProtocolStack([heartbeater, simcrash]))
    detector = PushFailureDetector(
        constant_timeout_strategy(DELTA), "q", ETA, event_log,
        detector_id="fd", initial_timeout=5.0,
    )
    system.create_process("p", ProtocolStack([detector]))
    system.run(until=duration)
    return event_log, detector


# Delays: mostly moderate, occasionally huge (lost-like) or tiny.
delay_lists = st.lists(
    st.one_of(
        st.floats(min_value=0.05, max_value=0.45),   # on time
        st.floats(min_value=0.6, max_value=3.0),     # late (mistake)
    ),
    min_size=5,
    max_size=60,
)

crash_starts = st.lists(
    st.floats(min_value=10.0, max_value=60.0),
    min_size=0,
    max_size=3,
)


def build_schedule(starts, ttr=8.0, gap=4.0):
    """Turn raw start times into an ordered, non-overlapping schedule."""
    schedule = []
    cursor = 0.0
    for start in sorted(starts):
        crash = max(start, cursor + gap)
        schedule.append((crash, crash + ttr))
        cursor = crash + ttr
    return schedule


class TestInvariants:
    @given(delay_lists, crash_starts)
    @settings(max_examples=40, deadline=None)
    def test_transitions_alternate(self, delays, starts):
        event_log, _ = run_scenario(delays, build_schedule(starts), 100.0)
        state = False  # trusting
        for event in event_log:
            if event.kind is EventKind.START_SUSPECT:
                assert not state, "StartSuspect while already suspecting"
                state = True
            elif event.kind is EventKind.END_SUSPECT:
                assert state, "EndSuspect while trusting"
                state = False

    @given(delay_lists, crash_starts)
    @settings(max_examples=40, deadline=None)
    def test_completeness_every_crash_detected(self, delays, starts):
        # TTR = 8 s >> eta + delta + max modelled delay: detection must be
        # permanent for every crash.
        schedule = build_schedule(starts)
        event_log, _ = run_scenario(delays, schedule, 100.0)
        qos = extract_qos(event_log, end_time=100.0, detectors=["fd"])["fd"]
        full_crashes = [c for c in schedule if c[1] <= 100.0]
        assert qos.undetected_crashes == 0
        assert len(qos.td_samples) >= len(full_crashes)

    @given(delay_lists, crash_starts)
    @settings(max_examples=40, deadline=None)
    def test_qos_internally_consistent(self, delays, starts):
        schedule = build_schedule(starts)
        event_log, _ = run_scenario(delays, schedule, 100.0)
        qos = extract_qos(event_log, end_time=100.0, detectors=["fd"])["fd"]
        assert 0.0 <= qos.p_a <= 1.0
        assert 0.0 <= qos.empirical_p_a <= 1.0
        assert qos.suspected_up_time <= qos.up_time + 1e-9
        # Detection bound: eta + delta in the normal case, extended by a
        # stale in-flight heartbeat that arrives during the crash, ends
        # the pre-crash suspicion, and postpones the permanent one — so
        # the exact bound is max(eta + delta, max delay).
        bound = max(ETA + DELTA, max(delays)) + 1e-9
        for sample in qos.td_samples:
            assert 0.0 <= sample <= bound
        for mistake in qos.mistakes:
            assert mistake.duration >= 0.0
        if len(qos.mistakes) >= 2:
            assert len(qos.tmr_samples) == len(qos.mistakes) - 1

    @given(
        st.lists(
            st.floats(min_value=0.05, max_value=0.45),
            min_size=5,
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_accuracy_under_synchrony(self, delays):
        # Every delay below delta and no crashes: zero mistakes, ever.
        event_log, detector = run_scenario(delays, [], 80.0)
        qos = extract_qos(event_log, end_time=80.0, detectors=["fd"])["fd"]
        assert qos.mistakes == []
        assert not detector.suspecting
        assert qos.p_a == 1.0

    @given(delay_lists, crash_starts)
    @settings(max_examples=30, deadline=None)
    def test_detector_trusts_at_end_when_up(self, delays, starts):
        # If the process is up at the end and the last heartbeat had time
        # to arrive, an on-time delay stream must leave the detector
        # trusting... only guaranteed when all delays are on time;
        # restrict to the trusting invariant via the event log instead:
        # the final state equals what the event parity says.
        schedule = build_schedule(starts)
        event_log, detector = run_scenario(delays, schedule, 100.0)
        starts_count = len(event_log.filter(kind=EventKind.START_SUSPECT))
        ends_count = len(event_log.filter(kind=EventKind.END_SUSPECT))
        assert detector.suspecting == (starts_count == ends_count + 1)
