"""Documentation/code consistency guards.

DESIGN.md promises a module and bench for every experiment;
EXPERIMENTS.md records every table and figure.  These tests keep those
documents honest as the code evolves.
"""

from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (REPO / name).read_text(encoding="utf-8")


class TestDesignDocument:
    def test_every_bench_file_is_referenced(self):
        design = read("DESIGN.md")
        for bench in sorted((REPO / "benchmarks").glob("test_bench_*.py")):
            assert bench.name in design, (
                f"benchmarks/{bench.name} is not listed in DESIGN.md's "
                "experiment index"
            )

    def test_every_source_package_is_listed(self):
        design = read("DESIGN.md")
        packages = [
            path.name
            for path in (REPO / "src" / "repro").iterdir()
            if path.is_dir() and (path / "__init__.py").exists()
        ]
        for package in packages:
            assert f"{package}/" in design or f"{package}." in design, (
                f"package repro.{package} missing from DESIGN.md inventory"
            )

    def test_design_declares_paper_identity_check(self):
        assert "Paper identity check" in read("DESIGN.md")


class TestExperimentsDocument:
    @pytest.mark.parametrize("section", [
        "Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
        "Figure 4", "Figure 5", "Figures 6 & 7", "Figure 8",
        "push vs pull",
    ])
    def test_every_table_and_figure_recorded(self, section):
        assert section in read("EXPERIMENTS.md")

    def test_verdict_vocabulary_used(self):
        experiments = read("EXPERIMENTS.md")
        for verdict in ("REPRODUCED", "PARTIAL"):
            assert verdict in experiments

    def test_known_limits_section_exists(self):
        assert "Known reproduction limits" in read("EXPERIMENTS.md")


class TestReadme:
    def test_readme_names_the_paper(self):
        readme = read("README.md")
        assert "Falai" in readme and "Bondavalli" in readme
        assert "DSN 2005" in readme

    def test_readme_examples_exist(self):
        readme = read("README.md")
        for line in readme.splitlines():
            if "python examples/" in line:
                script = line.split("python ")[1].split()[0]
                assert (REPO / script).exists(), f"README references missing {script}"

    def test_readme_cli_commands_exist(self):
        from repro.cli import _COMMANDS

        readme = read("README.md")
        for command in _COMMANDS:
            assert f"repro {command}" in readme, (
                f"CLI command {command!r} undocumented in README"
            )
