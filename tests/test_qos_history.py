"""Windowed QoS store: unit behaviour and batch-equivalence property.

The store's contract is that ``query(endpoint, detector, start, end)``
equals batch :func:`repro.nekostat.metrics.extract_qos` over the same
slice of the transition log, re-based so the window start is time zero
(with the pre-window state closed into synthetic boundary events at the
window start — crash first, then suspicion, matching the accumulator's
documented tie-breaking).  The property test mirrors the streaming
equivalence suite in ``tests/test_online_qos.py``.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main as cli_main
from repro.nekostat.events import EventKind, StatEvent
from repro.nekostat.log import EventLog
from repro.nekostat.metrics import OnlineQosAccumulator, extract_qos
from repro.obs import WindowedQosStore

pytestmark = pytest.mark.obs

DETECTOR = "fd"
ENDPOINT = "ep"

_EVENT_KINDS = {
    "C": EventKind.CRASH,
    "R": EventKind.RESTORE,
    "S": EventKind.START_SUSPECT,
    "T": EventKind.END_SUSPECT,
}


def _legalize(tokens):
    """Drop tokens violating the two state machines (see test_online_qos)."""
    crashed = False
    suspecting = False
    legal = []
    for token in tokens:
        if token == "C" and not crashed:
            crashed = True
        elif token == "R" and crashed:
            crashed = False
        elif token == "S" and not suspecting:
            suspecting = True
        elif token == "T" and suspecting:
            suspecting = False
        else:
            continue
        legal.append(token)
    return legal


def _record(store, sequence):
    for token, t in sequence:
        if token == "C":
            store.record_crash(ENDPOINT, t)
        elif token == "R":
            store.record_restore(ENDPOINT, t)
        elif token == "S":
            store.record_suspect(ENDPOINT, DETECTOR, t)
        else:
            store.record_trust(ENDPOINT, DETECTOR, t)


def _expected_window_qos(sequence, start, end):
    """Ground truth: batch extract_qos over the re-based window slice.

    The pre-window state becomes synthetic boundary events at relative
    time zero — crash before suspect, the accumulator's tie order.
    """
    crashed = False
    suspecting = False
    for token, t in sequence:
        if t > start:
            break
        if token == "C":
            crashed = True
        elif token == "R":
            crashed = False
        elif token == "S":
            suspecting = True
        elif token == "T":
            suspecting = False
    log = EventLog()
    if crashed:
        log.append(StatEvent(time=0.0, kind=EventKind.CRASH, site=ENDPOINT))
    if suspecting:
        log.append(
            StatEvent(
                time=0.0, kind=EventKind.START_SUSPECT,
                site="monitor", detector=DETECTOR,
            )
        )
    for token, t in sequence:
        if not start < t <= end:
            continue
        kind = _EVENT_KINDS[token]
        if token in ("S", "T"):
            log.append(
                StatEvent(
                    time=t - start, kind=kind, site="monitor", detector=DETECTOR
                )
            )
        else:
            log.append(StatEvent(time=t - start, kind=kind, site=ENDPOINT))
    return extract_qos(log, end_time=end - start, detectors=[DETECTOR])[DETECTOR]


def _close(a, b):
    if a is None and b is None:
        return True
    if a is None or b is None:
        return False
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


def assert_window_equivalent(store, sequence, start, end):
    window = store.query(ENDPOINT, DETECTOR, start, end)
    batch = _expected_window_qos(sequence, start, end)
    online = window.qos
    # Window results carry absolute times; the batch slice is re-based.
    assert [s for s in online.td_samples] == pytest.approx(
        batch.td_samples, abs=1e-9
    )
    assert online.undetected_crashes == batch.undetected_crashes
    assert [(m.start - start, m.end - start) for m in online.mistakes] == (
        pytest.approx([(m.start, m.end) for m in batch.mistakes], abs=1e-9)
    )
    assert online.tmr_samples == pytest.approx(batch.tmr_samples, abs=1e-9)
    assert _close(online.observation_time, batch.observation_time)
    assert _close(online.up_time, batch.up_time)
    assert _close(online.suspected_up_time, batch.suspected_up_time)
    assert _close(online.p_a, batch.p_a)
    assert _close(online.t_d_upper, batch.t_d_upper)
    return window


class TestRecording:
    def test_transitions_are_buffered_then_flushed(self):
        store = WindowedQosStore(flush_every=4)
        store.record_suspect(ENDPOINT, DETECTOR, 1.0)
        store.record_trust(ENDPOINT, DETECTOR, 2.0)
        assert store.transitions_total == 2
        assert store.flushes_total == 0
        store.record_crash(ENDPOINT, 3.0)
        store.record_restore(ENDPOINT, 4.0)  # fourth row triggers flush
        assert store.flushes_total == 1
        store.close()

    def test_unknown_kind_rejected(self):
        store = WindowedQosStore()
        with pytest.raises(ValueError):
            store.record_transition(ENDPOINT, DETECTOR, "explode", 1.0)
        store.close()

    def test_closed_store_ignores_records(self):
        store = WindowedQosStore()
        store.close()
        store.record_suspect(ENDPOINT, DETECTOR, 1.0)
        assert store.transitions_total == 0

    def test_prune_drops_old_rows(self):
        store = WindowedQosStore(retention=10.0)
        store.record_suspect(ENDPOINT, DETECTOR, 1.0)
        store.record_trust(ENDPOINT, DETECTOR, 2.0)
        store.record_suspect(ENDPOINT, DETECTOR, 95.0)
        removed = store.prune(100.0)
        assert removed == 2
        assert store.latest_time() == pytest.approx(95.0)
        store.close()

    def test_latest_time_empty(self):
        store = WindowedQosStore()
        assert store.latest_time() is None
        store.close()

    def test_snapshot_round_trip(self):
        store = WindowedQosStore()
        accumulator = OnlineQosAccumulator(DETECTOR)
        accumulator.observe_crash(1.0)
        accumulator.observe_suspect(2.0)
        accumulator.observe_restore(3.0)
        accumulator.observe_trust(4.0)
        qos = accumulator.snapshot(5.0)
        store.record_snapshot(ENDPOINT, DETECTOR, 5.0, qos)
        [(t, restored)] = store.snapshots(ENDPOINT, DETECTOR)
        assert t == pytest.approx(5.0)
        assert restored.td_samples == pytest.approx(qos.td_samples)
        assert restored.undetected_crashes == qos.undetected_crashes
        assert restored.up_time == pytest.approx(qos.up_time)
        assert restored.observation_time == pytest.approx(qos.observation_time)
        store.close()


class TestWindowSemantics:
    """Hand-computed boundary cases for the window closure rules."""

    def test_window_in_quiet_stretch_is_all_up(self):
        store = WindowedQosStore()
        _record(store, [("S", 1.0), ("T", 2.0)])
        window = store.query(ENDPOINT, DETECTOR, 10.0, 20.0)
        assert window.qos.up_time == pytest.approx(10.0)
        assert window.qos.p_a == pytest.approx(1.0)
        assert window.qos.mistakes == []
        store.close()

    def test_crash_before_window_measures_td_from_window_start(self):
        # Crash at 5 precedes the window; suspicion at 6 falls inside:
        # T_D is measured from the window start (the crash as this
        # window saw it), not from the out-of-window true crash.
        store = WindowedQosStore()
        _record(store, [("C", 5.0), ("S", 6.0), ("R", 9.0), ("T", 9.5)])
        sequence = [("C", 5.0), ("S", 6.0), ("R", 9.0), ("T", 9.5)]
        window = assert_window_equivalent(store, sequence, 5.5, 12.0)
        assert window.qos.td_samples == [pytest.approx(0.5)]
        store.close()

    def test_crash_and_suspicion_spanning_start_detect_instantly(self):
        store = WindowedQosStore()
        sequence = [("S", 4.0), ("C", 5.0), ("R", 9.0), ("T", 9.5)]
        _record(store, sequence)
        window = assert_window_equivalent(store, sequence, 6.0, 12.0)
        assert window.qos.td_samples == [pytest.approx(0.0)]
        assert window.qos.mistakes == []
        store.close()

    def test_event_exactly_at_start_belongs_to_state(self):
        # t == start rows define the boundary state; the replay is (start, end].
        store = WindowedQosStore()
        sequence = [("C", 5.0), ("R", 7.0)]
        _record(store, sequence)
        window = assert_window_equivalent(store, sequence, 5.0, 10.0)
        assert window.qos.undetected_crashes == 1
        store.close()

    def test_window_ending_exactly_on_transition_includes_it(self):
        # Replay covers (start, end]: a trust exactly at the window end
        # closes the mistake inside the window.
        store = WindowedQosStore()
        sequence = [("S", 3.0), ("T", 7.0)]
        _record(store, sequence)
        window = assert_window_equivalent(store, sequence, 0.0, 7.0)
        assert len(window.qos.mistakes) == 1
        assert window.qos.mistakes[0].end == pytest.approx(7.0)
        # One tick earlier the suspicion is still open, closed by the
        # window boundary itself.
        boundary = store.query(ENDPOINT, DETECTOR, 0.0, 6.999)
        assert boundary.qos.mistakes[0].end == pytest.approx(6.999)
        store.close()

    def test_window_entirely_after_recorded_span(self):
        store = WindowedQosStore()
        sequence = [("S", 1.0), ("T", 2.0)]
        _record(store, sequence)
        window = assert_window_equivalent(store, sequence, 50.0, 60.0)
        assert window.qos.mistakes == []
        assert window.qos.p_a == pytest.approx(1.0)
        store.close()

    def test_window_entirely_before_recorded_span(self):
        store = WindowedQosStore()
        sequence = [("S", 100.0), ("T", 101.0)]
        _record(store, sequence)
        window = assert_window_equivalent(store, sequence, 0.0, 10.0)
        assert window.qos.mistakes == []
        store.close()

    def test_snapshots_time_range_is_inclusive_both_ends(self):
        store = WindowedQosStore()
        accumulator = OnlineQosAccumulator(DETECTOR)
        for t in (1.0, 2.0, 3.0):
            store.record_snapshot(
                ENDPOINT, DETECTOR, t, accumulator.snapshot(t)
            )
        times = [t for t, _ in store.snapshots(
            ENDPOINT, DETECTOR, start=1.0, end=2.0
        )]
        assert times == [pytest.approx(1.0), pytest.approx(2.0)]
        assert len(store.snapshots(ENDPOINT, DETECTOR)) == 3
        store.close()

    def test_invalid_window_rejected(self):
        store = WindowedQosStore()
        with pytest.raises(ValueError):
            store.query(ENDPOINT, DETECTOR, 5.0, 4.0)
        store.close()

    def test_query_many_filters(self):
        store = WindowedQosStore()
        store.record_suspect("a", "d1", 1.0)
        store.record_suspect("a", "d2", 2.0)
        store.record_suspect("b", "d1", 3.0)
        everything = store.query_many(0.0, 10.0)
        assert {(w.endpoint, w.detector) for w in everything} == {
            ("a", "d1"), ("a", "d2"), ("b", "d1"),
        }
        only_a = store.query_many(0.0, 10.0, endpoint="a")
        assert {(w.endpoint, w.detector) for w in only_a} == {
            ("a", "d1"), ("a", "d2"),
        }
        only_d1 = store.query_many(0.0, 10.0, detector="d1")
        assert {w.endpoint for w in only_d1} == {"a", "b"}
        store.close()

    def test_to_dict_payload(self):
        store = WindowedQosStore()
        _record(store, [("S", 1.0), ("T", 2.0)])
        document = store.query(ENDPOINT, DETECTOR, 0.0, 5.0).to_dict()
        assert document["endpoint"] == ENDPOINT
        assert document["detector"] == DETECTOR
        assert document["window_start"] == 0.0
        assert document["window_end"] == 5.0
        assert document["mistakes"] == 1
        assert document["mistake_intervals"] == [[1.0, 2.0]]
        store.close()

    def test_file_store_survives_reopen(self, tmp_path):
        path = str(tmp_path / "qos.sqlite")
        store = WindowedQosStore(path)
        sequence = [("C", 2.0), ("S", 3.0), ("R", 6.0), ("T", 6.5)]
        _record(store, sequence)
        store.close()
        reopened = WindowedQosStore(path)
        window = assert_window_equivalent(reopened, sequence, 0.0, 10.0)
        assert window.qos.td_samples == [pytest.approx(1.0)]
        reopened.close()


TOKEN = st.sampled_from(["S", "T", "C", "R"])
GAP = st.integers(min_value=1, max_value=4)
SCALE = st.sampled_from([0.25, 1.0, 7.3])


@settings(max_examples=200, deadline=None)
@given(
    tokens=st.lists(TOKEN, max_size=40),
    gaps=st.lists(GAP, min_size=40, max_size=40),
    scale=SCALE,
    tail_gap=GAP,
    fractions=st.tuples(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    ),
)
def test_window_query_equals_batch_extraction(
    tokens, gaps, scale, tail_gap, fractions
):
    """The satellite equivalence property.

    For any legal transition interleaving recorded into the store and
    any window inside the recorded span, the windowed query equals batch
    ``extract_qos`` over the re-based log slice.
    """
    legal = _legalize(tokens)
    times = []
    t = 0
    for gap in gaps[: len(legal)]:
        t += gap
        times.append(t * scale)
    sequence = list(zip(legal, times))
    total = (t + tail_gap) * scale
    start, end = sorted(fraction * total for fraction in fractions)
    if end == start:
        # Zero-width windows are degenerate: batch extraction over an
        # empty observation manufactures zero-length crash intervals.
        end = start + 0.5 * scale

    store = WindowedQosStore()
    try:
        _record(store, sequence)
        assert_window_equivalent(store, sequence, start, end)
        # The full recorded span as a window equals the plain stream.
        assert_window_equivalent(store, sequence, 0.0, total)
    finally:
        store.close()


class TestQosHistoryCli:
    def _populate(self, path):
        store = WindowedQosStore(path)
        _record(store, [("C", 2.0), ("S", 3.0), ("R", 6.0), ("T", 6.5)])
        store.close()

    def test_table_output(self, tmp_path, capsys):
        path = str(tmp_path / "qos.sqlite")
        self._populate(path)
        exit_code = cli_main(["qos-history", "--db", path, "--window", "10"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert ENDPOINT in out and DETECTOR in out
        assert "T_D ms" in out

    def test_json_output(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "qos.sqlite")
        self._populate(path)
        exit_code = cli_main(
            ["qos-history", "--db", path, "--window", "10", "--json"]
        )
        assert exit_code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == 1
        assert records[0]["endpoint"] == ENDPOINT
        assert records[0]["detection_samples"] == 1

    def test_missing_db_is_an_error(self, tmp_path, capsys):
        exit_code = cli_main(
            ["qos-history", "--db", str(tmp_path / "nope.sqlite")]
        )
        assert exit_code == 2
        assert "no such history database" in capsys.readouterr().err

    def test_empty_db_reports_empty(self, tmp_path, capsys):
        path = str(tmp_path / "empty.sqlite")
        WindowedQosStore(path).close()
        exit_code = cli_main(["qos-history", "--db", path])
        assert exit_code == 0
        assert "empty" in capsys.readouterr().out
