"""Tests for delay trace recording, persistence and statistics."""

import numpy as np
import pytest

from repro.net.delay import ConstantDelay, TraceDelay
from repro.net.traces import DelayTrace, TraceRecorder


class TestDelayTrace:
    def test_length_and_indexing(self):
        trace = DelayTrace([0.1, 0.2, 0.3])
        assert len(trace) == 3
        assert trace[1] == 0.2
        assert list(trace) == [0.1, 0.2, 0.3]

    def test_immutable(self):
        trace = DelayTrace([0.1, 0.2])
        with pytest.raises(ValueError):
            trace.delays[0] = 9.9

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DelayTrace([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DelayTrace([0.1, -0.1])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            DelayTrace([0.1, float("nan")])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            DelayTrace(np.zeros((2, 2)))

    def test_summary_statistics(self):
        trace = DelayTrace([0.1, 0.2, 0.3, 0.4])
        summary = trace.summary()
        assert summary.count == 4
        assert summary.mean == pytest.approx(0.25)
        assert summary.minimum == 0.1
        assert summary.maximum == 0.4
        assert summary.median == pytest.approx(0.25)
        assert summary.std == pytest.approx(np.std([0.1, 0.2, 0.3, 0.4], ddof=1))

    def test_summary_milliseconds(self):
        summary = DelayTrace([0.2, 0.2]).summary().as_milliseconds()
        assert summary.mean == pytest.approx(200.0)

    def test_single_sample_std_zero(self):
        assert DelayTrace([0.5]).summary().std == 0.0

    def test_from_model_samples_at_interval(self):
        trace = DelayTrace.from_model(TraceDelay([0.1, 0.2, 0.3]), count=3)
        assert list(trace) == [0.1, 0.2, 0.3]

    def test_from_model_invalid_count(self):
        with pytest.raises(ValueError):
            DelayTrace.from_model(ConstantDelay(0.1), count=0)

    def test_save_and_load_roundtrip(self, tmp_path):
        trace = DelayTrace([0.123456789, 0.2])
        path = tmp_path / "trace.txt"
        trace.save(path, header="test trace\nsecond line")
        loaded = DelayTrace.load(path)
        assert loaded.delays == pytest.approx(trace.delays)

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# comment\n\n0.1\n0.2\n")
        assert list(DelayTrace.load(path)) == [0.1, 0.2]

    def test_load_reports_bad_line(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0.1\nnot-a-number\n")
        with pytest.raises(ValueError, match="2"):
            DelayTrace.load(path)

    def test_autocorrelation_of_constant_is_safe(self):
        acf = DelayTrace([0.2] * 10).autocorrelation(3)
        assert acf[0] == 1.0
        assert np.all(acf[1:] == 0.0)

    def test_autocorrelation_lag0_is_one(self):
        rng = np.random.default_rng(0)
        trace = DelayTrace(rng.uniform(0.1, 0.2, 500))
        assert trace.autocorrelation(5)[0] == pytest.approx(1.0)

    def test_autocorrelation_detects_correlation(self):
        rng = np.random.default_rng(0)
        level = np.repeat(rng.uniform(0.1, 0.2, 50), 20)  # 20-sample plateaus
        trace = DelayTrace(level)
        assert trace.autocorrelation(1)[1] > 0.8


class TestTraceRecorder:
    def test_records_and_freezes(self):
        recorder = TraceRecorder()
        recorder.record(0.1)
        recorder.record(0.2)
        assert len(recorder) == 2
        assert list(recorder.trace()) == [0.1, 0.2]

    def test_extend(self):
        recorder = TraceRecorder()
        recorder.extend([0.1, 0.2, 0.3])
        assert len(recorder) == 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TraceRecorder().record(-0.1)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            TraceRecorder().record(float("nan"))
