"""Tests for the delay models."""

import numpy as np
import pytest

from repro.net.delay import (
    ArCorrelatedDelay,
    CompositeDelay,
    ConstantDelay,
    DiurnalModulation,
    LognormalDelay,
    MultiScaleWanDelay,
    ShiftedGammaDelay,
    SpikeOverlay,
    TelegraphDelay,
    TraceDelay,
)


def sample_many(model, count, interval=1.0):
    return np.array([model.sample(i * interval) for i in range(count)])


class TestConstantDelay:
    def test_returns_constant(self):
        model = ConstantDelay(0.25)
        assert model.sample(0.0) == 0.25
        assert model.sample(100.0) == 0.25

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantDelay(-0.1)


class TestShiftedGammaDelay:
    def test_respects_minimum(self, rng):
        model = ShiftedGammaDelay(rng, minimum=0.192, shape=2.0, scale=0.005)
        assert np.all(sample_many(model, 2000) >= 0.192)

    def test_mean_matches_theory(self, rng):
        model = ShiftedGammaDelay(rng, minimum=0.1, shape=4.0, scale=0.01)
        samples = sample_many(model, 20000)
        assert samples.mean() == pytest.approx(model.mean(), rel=0.02)

    def test_std_matches_theory(self, rng):
        model = ShiftedGammaDelay(rng, minimum=0.1, shape=4.0, scale=0.01)
        samples = sample_many(model, 20000)
        assert samples.std() == pytest.approx(model.std(), rel=0.05)

    def test_invalid_parameters_rejected(self, rng):
        with pytest.raises(ValueError):
            ShiftedGammaDelay(rng, minimum=-1.0, shape=1.0, scale=1.0)
        with pytest.raises(ValueError):
            ShiftedGammaDelay(rng, minimum=0.0, shape=0.0, scale=1.0)
        with pytest.raises(ValueError):
            ShiftedGammaDelay(rng, minimum=0.0, shape=1.0, scale=-1.0)


class TestLognormalDelay:
    def test_respects_minimum(self, rng):
        model = LognormalDelay(rng, minimum=0.06, mu=-3.0, sigma=0.8)
        assert np.all(sample_many(model, 2000) >= 0.06)

    def test_heavy_tail(self, rng):
        model = LognormalDelay(rng, minimum=0.0, mu=-3.0, sigma=1.0)
        samples = sample_many(model, 50000)
        # Lognormal(sigma=1): mean/median = exp(0.5) ~ 1.65.
        assert samples.mean() / np.median(samples) > 1.4

    def test_invalid_sigma(self, rng):
        with pytest.raises(ValueError):
            LognormalDelay(rng, minimum=0.0, mu=0.0, sigma=0.0)


class TestArCorrelatedDelay:
    def test_respects_minimum(self, rng):
        model = ArCorrelatedDelay(rng, minimum=0.1, phi=0.8, noise_std=0.01)
        assert np.all(sample_many(model, 2000) >= 0.1)

    def test_positive_autocorrelation(self, rng):
        model = ArCorrelatedDelay(
            rng, minimum=0.0, phi=0.9, noise_std=0.01, bias=0.01
        )
        samples = sample_many(model, 20000)
        centred = samples - samples.mean()
        lag1 = np.dot(centred[:-1], centred[1:]) / np.dot(centred, centred)
        assert lag1 > 0.6

    def test_phi_zero_is_uncorrelated(self, rng):
        model = ArCorrelatedDelay(rng, minimum=0.0, phi=0.0, noise_std=0.01, bias=0.05)
        samples = sample_many(model, 20000)
        centred = samples - samples.mean()
        lag1 = np.dot(centred[:-1], centred[1:]) / np.dot(centred, centred)
        assert abs(lag1) < 0.05

    def test_reset_restores_initial_queue(self, rng):
        model = ArCorrelatedDelay(
            rng, minimum=0.0, phi=0.9, noise_std=0.0, bias=0.0, initial_queue=0.5
        )
        first = model.sample(0.0)
        model.sample(1.0)
        model.reset()
        assert model.sample(0.0) == pytest.approx(first)

    def test_invalid_phi_rejected(self, rng):
        with pytest.raises(ValueError):
            ArCorrelatedDelay(rng, minimum=0.0, phi=1.0, noise_std=0.01)


class TestTelegraphDelay:
    def test_output_is_binary(self, rng):
        model = TelegraphDelay(rng, high=0.01, dwell_low=10, dwell_high=5)
        samples = sample_many(model, 5000)
        assert set(np.unique(samples)) <= {0.0, 0.01}

    def test_duty_cycle_matches_theory(self, rng):
        model = TelegraphDelay(rng, high=1.0, dwell_low=30, dwell_high=10)
        samples = sample_many(model, 100000)
        assert samples.mean() == pytest.approx(model.duty_cycle(), abs=0.02)
        assert model.duty_cycle() == pytest.approx(0.25)

    def test_dwell_times_geometric(self, rng):
        model = TelegraphDelay(rng, high=1.0, dwell_low=20, dwell_high=20)
        samples = sample_many(model, 100000)
        # Count state switches: expected about 2 * n / (dwell_lo + dwell_hi).
        switches = int(np.sum(samples[1:] != samples[:-1]))
        assert switches == pytest.approx(100000 / 20, rel=0.15)

    def test_reset_returns_to_low(self, rng):
        model = TelegraphDelay(rng, high=1.0, dwell_low=1, dwell_high=10**9)
        model.sample(0.0)  # will flip high almost surely
        model.reset()
        assert not model.in_high_state

    def test_invalid_dwell_rejected(self, rng):
        with pytest.raises(ValueError):
            TelegraphDelay(rng, high=1.0, dwell_low=0.5, dwell_high=5)


class TestSpikeOverlay:
    def test_no_spikes_when_probability_zero(self, rng):
        base = ConstantDelay(0.1)
        model = SpikeOverlay(rng, base, 0.0, 0.05, 0.1)
        assert np.all(sample_many(model, 1000) == 0.1)

    def test_spike_amplitude_within_bounds(self, rng):
        base = ConstantDelay(0.0)
        model = SpikeOverlay(rng, base, 1.0, 0.05, 0.1, spike_run=1)
        samples = sample_many(model, 1000)
        assert np.all(samples >= 0.05) and np.all(samples <= 0.1)

    def test_spike_run_decays(self, rng):
        base = ConstantDelay(0.0)
        model = SpikeOverlay(
            rng, base, spike_probability=1.0, spike_min=0.08, spike_max=0.08,
            spike_run=3, decay=0.5,
        )
        first = model.sample(0.0)
        second = model.sample(1.0)
        third = model.sample(2.0)
        assert first == pytest.approx(0.08)
        assert second == pytest.approx(0.04)
        assert third == pytest.approx(0.02)

    def test_spike_rate_matches_probability(self, rng):
        base = ConstantDelay(0.0)
        model = SpikeOverlay(rng, base, 0.01, 0.05, 0.05, spike_run=1)
        samples = sample_many(model, 100000)
        assert np.mean(samples > 0) == pytest.approx(0.01, rel=0.2)

    def test_reset_clears_active_spike(self, rng):
        base = ConstantDelay(0.0)
        model = SpikeOverlay(rng, base, 1.0, 0.08, 0.08, spike_run=5, decay=1.0)
        model.sample(0.0)
        model.reset()
        spike_free = SpikeOverlay(rng, base, 0.0, 0.08, 0.08)
        assert spike_free.sample(1.0) == 0.0

    def test_invalid_probability_rejected(self, rng):
        with pytest.raises(ValueError):
            SpikeOverlay(rng, ConstantDelay(0.0), 1.5, 0.0, 0.1)


class TestDiurnalModulation:
    def test_modulates_queueing_only(self):
        base = ConstantDelay(0.3)
        model = DiurnalModulation(base, floor=0.2, amplitude=0.5, period=100.0)
        # At t=25 (quarter period) sin = 1: queueing 0.1 scaled by 1.5.
        assert model.sample(25.0) == pytest.approx(0.2 + 0.15)
        # At t=75 sin = -1: queueing scaled by 0.5.
        assert model.sample(75.0) == pytest.approx(0.2 + 0.05)

    def test_floor_never_violated(self, rng):
        base = ShiftedGammaDelay(rng, minimum=0.192, shape=2.0, scale=0.005)
        model = DiurnalModulation(base, floor=0.192, amplitude=0.9, period=3600.0)
        assert np.all(sample_many(model, 5000) >= 0.192)

    def test_invalid_amplitude(self):
        with pytest.raises(ValueError):
            DiurnalModulation(ConstantDelay(0.1), 0.0, 1.0, 60.0)


class TestCompositeDelay:
    def test_sums_components(self):
        model = CompositeDelay([ConstantDelay(0.1), ConstantDelay(0.05)])
        assert model.sample(0.0) == pytest.approx(0.15)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeDelay([])


class TestTraceDelay:
    def test_replays_in_order(self):
        model = TraceDelay([0.1, 0.2, 0.3])
        assert [model.sample(0), model.sample(1), model.sample(2)] == [0.1, 0.2, 0.3]

    def test_wraps_by_default(self):
        model = TraceDelay([0.1, 0.2])
        [model.sample(i) for i in range(2)]
        assert model.sample(2) == 0.1

    def test_no_wrap_raises(self):
        model = TraceDelay([0.1], wrap=False)
        model.sample(0)
        with pytest.raises(IndexError):
            model.sample(1)

    def test_reset_restarts(self):
        model = TraceDelay([0.1, 0.2])
        model.sample(0)
        model.reset()
        assert model.sample(0) == 0.1

    def test_negative_delays_rejected(self):
        with pytest.raises(ValueError):
            TraceDelay([0.1, -0.2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TraceDelay([])


class TestMultiScaleWanDelay:
    def make(self, rng, **overrides):
        params = dict(
            floor=0.192,
            base_queue=0.006,
            white_std=0.0028,
            telegraph_high=0.011,
            telegraph_dwell_low=35.0,
            telegraph_dwell_high=11.0,
            slow_std=0.0015,
            slow_tau=3000.0,
            spike_probability=3e-3,
            spike_min=0.03,
            spike_max=0.08,
        )
        params.update(overrides)
        return MultiScaleWanDelay(rng, **params)

    def test_respects_floor(self, rng):
        model = self.make(rng)
        assert np.all(sample_many(model, 20000) >= 0.192)

    def test_mean_queueing_estimate(self, rng):
        model = self.make(rng, spike_probability=0.0, white_std=0.0, slow_std=0.0)
        samples = sample_many(model, 50000)
        expected = 0.192 + model.mean_queueing()
        assert samples.mean() == pytest.approx(expected, abs=0.001)

    def test_reset_restores_state(self, rng):
        model = self.make(rng)
        sample_many(model, 100)
        model.reset()
        assert not model._telegraph.in_high_state

    def test_no_spikes_variant(self, rng):
        model = self.make(rng, spike_probability=0.0)
        samples = sample_many(model, 20000)
        # Without spikes the range stays tight around the floor.
        assert samples.max() < 0.25

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            self.make(rng, floor=-0.1)
        with pytest.raises(ValueError):
            self.make(rng, slow_tau=0.0)
