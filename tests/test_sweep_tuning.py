"""Tests for parameter sweeps and margin tuning."""

import math

import pytest

from repro.experiments.sweep import (
    SweepPoint,
    format_sweep,
    sweep_eta,
    sweep_margin_level,
)
from repro.fd.tuning import tune_margin_level
from repro.neko.config import ExperimentConfig

FAST = ExperimentConfig(num_cycles=1500, mttc=80.0, ttr=15.0, seed=77)


class TestSweepEta:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep_eta(FAST, [0.5, 1.0, 2.0, 4.0])

    def test_message_cost_is_inverse_eta(self, points):
        assert [p.messages_per_second for p in points] == pytest.approx(
            [2.0, 1.0, 0.5, 0.25]
        )

    def test_detection_time_grows_with_eta(self, points):
        detection = [p.detection_time for p in points]
        assert detection == sorted(detection)
        # T_D ~ eta/2 + delta: quadrupling eta roughly quadruples the
        # dominant term.
        assert detection[-1] > 2.5 * detection[1]

    def test_mistake_rate_falls_with_eta(self, points):
        # Fewer heartbeats per second = fewer opportunities per second to
        # time out wrongly.
        assert points[0].mistake_rate >= points[-1].mistake_rate

    def test_same_virtual_duration(self, points):
        # Every point saw a comparable crash schedule (fixed duration).
        assert all(not math.isnan(p.detection_time) for p in points)

    def test_validation(self):
        with pytest.raises(ValueError):
            sweep_eta(FAST, [])
        with pytest.raises(ValueError):
            sweep_eta(FAST, [0.0])


class TestSweepMargin:
    @pytest.fixture(scope="class")
    def ci_points(self):
        return sweep_margin_level(FAST, [0.5, 1.0, 2.0, 4.0], family="CI")

    def test_mistakes_fall_with_gamma(self, ci_points):
        mistakes = [p.mistakes for p in ci_points]
        assert mistakes == sorted(mistakes, reverse=True)

    def test_detection_grows_with_gamma(self, ci_points):
        detection = [p.detection_time for p in ci_points]
        assert detection[-1] > detection[0]

    def test_jac_family(self):
        points = sweep_margin_level(FAST, [1.0, 4.0], family="JAC")
        assert points[0].mistakes >= points[1].mistakes

    def test_validation(self):
        with pytest.raises(ValueError):
            sweep_margin_level(FAST, [1.0], family="XX")
        with pytest.raises(ValueError):
            sweep_margin_level(FAST, [])
        with pytest.raises(ValueError):
            sweep_margin_level(FAST, [-1.0])

    def test_format_sweep(self, ci_points):
        text = format_sweep(ci_points, "gamma")
        assert "gamma" in text and "P_A" in text
        assert str(len(ci_points) + 2) != ""  # header + rule + rows
        assert len(text.splitlines()) == len(ci_points) + 2


class TestTuning:
    def test_meets_recurrence_target(self):
        result = tune_margin_level(
            FAST, target_t_mr=60.0, family="CI", refine_iterations=2
        )
        assert result.achieved_t_mr >= 60.0
        assert result.level <= 64.0
        assert result.steps  # the search log is populated

    def test_refinement_brackets_the_level(self):
        result = tune_margin_level(
            FAST, target_t_mr=60.0, family="CI", refine_iterations=3
        )
        # Some evaluated level below the chosen one must have failed
        # (otherwise the initial level already met the target).
        failing = [s for s in result.steps if not s.met]
        if failing:
            assert max(s.level for s in failing) <= result.level

    def test_trivial_target_met_at_initial_level(self):
        result = tune_margin_level(
            FAST, target_t_mr=0.001, family="CI", refine_iterations=0
        )
        assert result.level == 1.0
        assert len(result.steps) == 1

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError, match="unreachable"):
            tune_margin_level(
                FAST, target_t_mr=1e9, family="CI",
                initial_level=1.0, max_level=4.0,
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            tune_margin_level(FAST, 60.0, family="XX")
        with pytest.raises(ValueError):
            tune_margin_level(FAST, 0.0)
        with pytest.raises(ValueError):
            tune_margin_level(FAST, 60.0, initial_level=8.0, max_level=4.0)
