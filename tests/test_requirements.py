"""Tests for QoS-requirements-driven configuration (NFD methodology)."""

import numpy as np
import pytest

from repro.experiments.runner import MONITORED, build_qos_system
from repro.fd.baselines import constant_timeout_strategy
from repro.fd.detector import PushFailureDetector
from repro.fd.requirements import (
    Configuration,
    QosRequirements,
    UnsatisfiableRequirements,
    configure,
)
from repro.neko.config import ExperimentConfig
from repro.nekostat.metrics import extract_qos


@pytest.fixture(scope="module")
def gamma_delays():
    rng = np.random.default_rng(5)
    return 0.15 + rng.gamma(2.0, 0.02, 100_000)


class TestConfigure:
    def test_meets_all_three_requirements(self, gamma_delays):
        requirements = QosRequirements(
            detection_time_upper=2.0,
            mistake_recurrence_lower=300.0,
            mistake_duration_upper=2.0,
        )
        configuration = configure(gamma_delays, requirements)
        assert configuration.eta + configuration.delta <= 2.0 + 1e-9
        predicted = configuration.predicted
        assert predicted.mistake_recurrence_mean >= 300.0
        assert predicted.mistake_duration_mean <= 2.0

    def test_prefers_cheapest_configuration(self, gamma_delays):
        loose = QosRequirements(
            detection_time_upper=3.0,
            mistake_recurrence_lower=10.0,
            mistake_duration_upper=5.0,
        )
        tight = QosRequirements(
            detection_time_upper=3.0,
            mistake_recurrence_lower=50_000.0,
            mistake_duration_upper=5.0,
        )
        cheap = configure(gamma_delays, loose)
        expensive = configure(gamma_delays, tight)
        # Looser accuracy demands allow a longer period (fewer messages).
        assert cheap.eta >= expensive.eta
        assert cheap.messages_per_second <= expensive.messages_per_second

    def test_unsatisfiable_due_to_loss(self, gamma_delays):
        requirements = QosRequirements(
            detection_time_upper=2.0,
            mistake_recurrence_lower=100_000.0,
            mistake_duration_upper=5.0,
        )
        with pytest.raises(UnsatisfiableRequirements, match="T_MR"):
            configure(gamma_delays, requirements, loss_probability=0.01)

    def test_unsatisfiable_budget_too_small(self, gamma_delays):
        # Detection budget below the delay floor: every heartbeat "late".
        requirements = QosRequirements(
            detection_time_upper=0.05,
            mistake_recurrence_lower=10.0,
            mistake_duration_upper=1.0,
        )
        with pytest.raises(UnsatisfiableRequirements):
            configure(gamma_delays, requirements)

    def test_explicit_candidates_respected(self, gamma_delays):
        requirements = QosRequirements(
            detection_time_upper=2.0,
            mistake_recurrence_lower=10.0,
            mistake_duration_upper=5.0,
        )
        configuration = configure(
            gamma_delays, requirements, eta_candidates=[1.5, 1.0]
        )
        assert configuration.eta in (1.5, 1.0)

    def test_requirement_validation(self):
        with pytest.raises(ValueError):
            QosRequirements(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            QosRequirements(1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            QosRequirements(1.0, 1.0, 0.0)


class TestEndToEndContract:
    def test_configured_detector_honours_contract_in_simulation(self, gamma_delays):
        """The complete loop: characterise -> configure -> simulate ->
        verify the contract held."""
        requirements = QosRequirements(
            detection_time_upper=1.5,
            mistake_recurrence_lower=120.0,
            mistake_duration_upper=2.0,
        )
        configuration = configure(gamma_delays, requirements)

        from repro.net.delay import ShiftedGammaDelay
        from repro.net.link import FairLossyLink  # noqa: F401 (doc link)
        from repro.fd.heartbeat import Heartbeater
        from repro.fd.simcrash import SimCrash
        from repro.neko.layer import ProtocolStack
        from repro.neko.system import NekoSystem
        from repro.nekostat.log import EventLog
        from repro.sim.engine import Simulator

        sim = Simulator()
        event_log = EventLog()
        system = NekoSystem(sim)
        rng = np.random.default_rng(6)
        system.network.set_link(
            "q", "p", ShiftedGammaDelay(rng, minimum=0.15, shape=2.0, scale=0.02),
            record_delays=False,
        )
        heartbeater = Heartbeater("p", configuration.eta, event_log)
        schedule = [(500.0 * k + 100.0 + k * 0.37 % 1, 500.0 * k + 120.0)
                    for k in range(20)]
        simcrash = SimCrash(100.0, 20.0, None, event_log, schedule=schedule)
        system.create_process("q", ProtocolStack([heartbeater, simcrash]))
        detector = PushFailureDetector(
            constant_timeout_strategy(configuration.delta), "q",
            configuration.eta, event_log, detector_id="fd", initial_timeout=5.0,
        )
        system.create_process("p", ProtocolStack([detector]))
        duration = 10_000.0
        system.run(until=duration)
        qos = extract_qos(event_log, end_time=duration)["fd"]

        assert qos.undetected_crashes == 0
        assert qos.t_d_upper <= requirements.detection_time_upper + 1e-6
        if qos.t_mr is not None:
            assert qos.t_mr.mean >= requirements.mistake_recurrence_lower * 0.5
        if qos.t_m is not None:
            assert qos.t_m.mean <= requirements.mistake_duration_upper
