"""Tests for profile calibration from measured traces."""

import numpy as np
import pytest

from repro.net.calibrate import CalibrationResult, calibrate
from repro.net.traces import DelayTrace
from repro.net.wan import italy_japan_profile
from repro.sim.random import RandomStreams


def synthesize(profile, count=50_000, seed=7, direction="cal"):
    model = profile.build_delay_model(RandomStreams(seed), direction)
    return DelayTrace([model.sample(float(i)) for i in range(count)])


@pytest.fixture(scope="module")
def wan_trace():
    return synthesize(italy_japan_profile())


@pytest.fixture(scope="module")
def calibrated(wan_trace):
    return calibrate(wan_trace)


class TestParameterRecovery:
    def test_floor_recovered(self, calibrated):
        assert calibrated.floor == pytest.approx(0.192, abs=0.002)

    def test_white_std_recovered(self, calibrated):
        # Generator uses sqrt(8e-6) ~ 2.83 ms.
        assert calibrated.white_std == pytest.approx(0.00283, rel=0.35)

    def test_telegraph_amplitude_recovered(self, calibrated):
        # Generator uses 11 ms epochs.
        assert calibrated.telegraph_high == pytest.approx(0.011, rel=0.4)

    def test_dwell_asymmetry_recovered(self, calibrated):
        # Low dwell (35) exceeds high dwell (11).
        assert calibrated.telegraph_dwell_low > calibrated.telegraph_dwell_high

    def test_spikes_detected(self, calibrated):
        assert calibrated.spike_probability > 0
        assert calibrated.spike_max > 0.02  # the 30-80 ms spikes


class TestRoundTrip:
    def test_summary_statistics_match(self, wan_trace, calibrated):
        profile = calibrated.build_profile()
        regenerated = synthesize(profile, seed=99, direction="regen")
        original = wan_trace.summary()
        copy = regenerated.summary()
        assert copy.mean == pytest.approx(original.mean, abs=0.004)
        assert copy.std == pytest.approx(original.std, rel=0.35)
        assert copy.minimum == pytest.approx(original.minimum, abs=0.003)

    def test_autocorrelation_shape_preserved(self, wan_trace, calibrated):
        profile = calibrated.build_profile()
        regenerated = synthesize(profile, seed=99, direction="regen")
        original_acf = wan_trace.autocorrelation(5)
        copy_acf = regenerated.autocorrelation(5)
        # Both must show the epoch-driven positive short-range correlation.
        assert copy_acf[1] > 0.2
        assert abs(copy_acf[1] - original_acf[1]) < 0.35

    def test_profile_is_usable_in_experiments(self, calibrated):
        from repro.experiments.characterize import characterize_profile

        profile = calibrated.build_profile(loss_probability=0.004)
        result = characterize_profile(profile, samples=5_000)
        assert result.delay.minimum >= calibrated.floor - 1e-9
        assert 0.0 < result.loss_probability < 0.02


class TestEdgeCases:
    def test_constant_trace(self):
        result = calibrate([0.2] * 2000)
        assert result.floor == 0.2
        assert result.white_std == pytest.approx(0.0, abs=1e-4)
        assert result.spike_probability == 0.0

    def test_pure_white_noise_trace(self):
        rng = np.random.default_rng(0)
        trace = 0.1 + np.abs(rng.normal(0.01, 0.002, 20_000))
        result = calibrate(trace)
        assert result.floor == pytest.approx(0.1, abs=0.005)
        assert result.telegraph_high < 0.01  # no real epochs to find

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            calibrate([0.2] * 100)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            calibrate([0.2] * 999 + [-1.0])
        with pytest.raises(ValueError):
            calibrate([0.2] * 999 + [float("nan")])

    def test_accepts_delay_trace_object(self):
        trace = DelayTrace([0.2 + 0.001 * (i % 7) for i in range(2000)])
        result = calibrate(trace)
        assert isinstance(result, CalibrationResult)
