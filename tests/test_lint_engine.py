"""Engine-level tests: pragmas, baselines, JSON schema, rule selection."""

import json
from pathlib import Path

import pytest

from repro.lint import DEFAULT_CONFIG, lint_file, lint_paths
from repro.lint.engine import (
    SCHEMA_VERSION,
    known_rule_ids,
    load_baseline,
    write_baseline,
)

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def lint_source(source: str, name: str = "repro/fd/sample.py"):
    return lint_file(name, DEFAULT_CONFIG, source=source)


class TestPragmas:
    def test_justified_pragma_suppresses_and_is_recorded(self):
        result = lint_file(str(FIXTURES / "pragmas/justified.py"),
                           DEFAULT_CONFIG)
        assert result.findings == []
        assert len(result.suppressions) == 1
        suppression = result.suppressions[0]
        assert suppression.justified
        assert "self-measurement" in suppression.justification
        assert "clock-discipline" in suppression.rules

    def test_unjustified_pragma_suppresses_nothing(self):
        result = lint_file(str(FIXTURES / "pragmas/unjustified.py"),
                           DEFAULT_CONFIG)
        rules = sorted(f.rule for f in result.findings)
        assert "clock-discipline" in rules
        assert "unjustified-suppression" in rules
        assert result.suppressions == []

    def test_unjustified_finding_carries_fdl000(self):
        result = lint_file(str(FIXTURES / "pragmas/unjustified.py"),
                           DEFAULT_CONFIG)
        codes = {f.rule: f.code for f in result.findings}
        assert codes["unjustified-suppression"] == "FDL000"

    def test_trailing_pragma_covers_its_line(self):
        source = (
            "import time\n"
            "t = time.time()  "
            "# fdlint: disable=clock-discipline (test: trailing form)\n"
        )
        result = lint_source(source)
        assert result.findings == []
        assert len(result.suppressions) == 1

    def test_own_line_pragma_covers_next_line(self):
        source = (
            "import time\n"
            "# fdlint: disable=clock-discipline (test: own-line form)\n"
            "t = time.time()\n"
        )
        assert lint_source(source).findings == []

    def test_def_header_pragma_covers_whole_body(self):
        source = (
            "import time\n"
            "# fdlint: disable=clock-discipline (test: block form)\n"
            "def clocked():\n"
            "    a = time.time()\n"
            "    b = time.monotonic()\n"
            "    return a, b\n"
        )
        result = lint_source(source)
        assert result.findings == []
        assert len(result.suppressions) == 1
        assert len(result.suppressions[0].suppressed) == 2

    def test_pragma_for_wrong_rule_does_not_suppress(self):
        source = (
            "import time\n"
            "t = time.time()  "
            "# fdlint: disable=seeded-randomness (test: wrong rule)\n"
        )
        result = lint_source(source)
        assert [f.rule for f in result.findings] == ["clock-discipline"]

    def test_pragma_text_inside_string_is_inert(self):
        source = (
            "import time\n"
            'NOTE = "# fdlint: disable=clock-discipline (not a comment)"\n'
            "t = time.time()\n"
        )
        result = lint_source(source)
        assert [f.rule for f in result.findings] == ["clock-discipline"]


class TestBaseline:
    def test_roundtrip_and_filtering(self, tmp_path):
        target = str(FIXTURES / "clock/positive.py")
        full = lint_paths([target], DEFAULT_CONFIG)
        assert full.findings

        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), full)

        stored = json.loads(baseline_path.read_text(encoding="utf-8"))
        assert stored["version"] == 1
        assert len(stored["fingerprints"]) == len(set(
            f.fingerprint() for f in full.findings
        ))

        fingerprints = load_baseline(str(baseline_path))
        filtered = lint_paths(
            [target], DEFAULT_CONFIG, baseline=fingerprints
        )
        assert filtered.findings == []
        assert filtered.baselined == len(full.findings)

    def test_baseline_keeps_new_findings(self, tmp_path):
        target = str(FIXTURES / "clock/positive.py")
        full = lint_paths([target], DEFAULT_CONFIG)
        partial = {f.fingerprint() for f in full.findings[:1]}
        result = lint_paths([target], DEFAULT_CONFIG, baseline=partial)
        assert len(result.findings) == len(full.findings) - 1
        assert result.baselined == 1


class TestJsonSchema:
    def test_to_dict_shape(self):
        result = lint_paths(
            [str(FIXTURES / "clock/positive.py"),
             str(FIXTURES / "pragmas/justified.py")],
            DEFAULT_CONFIG,
        )
        payload = result.to_dict()
        assert payload["version"] == SCHEMA_VERSION
        assert payload["files_scanned"] == 2
        assert isinstance(payload["baselined"], int)
        for finding in payload["findings"]:
            assert set(finding) >= {
                "path", "line", "col", "rule", "code", "severity",
                "message", "hint",
            }
        for suppression in payload["suppressions"]:
            assert set(suppression) >= {
                "path", "line", "rules", "justification", "suppressed",
            }
        assert payload["counts"]["clock-discipline"] >= 1
        # must survive serialization untouched
        assert json.loads(json.dumps(payload)) == payload


class TestSelection:
    def test_select_narrows_to_one_rule(self):
        source = (
            "import time, random\n"
            "t = time.time()\n"
            "r = random.random()\n"
        )
        result = lint_file(
            "repro/fd/sample.py", DEFAULT_CONFIG,
            select=["clock-discipline"], source=source,
        )
        assert {f.rule for f in result.findings} == {"clock-discipline"}

    def test_ignore_drops_one_rule(self):
        source = (
            "import time, random\n"
            "t = time.time()\n"
            "r = random.random()\n"
        )
        result = lint_file(
            "repro/fd/sample.py", DEFAULT_CONFIG,
            ignore=["clock-discipline"], source=source,
        )
        assert {f.rule for f in result.findings} == {"seeded-randomness"}

    def test_known_rule_ids_include_codes_and_fdl000(self):
        ids = known_rule_ids()
        assert "clock-discipline" in ids
        assert "FDL001" in ids
        assert "FDL000" in ids and "unjustified-suppression" in ids


class TestSyntaxError:
    def test_unparseable_file_yields_syntax_finding(self):
        result = lint_source("def broken(:\n", name="repro/fd/broken.py")
        assert [f.rule for f in result.findings] == ["syntax-error"]
        assert result.findings[0].code == "FDL999"
