"""Smoke tests: every example script must run green end to end.

Examples are user-facing documentation; a broken one is a broken README.
Each runs in a subprocess with reduced workload arguments where the
script supports them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: script name -> extra argv (reduced workloads for CI speed)
EXAMPLES = {
    "quickstart.py": [],
    "compare_30_detectors.py": ["2000"],
    "group_membership.py": [],
    "environments.py": [],
    "trace_workflow.py": ["4000"],
    "consensus_demo.py": [],
    "tune_timeout.py": [],
    "custom_predictor.py": [],
    "real_udp.py": [],
    "kv_failover_demo.py": ["40"],
}


def run_example(name, args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize("name,args", sorted(EXAMPLES.items()))
def test_example_runs_clean(name, args):
    result = run_example(name, args)
    assert result.returncode == 0, (
        f"{name} failed:\n--- stdout ---\n{result.stdout[-2000:]}"
        f"\n--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{name} produced no output"


def test_every_example_file_is_covered():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES), (
        "examples on disk and smoke-test table disagree: "
        f"{on_disk.symmetric_difference(set(EXAMPLES))}"
    )
