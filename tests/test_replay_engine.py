"""Equivalence tests for the replay-backed campaign engine.

``engine="replay"`` must be a drop-in for the event-driven simulator on
crash-free configurations: same synthesized traces (identical random
stream consumption), same per-detector QoS samples, same link counters,
same pooled aggregates — for all 30 paper combinations.  A hypothesis
property sweeps the configuration space; deterministic tests pin the
refusal paths (crashes inside the horizon, clock error, unsupported
combinations) and the process-pool composition.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.replay_engine import (
    run_qos_replay,
    run_repetitions_replay,
    synthesize_heartbeat_trace,
)
from repro.experiments.runner import (
    QosRunSummary,
    aggregate_runs,
    run_qos_experiment,
    run_repetitions,
)
from repro.fd.combinations import combination_ids
from repro.neko.config import ExperimentConfig

TOLERANCE = 1e-9

#: Every combination, including the six batched-ARIMA ones.
ALL_IDS = combination_ids()


def crash_free_config(**overrides) -> ExperimentConfig:
    """A config whose first SimCrash draw always lands past the horizon.

    The draw is uniform in [mttc/2, 3 mttc/2], so mttc > 2 x duration
    guarantees crash-freeness for every seed.
    """
    params = dict(
        num_cycles=1200,
        ttr=20.0,
        eta=1.0,
        profile_name="italy-japan",
        seed=7,
    )
    params.update(overrides)
    duration = params["num_cycles"] * params["eta"]
    return ExperimentConfig(mttc=2.5 * duration, **params)


def assert_summaries_equivalent(sim, rep):
    """One simulator result == one replay summary, field for field."""
    assert rep.heartbeats_sent == sim.heartbeats_sent
    assert rep.heartbeats_delivered == sim.heartbeats_delivered
    assert rep.link_loss_rate == pytest.approx(sim.link_loss_rate, abs=1e-12)
    assert rep.crashes == sim.crashes == 0
    assert set(rep.qos) == set(sim.qos)
    for detector_id, expected in sim.qos.items():
        actual = rep.qos[detector_id]
        assert actual.detector == expected.detector
        assert actual.td_samples == expected.td_samples == []
        assert actual.undetected_crashes == expected.undetected_crashes == 0
        assert actual.up_time == pytest.approx(expected.up_time, abs=TOLERANCE)
        assert len(actual.mistakes) == len(expected.mistakes), detector_id
        for got, want in zip(actual.mistakes, expected.mistakes):
            assert got.start == pytest.approx(want.start, abs=TOLERANCE)
            assert got.end == pytest.approx(want.end, abs=TOLERANCE)
        np.testing.assert_allclose(
            actual.tmr_samples, expected.tmr_samples, rtol=0, atol=TOLERANCE
        )
        assert actual.suspected_up_time == pytest.approx(
            expected.suspected_up_time, abs=1e-6
        )


class TestTraceSynthesis:
    def test_matches_simulator_link_counters(self):
        config = crash_free_config(num_cycles=2000, seed=3)
        trace = synthesize_heartbeat_trace(config)
        result = run_qos_experiment(config, ["Last+JAC_med"])
        assert trace.heartbeats_sent == result.heartbeats_sent
        assert trace.heartbeats_delivered == result.heartbeats_delivered
        assert trace.loss_rate == pytest.approx(result.link_loss_rate, abs=1e-12)

    def test_sends_num_cycles_plus_one(self):
        config = crash_free_config(num_cycles=500)
        trace = synthesize_heartbeat_trace(config)
        assert trace.heartbeats_sent == 501
        np.testing.assert_array_equal(
            trace.send_times, np.arange(501) * config.eta
        )

    def test_lost_heartbeats_have_no_delay_draw(self):
        config = crash_free_config(num_cycles=5000, seed=1)
        trace = synthesize_heartbeat_trace(config)
        assert np.all(np.isnan(trace.delays[trace.lost]))
        assert np.all(np.isfinite(trace.delays[~trace.lost]))

    def test_crash_inside_horizon_rejected(self):
        config = ExperimentConfig(
            num_cycles=2000, mttc=120.0, ttr=20.0, eta=1.0, seed=2005
        )
        with pytest.raises(ValueError, match="crash-free"):
            synthesize_heartbeat_trace(config)

    def test_clock_error_rejected(self):
        config = crash_free_config(clock_drift=1e-5)
        with pytest.raises(ValueError, match="perfect clocks"):
            synthesize_heartbeat_trace(config)


class TestEngineEquivalence:
    def test_all_thirty_combinations_one_run(self):
        config = crash_free_config(num_cycles=2500, seed=11)
        sim = QosRunSummary.from_result(run_qos_experiment(config, ALL_IDS))
        rep = run_qos_replay(config, ALL_IDS)
        assert_summaries_equivalent(sim, rep)

    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_cycles=st.integers(min_value=300, max_value=1500),
        eta=st.sampled_from([0.5, 1.0, 2.0]),
    )
    def test_property_pooled_qos_matches(self, seed, num_cycles, eta):
        config = crash_free_config(num_cycles=num_cycles, eta=eta, seed=seed)
        sim = run_repetitions(config, 1, ALL_IDS)
        rep = run_repetitions(config, 1, ALL_IDS, engine="replay")
        pooled_sim = aggregate_runs(sim)
        pooled_rep = aggregate_runs(rep)
        assert set(pooled_sim) == set(pooled_rep) == set(ALL_IDS)
        for detector_id in ALL_IDS:
            expected = pooled_sim[detector_id]
            actual = pooled_rep[detector_id]
            assert len(actual.tm_samples) == len(expected.tm_samples)
            np.testing.assert_allclose(
                actual.tm_samples, expected.tm_samples, rtol=0, atol=TOLERANCE
            )
            np.testing.assert_allclose(
                actual.tmr_samples, expected.tmr_samples, rtol=0, atol=TOLERANCE
            )
            assert actual.p_a == pytest.approx(expected.p_a, abs=1e-9)
            assert actual.empirical_p_a == pytest.approx(
                expected.empirical_p_a, abs=1e-9
            )

    def test_run_repetitions_seeding_matches_serial(self):
        config = crash_free_config(num_cycles=600, seed=21)
        serial = run_repetitions_replay(config, 3)
        via_engine = run_repetitions(config, 3, engine="replay")
        assert [r.config.seed for r in serial] == [
            r.config.seed for r in via_engine
        ]
        for a, b in zip(serial, via_engine):
            assert_summaries_equivalent(a, b)


class TestWorkersComposition:
    def test_parallel_equals_serial(self):
        config = crash_free_config(num_cycles=800, seed=5)
        detectors = ["Arima+CI_med", "Last+JAC_med", "WinMean+CI_high"]
        serial = run_repetitions_replay(config, 3, detectors, workers=1)
        pooled = run_repetitions_replay(config, 3, detectors, workers=2)
        for a, b in zip(serial, pooled):
            assert_summaries_equivalent(a, b)


class TestRefusals:
    def test_unknown_engine_rejected(self):
        config = crash_free_config()
        with pytest.raises(ValueError, match="engine"):
            run_repetitions(config, 1, engine="warp-drive")

    def test_build_kwargs_rejected_on_replay(self):
        config = crash_free_config()
        with pytest.raises(ValueError, match="build_kwargs"):
            run_repetitions(
                config, 1, engine="replay", record_events=True
            )

    def test_unsupported_combination_rejected(self):
        config = crash_free_config()
        with pytest.raises(ValueError, match="unknown margin"):
            run_qos_replay(config, ["Last+nope"])
