"""Tests for the baseline detectors: constant, NFD-E, Bertier, φ-accrual, pull."""

import pytest

from repro.fd.baselines import (
    ConstantPredictor,
    PhiAccrualDetector,
    bertier_strategy,
    constant_timeout_strategy,
    nfd_e_strategy,
)
from repro.fd.detector import PushFailureDetector
from repro.fd.heartbeat import Heartbeater
from repro.fd.multiplexer import MultiPlexer
from repro.fd.pull import PullFailureDetector, PullResponder
from repro.fd.simcrash import SimCrash
from repro.fd.predictors import LastPredictor
from repro.fd.safety import ConstantMargin
from repro.fd.timeout import TimeoutStrategy
from repro.neko.layer import ProtocolStack
from repro.neko.system import NekoSystem
from repro.nekostat.events import EventKind
from repro.nekostat.log import EventLog
from repro.nekostat.metrics import extract_qos
from repro.net.delay import ConstantDelay, TraceDelay


class TestConstantTimeout:
    def test_constant_predictor_ignores_observations(self):
        predictor = ConstantPredictor(0.5)
        predictor.observe(0.1)
        assert predictor.predict() == 0.5

    def test_strategy_timeout_fixed(self):
        strategy = constant_timeout_strategy(0.4)
        strategy.observe(0.2)
        strategy.observe(0.9)
        assert strategy.timeout() == pytest.approx(0.4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantPredictor(-0.1)


class TestNfdE:
    def test_is_winmean_plus_constant(self):
        strategy = nfd_e_strategy(alpha=0.1, window=3)
        for value in [0.2, 0.3, 0.4]:
            strategy.observe(value)
        assert strategy.timeout() == pytest.approx(0.3 + 0.1)

    def test_window_slides(self):
        strategy = nfd_e_strategy(alpha=0.0, window=2)
        for value in [10.0, 0.2, 0.4]:
            strategy.observe(value)
        assert strategy.timeout() == pytest.approx(0.3)


class TestBertierStrategy:
    def test_margin_adapts_to_error(self):
        strategy = bertier_strategy(window=100)
        for _ in range(50):
            strategy.observe(0.2)
        # Perfectly predictable delays: the margin decays towards zero.
        assert strategy.timeout() == pytest.approx(0.2, abs=0.05)

    def test_name(self):
        assert bertier_strategy().name == "Bertier"


def wire_monitor(sim, event_log, detector_layers, delays, eta=1.0,
                 crash_schedule=()):
    system = NekoSystem(sim)
    system.network.set_link("monitored", "monitor", delays)
    system.network.set_link("monitor", "monitored", ConstantDelay(0.1))
    heartbeater = Heartbeater("monitor", eta, event_log)
    simcrash = SimCrash(100.0, 10.0, None, event_log, schedule=list(crash_schedule))
    responder = PullResponder()
    system.create_process(
        "monitored", ProtocolStack([responder, heartbeater, simcrash])
    )
    multiplexer = MultiPlexer(detector_layers, event_log)
    system.create_process("monitor", ProtocolStack([multiplexer]))
    system.start()
    return system


class TestPhiAccrual:
    def test_no_suspicion_on_steady_heartbeats(self, sim, event_log):
        detector = PhiAccrualDetector("monitored", 1.0, event_log, threshold=8.0)
        wire_monitor(sim, event_log, [detector], ConstantDelay(0.2))
        sim.run(until=100.0)
        assert event_log.filter(kind=EventKind.START_SUSPECT) == []

    def test_detects_crash(self, sim, event_log):
        detector = PhiAccrualDetector("monitored", 1.0, event_log, threshold=3.0)
        wire_monitor(
            sim, event_log, [detector], ConstantDelay(0.2),
            crash_schedule=[(20.5, 40.5)],
        )
        sim.run(until=60.0)
        qos = extract_qos(event_log, end_time=60.0)[detector.detector_id]
        assert len(qos.td_samples) == 1
        assert qos.undetected_crashes == 0

    def test_lower_threshold_detects_faster(self, sim, event_log):
        fast = PhiAccrualDetector(
            "monitored", 1.0, event_log, threshold=1.0, detector_id="fast"
        )
        slow = PhiAccrualDetector(
            "monitored", 1.0, event_log, threshold=8.0, detector_id="slow"
        )
        wire_monitor(
            sim, event_log, [fast, slow], ConstantDelay(0.2),
            crash_schedule=[(20.5, 60.5)],
        )
        sim.run(until=80.0)
        qos = extract_qos(event_log, end_time=80.0)
        assert qos["fast"].td_samples[0] < qos["slow"].td_samples[0]

    def test_phi_grows_with_silence(self, sim, event_log):
        detector = PhiAccrualDetector(
            "monitored", 1.0, event_log, threshold=8.0, min_std=0.5
        )
        wire_monitor(
            sim, event_log, [detector], ConstantDelay(0.2),
            crash_schedule=[(20.5, 60.5)],
        )
        sim.run(until=22.0)
        phi_early = detector.phi()
        sim.run(until=25.0)
        assert detector.phi() > phi_early

    def test_phi_zero_after_fresh_heartbeat(self, sim, event_log):
        detector = PhiAccrualDetector("monitored", 1.0, event_log)
        wire_monitor(sim, event_log, [detector], ConstantDelay(0.2))
        sim.run(until=10.25)  # just after an arrival
        assert detector.phi() < 0.5

    def test_invalid_parameters(self, event_log):
        with pytest.raises(ValueError):
            PhiAccrualDetector("q", 0.0, event_log)
        with pytest.raises(ValueError):
            PhiAccrualDetector("q", 1.0, event_log, threshold=0.0)
        with pytest.raises(ValueError):
            PhiAccrualDetector("q", 1.0, event_log, window=1)


class TestPullDetector:
    def make_pull(self, event_log, timeout=0.5):
        strategy = TimeoutStrategy(LastPredictor(), ConstantMargin(0.2))
        return PullFailureDetector(
            strategy, "monitored", 1.0, event_log, detector_id="pull",
            initial_timeout=timeout + 2.0,
        )

    def test_no_suspicion_on_steady_replies(self, sim, event_log):
        detector = self.make_pull(event_log)
        wire_monitor(sim, event_log, [detector], ConstantDelay(0.1))
        sim.run(until=50.0)
        assert event_log.filter(kind=EventKind.START_SUSPECT) == []
        assert detector.replies_seen > 40

    def test_observes_round_trip_times(self, sim, event_log):
        detector = self.make_pull(event_log)
        wire_monitor(sim, event_log, [detector], ConstantDelay(0.15))
        sim.run(until=10.0)
        # RTT = 0.15 (request via reverse link 0.1? request goes monitor->
        # monitored on the 0.1 link, reply on the 0.15 link) = 0.25.
        assert detector.strategy.prediction() == pytest.approx(0.25)

    def test_detects_crash(self, sim, event_log):
        detector = self.make_pull(event_log)
        wire_monitor(
            sim, event_log, [detector], ConstantDelay(0.1),
            crash_schedule=[(20.5, 40.5)],
        )
        sim.run(until=60.0)
        qos = extract_qos(event_log, end_time=60.0)["pull"]
        assert len(qos.td_samples) == 1
        assert qos.undetected_crashes == 0

    def test_two_messages_per_cycle(self, sim, event_log):
        # The paper's cost claim: pull needs twice the messages of push.
        detector = self.make_pull(event_log)
        system = wire_monitor(sim, event_log, [detector], ConstantDelay(0.1))
        sim.run(until=20.0)
        responder = None
        for layer in system.processes["monitored"].stack.layers:
            if isinstance(layer, PullResponder):
                responder = layer
        assert responder is not None
        assert detector.requests_sent >= 20
        assert responder.requests_answered >= 19
        # Total message count ~ 2 per cycle vs 1 for push.
        total = detector.requests_sent + responder.requests_answered
        assert total >= 2 * detector.requests_sent - 2

    def test_recovers_after_repair(self, sim, event_log):
        detector = self.make_pull(event_log)
        wire_monitor(
            sim, event_log, [detector], ConstantDelay(0.1),
            crash_schedule=[(20.5, 40.5)],
        )
        sim.run(until=60.0)
        assert not detector.suspecting

    def test_invalid_eta(self, event_log):
        strategy = TimeoutStrategy(LastPredictor(), ConstantMargin(0.1))
        with pytest.raises(ValueError):
            PullFailureDetector(strategy, "q", 0.0, event_log)
