"""Service-level observability tests.

Covers the three daemon-side pieces of the observability layer:

* the crash-oracle hardening in the registry (a restore is inferred when
  heartbeats resume after a crash whose restore datagram was lost);
* the incremental ``/metrics`` exporter (dirty-set invalidation, body
  caching, histogram/summary exposition, meta-metrics);
* the traced loopback run: every suspect/trust transition shows up in
  the JSONL trace with a heartbeat sequence number that was actually
  received, ``/qos`` and ``/trace`` are served over real HTTP, and
  ``repro serve-monitor --trace`` survives a subprocess smoke test.
"""

import asyncio
import json
import os
import re
import subprocess
import sys
import threading
import urllib.request

import pytest

from repro.net.message import Datagram
from repro.obs import TraceRecorder, WindowedQosStore
from repro.service import HeartbeatFleet, MonitorDaemon

from tests.test_service import _http, run

pytestmark = pytest.mark.obs

DETECTOR = "Last+CI_med"


def _heartbeat(daemon, seq):
    daemon.dispatch(
        Datagram(
            source="ep",
            destination="monitor",
            kind="heartbeat",
            seq=seq,
            timestamp=daemon.scheduler.now,
        )
    )


def _control(daemon, kind):
    daemon.dispatch(
        Datagram(source="ep", destination="monitor", kind=kind)
    )


# ----------------------------------------------------------------------
# Crash-oracle hardening (socket-less: dispatch() is the test entry)
# ----------------------------------------------------------------------
class TestLostRestoreInference:
    async def _daemon(self, **kwargs):
        daemon = MonitorDaemon(
            port=0, http_port=None, eta=0.5, detector_ids=[DETECTOR], **kwargs
        )
        await daemon.start()
        return daemon

    def test_resumed_heartbeats_infer_the_lost_restore(self):
        async def main():
            daemon = await self._daemon()
            try:
                _heartbeat(daemon, 0)
                _control(daemon, "crash")
                monitor = daemon.registry.get("ep")
                assert monitor.crashed
                # The restore datagram is lost; beating simply resumes.
                # SimCrash numbering advances while silent, so the first
                # post-restore heartbeat carries a strictly higher seq.
                _heartbeat(daemon, 5)
                assert not monitor.crashed
                assert monitor.inferred_restores == 1
                assert daemon.inferred_restores_total() == 1
                assert monitor.crashes == 1
            finally:
                await daemon.stop()

        run(main())

    def test_stale_inflight_heartbeat_does_not_infer(self):
        async def main():
            daemon = await self._daemon()
            try:
                _heartbeat(daemon, 7)
                _control(daemon, "crash")
                monitor = daemon.registry.get("ep")
                # A heartbeat that was in flight when the crash hit has a
                # seq at or below the pre-crash high-water mark: it must
                # not resurrect the endpoint.
                _heartbeat(daemon, 3)
                assert monitor.crashed
                assert monitor.inferred_restores == 0
                _heartbeat(daemon, 8)
                assert not monitor.crashed
                assert monitor.inferred_restores == 1
            finally:
                await daemon.stop()

        run(main())

    def test_seqless_heartbeat_never_infers(self):
        async def main():
            daemon = await self._daemon()
            try:
                _heartbeat(daemon, 5)
                _control(daemon, "crash")
                monitor = daemon.registry.get("ep")
                # A seqless heartbeat is malformed: the detector rejects
                # it downstream, and crucially the inference guard never
                # ran — the endpoint stays crashed.
                with pytest.raises(ValueError):
                    daemon.dispatch(
                        Datagram(
                            source="ep", destination="monitor",
                            kind="heartbeat",
                        )
                    )
                assert monitor.crashed
                assert monitor.inferred_restores == 0
            finally:
                await daemon.stop()

        run(main())

    def test_explicit_restore_is_not_counted_as_inferred(self):
        async def main():
            daemon = await self._daemon()
            try:
                _heartbeat(daemon, 0)
                _control(daemon, "crash")
                _control(daemon, "restore")
                monitor = daemon.registry.get("ep")
                assert not monitor.crashed
                _heartbeat(daemon, 5)
                assert monitor.inferred_restores == 0
                assert monitor.crashes == 1
            finally:
                await daemon.stop()

        run(main())

    def test_inference_reaches_trace_and_history(self):
        async def main():
            tracer = TraceRecorder(ring_capacity=64)
            history = WindowedQosStore(":memory:")
            daemon = await self._daemon(tracer=tracer, history=history)
            try:
                _heartbeat(daemon, 0)
                _control(daemon, "crash")
                _heartbeat(daemon, 5)
                kinds = [e["kind"] for e in tracer.tail(64)]
                assert "receive" in kinds
                assert "crash" in kinds and "restore" in kinds
                # crash + restore rows (detector transitions need timers).
                assert history.stats()["transitions_total"] == 2
            finally:
                await daemon.stop()
            assert tracer.closed and history.closed  # daemon owned them

        run(main())


# ----------------------------------------------------------------------
# Incremental exporter (socket-less)
# ----------------------------------------------------------------------
class TestIncrementalExporterCache:
    async def _daemon(self, **kwargs):
        daemon = MonitorDaemon(
            port=0, http_port=None, eta=0.5, detector_ids=[DETECTOR], **kwargs
        )
        await daemon.start()
        return daemon

    def test_unchanged_scrape_reuses_the_cached_body(self):
        async def main():
            daemon = await self._daemon()
            try:
                daemon.add_endpoint("ep")
                exporter = daemon.exporter
                first = daemon.metrics_text()
                assert exporter.series_renders_total == 1
                assert exporter.body_cache_hits_total == 0
                second = daemon.metrics_text()
                assert exporter.series_renders_total == 1  # nothing redrawn
                assert exporter.body_cache_hits_total == 1
                # Only the volatile head may differ between the scrapes.
                body = first[first.index("# HELP fd_qos_"):]
                assert second.endswith(body)
            finally:
                await daemon.stop()

        run(main())

    def test_transition_redraws_exactly_one_series(self):
        async def main():
            daemon = await self._daemon()
            try:
                daemon.add_endpoint("ep1")
                daemon.add_endpoint("ep2")
                exporter = daemon.exporter
                daemon.metrics_text()
                assert exporter.series_renders_total == 2
                daemon.obs.on_detector_transition(
                    "ep1", DETECTOR, True, daemon.scheduler.now
                )
                daemon.metrics_text()
                assert exporter.series_renders_total == 3
            finally:
                await daemon.stop()

        run(main())

    def test_endpoint_removal_drops_its_series(self):
        async def main():
            daemon = await self._daemon()
            try:
                daemon.add_endpoint("ep1")
                daemon.add_endpoint("ep2")
                assert 'endpoint="ep2"' in daemon.metrics_text()
                daemon.remove_endpoint("ep2")
                text = daemon.metrics_text()
                assert 'endpoint="ep2"' not in text
                assert "fd_service_endpoints 1" in text
            finally:
                await daemon.stop()

        run(main())

    def test_histogram_and_summary_exposition(self):
        async def main():
            daemon = await self._daemon()
            try:
                monitor = daemon.add_endpoint("ep")
                accumulator = monitor.accumulators[DETECTOR]
                t = daemon.scheduler.now
                # One 0.5 s mistake, a crash detected in 0.2 s, then a
                # full recovery so every sample precedes the cached
                # snapshot point (the accumulator's last transition).
                accumulator.observe_suspect(t + 1.0)
                accumulator.observe_trust(t + 1.5)
                accumulator.observe_crash(t + 2.0)
                accumulator.observe_suspect(t + 2.2)
                accumulator.observe_restore(t + 3.0)
                accumulator.observe_trust(t + 3.1)
                daemon.obs.on_detector_transition(
                    "ep", DETECTOR, False, t + 3.1
                )
                text = daemon.metrics_text()
                labels = f'endpoint="ep",detector="{DETECTOR}"'
                assert (
                    f'fd_detection_latency_seconds_bucket{{{labels},le="0.1"}} 0'
                    in text
                )
                assert (
                    f'fd_detection_latency_seconds_bucket{{{labels},le="0.25"}} 1'
                    in text
                )
                assert (
                    f'fd_detection_latency_seconds_bucket{{{labels},le="+Inf"}} 1'
                    in text
                )
                assert f"fd_detection_latency_seconds_count{{{labels}}} 1" in text
                # Wall-clock epochs make exact float strings fragile:
                # parse the quantile back and compare with a tolerance.
                match = re.search(
                    r'fd_mistake_length_seconds\{' + re.escape(labels)
                    + r',quantile="0\.5"\} ([0-9.eE+-]+)',
                    text,
                )
                assert match is not None
                assert abs(float(match.group(1)) - 0.5) < 1e-5
                assert f"fd_mistake_length_seconds_count{{{labels}}} 1" in text
                assert f"fd_qos_mistakes_total{{{labels}}} 1" in text
                assert f"fd_suspecting{{{labels}}} 0" in text
            finally:
                await daemon.stop()

        run(main())

    def test_meta_metrics_and_inferred_restores_in_head(self):
        async def main():
            tracer = TraceRecorder(ring_capacity=64)
            history = WindowedQosStore(":memory:")
            daemon = await self._daemon(tracer=tracer, history=history)
            try:
                _heartbeat(daemon, 0)
                _control(daemon, "crash")
                _heartbeat(daemon, 5)
                text = daemon.metrics_text()
                assert "fd_service_inferred_restores_total 1" in text
                assert "fd_obs_trace_events_total" in text
                assert "fd_obs_history_transitions_total 2" in text
                assert "fd_metrics_scrapes_total 1" in text
                assert "fd_metrics_body_cache_hits_total" in text
            finally:
                await daemon.stop()

        run(main())


# ----------------------------------------------------------------------
# Traced loopback integration
# ----------------------------------------------------------------------
TRACE_ETA = 0.05
TRANSITION_KINDS = {"suspect", "trust", "crash", "restore"}


async def _traced_loopback(trace_path):
    tracer = TraceRecorder(str(trace_path), ring_capacity=8192)
    history = WindowedQosStore(":memory:")
    daemon = MonitorDaemon(
        port=0,
        http_port=0,
        eta=TRACE_ETA,
        detector_ids=[DETECTOR, "Mean+JAC_low"],
        initial_timeout=0.6,
        tracer=tracer,
        history=history,
        snapshot_interval=0.3,
    )
    await daemon.start()
    fleet = HeartbeatFleet(["ep"], daemon.udp_endpoint, eta=TRACE_ETA, seed=3)
    await fleet.start()
    try:
        await asyncio.sleep(1.0)  # warm-up: predictors see normal traffic
        fleet.crash("ep")
        await asyncio.sleep(1.0)  # ~20 missed periods: both detectors fire
        fleet.restore("ep")
        await asyncio.sleep(0.5)

        # /trace over real HTTP.
        host, port = daemon.http_endpoint
        status_code, body = await _http(host, port, "GET", "/trace?limit=50")
        assert status_code == 200
        payload = json.loads(body)
        assert 0 < len(payload["events"]) <= 50
        assert payload["recorder"]["events_total"] > 0

        # /qos over real HTTP agrees in shape and sanity with the live
        # accumulators (numeric equivalence with batch extract_qos is
        # property-tested in tests/test_qos_history.py).
        status_code, body = await _http(host, port, "GET", "/qos?window=30")
        assert status_code == 200
        windows = json.loads(body)
        assert windows["window_seconds"] == 30.0
        entry = windows["endpoints"]["ep"]
        assert set(entry) == {DETECTOR, "Mean+JAC_low"}
        detected = [
            d for d, w in entry.items() if w["detection_samples"] >= 1
        ]
        assert detected, f"no detector produced a T_D sample: {entry}"
        for d in detected:
            assert entry[d]["detection_time_mean"] >= 0.0
            assert 0.0 <= entry[d]["query_accuracy_probability"] <= 1.0

        # Periodic snapshots were persisted while running.
        history_stats = history.stats()
        assert history_stats["snapshots_total"] > 0
        transitions_recorded = history_stats["transitions_total"]
    finally:
        await fleet.stop()
        await daemon.stop()

    assert daemon.scheduler.outstanding == 0
    assert daemon.scheduler.closed
    assert tracer.closed and history.closed
    return transitions_recorded


@pytest.mark.network
class TestTracedLoopbackIntegration:
    def test_every_transition_is_traced_with_a_real_heartbeat_seq(
        self, tmp_path
    ):
        trace_path = tmp_path / "trace.jsonl"
        transitions_recorded = run(_traced_loopback(trace_path), timeout=60.0)

        events = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        assert events, "trace file is empty"
        received = {e["seq"] for e in events if e["kind"] == "receive"}
        suspects = [e for e in events if e["kind"] == "suspect"]
        trusts = [e for e in events if e["kind"] == "trust"]
        assert suspects, "no suspicion was ever traced"
        # Every transition cites a heartbeat seq that really arrived.
        for event in suspects + trusts:
            assert event["endpoint"] == "ep"
            assert event["detector"] in (DETECTOR, "Mean+JAC_low")
            assert event["seq"] in received
        # Trust always resolves an earlier suspicion of the same
        # detector, and its heartbeat is strictly newer.
        for trust in trusts:
            earlier = [
                s for s in suspects
                if s["detector"] == trust["detector"] and s["t"] < trust["t"]
            ]
            assert earlier
            assert trust["seq"] > max(s["seq"] for s in earlier)
        # The history store saw exactly the transitions that were traced:
        # same code path (EndpointMonitor -> hub), same count.
        traced_transitions = sum(
            1 for e in events if e["kind"] in TRANSITION_KINDS
        )
        assert traced_transitions == transitions_recorded


# ----------------------------------------------------------------------
# /trace query filters and /drift over real HTTP
# ----------------------------------------------------------------------
@pytest.mark.network
class TestTraceRouteFilters:
    def test_trace_route_endpoint_and_kind_filters(self):
        async def main():
            tracer = TraceRecorder(None, ring_capacity=256)
            daemon = MonitorDaemon(
                port=0, http_port=0, eta=0.5, detector_ids=[DETECTOR],
                tracer=tracer,
            )
            await daemon.start()
            try:
                for seq in range(3):
                    _heartbeat(daemon, seq)
                daemon.dispatch(
                    Datagram(
                        source="other", destination="monitor",
                        kind="heartbeat", seq=0,
                        timestamp=daemon.scheduler.now,
                    )
                )
                host, port = daemon.http_endpoint

                async def fetch(path):
                    status, body = await _http(host, port, "GET", path)
                    return status, body

                status, body = await fetch("/trace?endpoint=ep")
                assert status == 200
                events = json.loads(body)["events"]
                assert events
                assert {e["endpoint"] for e in events} == {"ep"}

                status, body = await fetch("/trace?kind=receive")
                assert status == 200
                events = json.loads(body)["events"]
                assert {e["kind"] for e in events} == {"receive"}
                assert {e["endpoint"] for e in events} == {"ep", "other"}

                status, body = await fetch(
                    "/trace?endpoint=other&kind=receive&limit=2"
                )
                assert status == 200
                events = json.loads(body)["events"]
                assert len(events) == 1
                assert events[0]["endpoint"] == "other"

                status, body = await fetch("/trace?limit=bogus")
                assert status == 400
            finally:
                await daemon.stop()

        run(main(), timeout=30.0)

    def test_drift_route_serves_when_enabled(self):
        async def main():
            daemon = MonitorDaemon(
                port=0, http_port=0, eta=0.5, detector_ids=[DETECTOR],
                drift_window=8,
            )
            await daemon.start()
            try:
                for seq in range(4):
                    _heartbeat(daemon, seq)
                host, port = daemon.http_endpoint
                status, body = await _http(host, port, "GET", "/drift")
                assert status == 200
                payload = json.loads(body)
                assert payload["window_samples"] == 8
                assert "ep" in payload["endpoints"]
                # /drift evaluates fresh on every request.
                status, body = await _http(host, port, "GET", "/drift")
                assert json.loads(body)["evaluations_total"] > (
                    payload["evaluations_total"]
                )
                # The gauges ride the same exporter head as everything
                # else once an evaluation has happened.
                metrics = daemon.metrics_text()
                assert "fd_service_drift_evaluations_total" in metrics
            finally:
                await daemon.stop()

        run(main(), timeout=30.0)


# ----------------------------------------------------------------------
# `repro serve-monitor --trace` subprocess smoke test
# ----------------------------------------------------------------------
_HTTP_LINE = re.compile(r"monitor: metrics on http://([\d.]+):(\d+)/metrics")


@pytest.mark.network
class TestServeMonitorSmoke:
    def test_serve_monitor_with_tracing_serves_and_exits_cleanly(
        self, tmp_path
    ):
        repo_src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        env = dict(os.environ, PYTHONPATH=repo_src)
        process = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro", "serve-monitor",
                "--port", "0", "--http-port", "0", "--eta", "0.05",
                "--duration", "8", "--trace", "trace.jsonl",
                "--endpoints", "ep1", "--detectors", DETECTOR,
            ],
            cwd=str(tmp_path),
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        lines = []
        found = threading.Event()

        def reader():
            for line in process.stdout:
                lines.append(line)
                if _HTTP_LINE.search(line):
                    found.set()
            found.set()  # EOF: unblock the waiter either way

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        try:
            assert found.wait(timeout=20.0), "no HTTP line in stdout"
            match = next(
                (m for line in lines for m in [_HTTP_LINE.search(line)] if m),
                None,
            )
            assert match is not None, f"stdout was: {lines!r}"
            host, port = match.group(1), int(match.group(2))
            routes_line = match.string
            assert "/qos" in routes_line and "/trace" in routes_line

            def get(path):
                with urllib.request.urlopen(
                    f"http://{host}:{port}{path}", timeout=5.0
                ) as response:
                    return response.status, response.read()

            status, body = get("/healthz")
            assert status == 200 and body == b"ok\n"
            status, body = get("/trace?limit=10")
            assert status == 200
            assert "recorder" in json.loads(body)
            status, body = get("/qos?window=5")
            assert status == 200
            payload = json.loads(body)
            assert "ep1" in payload["endpoints"]

            returncode = process.wait(timeout=30.0)
        except BaseException:
            process.kill()
            process.wait(timeout=10.0)
            raise
        finally:
            thread.join(timeout=5.0)
            stderr = process.stderr.read()
            process.stdout.close()
            process.stderr.close()
        assert returncode == 0, f"stderr: {stderr}"
        assert stderr == ""

        trace_file = tmp_path / "trace.jsonl"
        assert trace_file.exists()
        for line in trace_file.read_text().splitlines():
            json.loads(line)
        assert any("tracing heartbeat spans" in line for line in lines)
