"""The chaos invariant suite, simulator side.

Covers the fault-plan DSL (round-trips, builder, ADD-channel generator),
the decision engine's determinism contract, ChaosLink behaviour on the
discrete-event network, and the end-to-end KV invariant: at full write
concern, a partition/heal script loses zero acked writes.
"""

import json

import pytest

from repro.chaos import (
    ChaosEngine,
    FaultEvent,
    FaultPlan,
    add_channel_plan,
    plan_from_spec,
    run_kv_scenario,
    run_sim_scenario,
)

pytestmark = pytest.mark.chaos


class TestFaultPlan:
    def test_json_round_trip_preserves_everything(self):
        plan = (
            FaultPlan.build(name="rt", seed=7)
            .partition("a", "b", 1.0, 2.0)
            .loss_burst(3.0, 4.0, 0.5, note="storm")
            .duplicate(5.0, 6.0, copies=3)
            .reorder(6.0, 7.0, 0.8, 0.4)
            .corrupt(7.0, 8.0, 0.1)
            .truncate(8.0, 9.0, 0.1)
            .delay_spike(9.0, 10.0, 2.0)
            .clock_skew(10.0, 11.0, 0.5)
            .pause("a", 11.0, 12.0)
            .done()
        )
        got = FaultPlan.from_json(plan.to_json())
        assert got == plan
        assert got.name == "rt" and got.seed == 7
        assert got.horizon == 12.0

    def test_save_load_round_trip(self, tmp_path):
        plan = FaultPlan.build(seed=3).loss_burst(0.0, 1.0, 0.5).done()
        path = tmp_path / "plan.json"
        plan.save(str(path))
        assert FaultPlan.load(str(path)) == plan

    def test_builder_partition_is_bidirectional_by_default(self):
        plan = FaultPlan.build().partition("a", "b", 0.0, 1.0).done()
        pairs = {(e.source, e.destination) for e in plan.events}
        assert pairs == {("a", "b"), ("b", "a")}

    def test_builder_sorts_events_by_start(self):
        plan = (
            FaultPlan.build()
            .delay_spike(5.0, 6.0, 1.0)
            .loss_burst(1.0, 2.0, 0.5)
            .done()
        )
        assert [e.start for e in plan.events] == [1.0, 5.0]

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent("tsunami", 0.0, 1.0)
        with pytest.raises(ValueError):
            FaultEvent("partition", 2.0, 1.0)
        with pytest.raises(ValueError):
            FaultEvent("loss-burst", 0.0, 1.0, rate=1.5)
        with pytest.raises(ValueError):
            FaultEvent("duplicate", 0.0, 1.0, copies=0)

    def test_pause_matches_both_directions(self):
        event = FaultEvent("pause", 0.0, 1.0, source="a")
        assert event.matches("a", "b")
        assert event.matches("b", "a")
        assert not event.matches("b", "c")

    def test_plan_from_spec(self):
        plan = plan_from_spec({
            "name": "spec", "seed": 9,
            "events": [{"kind": "loss-burst", "start": 0, "end": 5,
                        "rate": 0.3}],
        })
        assert plan.name == "spec" and plan.seed == 9
        assert plan.events[0].kind == "loss-burst"

    def test_add_channel_plan_is_deterministic(self):
        one = add_channel_plan(seed=11, stabilization_time=20, horizon=40)
        two = add_channel_plan(seed=11, stabilization_time=20, horizon=40)
        assert one.to_json() == two.to_json()
        assert one != add_channel_plan(
            seed=12, stabilization_time=20, horizon=40
        )

    def test_add_channel_plan_has_adversarial_then_bounded_shape(self):
        plan = add_channel_plan(
            seed=0, stabilization_time=20, horizon=40,
            max_delay_spike=8.0, bounded_delay=0.25, bounded_loss_rate=0.05,
        )
        prefix = [e for e in plan.events if e.start < 20.0]
        suffix = [e for e in plan.events if e.start >= 20.0]
        assert prefix, "adversary must act before stabilization"
        assert {e.kind for e in prefix} <= {"loss-burst", "delay-spike"}
        # After stabilization both delay and loss are bounded.
        assert suffix and all(e.end <= 40.0 for e in suffix)
        for event in suffix:
            if event.kind == "delay-spike":
                assert event.magnitude <= 0.25
            if event.kind == "loss-burst":
                assert event.rate <= 0.05


def _decision_digest(decision):
    return (
        decision.drop,
        decision.copies,
        round(decision.extra_delay, 12),
        round(decision.skew, 12),
        decision.corrupt,
        decision.truncate,
        decision.hold_until,
        decision.faults,
    )


class TestChaosEngine:
    def test_same_seed_same_traffic_same_decisions(self):
        plan = (
            FaultPlan.build(seed=5)
            .loss_burst(0.0, 10.0, 0.4)
            .reorder(0.0, 10.0, 0.5, 0.3)
            .corrupt(0.0, 10.0, 0.2)
            .done()
        )
        traffic = [(0.05 * i, "a", "b") for i in range(100)]
        traffic += [(0.05 * i, "b", "a") for i in range(100)]
        runs = []
        for _ in range(2):
            engine = ChaosEngine(plan)
            runs.append([
                _decision_digest(engine.decide(now, src, dst))
                for now, src, dst in traffic
            ])
        assert runs[0] == runs[1]

    def test_pairs_draw_from_independent_streams(self):
        plan = FaultPlan.build(seed=5).loss_burst(0.0, 10.0, 0.5).done()
        engine = ChaosEngine(plan)
        ab = [engine.decide(0.1 * i, "a", "b").drop for i in range(200)]
        # A fresh engine gives the a->b stream the same draws even when
        # other pairs interleave differently.
        other = ChaosEngine(plan)
        interleaved = []
        for i in range(200):
            other.decide(0.1 * i, "c", "d")
            interleaved.append(other.decide(0.1 * i, "a", "b").drop)
        assert ab == interleaved

    def test_partition_drops_only_inside_window(self):
        plan = FaultPlan.build().partition(
            "a", "b", 2.0, 4.0, bidirectional=False
        ).done()
        engine = ChaosEngine(plan)
        assert not engine.decide(1.9, "a", "b").drop
        assert engine.decide(2.0, "a", "b").drop
        assert engine.decide(3.9, "a", "b").drop
        assert not engine.decide(4.0, "a", "b").drop
        assert not engine.decide(3.0, "b", "a").drop  # unidirectional
        assert engine.stats.dropped == 2

    def test_pause_drops_outbound_and_holds_inbound(self):
        plan = FaultPlan.build().pause("a", 1.0, 3.0).done()
        engine = ChaosEngine(plan, time_origin=10.0)
        outbound = engine.decide(11.5, "a", "b")
        assert outbound.drop and outbound.copies == 0
        inbound = engine.decide(11.5, "b", "a")
        assert not inbound.drop
        assert inbound.hold_until == pytest.approx(13.0)

    def test_payload_fault_decisions(self):
        plan = (
            FaultPlan.build()
            .duplicate(0.0, 1.0, copies=3)
            .delay_spike(1.0, 2.0, 0.75)
            .clock_skew(2.0, 3.0, 0.5)
            .truncate(3.0, 4.0, 1.0)
            .done()
        )
        engine = ChaosEngine(plan)
        assert engine.decide(0.5, "a", "b").copies == 3
        assert engine.decide(1.5, "a", "b").extra_delay == pytest.approx(0.75)
        assert engine.decide(2.5, "a", "b").skew == pytest.approx(0.5)
        decision = engine.decide(3.5, "a", "b")
        assert decision.truncate and not decision.corrupt

    def test_mangle_truncates_and_flips_deterministically(self):
        plan = FaultPlan.build(seed=1).corrupt(0.0, 1.0, 1.0).done()
        raw = b"x" * 64
        one = ChaosEngine(plan)
        two = ChaosEngine(plan)
        d1 = one.decide(0.5, "a", "b")
        d2 = two.decide(0.5, "a", "b")
        assert one.mangle(raw, d1, "a", "b") == two.mangle(raw, d2, "a", "b")
        assert one.mangle(raw, d1, "a", "b") != raw  # flips at least 1 byte

    def test_report_counts_by_kind(self):
        plan = FaultPlan.build().loss_burst(0.0, 1.0, 1.0).done()
        engine = ChaosEngine(plan)
        engine.decide(0.5, "a", "b")
        report = engine.report()
        assert report["stats"]["dropped"] == 1
        assert report["stats"]["by_kind"] == {"loss-burst": 1}


class TestSimScenarios:
    def test_partition_heal_detector_suspects_then_retrusts(self):
        plan = (
            FaultPlan.build(name="part", seed=0)
            .partition("monitored", "monitor", 10.0, 15.0,
                       bidirectional=False)
            .done()
        )
        report = run_sim_scenario(plan, duration=30.0, eta=0.1)
        assert report["survived"]
        assert report["chaos"]["stats"]["dropped"] >= 40
        brief = report["qos"]["Last+CI_med"]
        # The 5s silence is a detector mistake (no crash happened)...
        assert brief["mistakes"] >= 1
        # ...and the detector re-trusts once the partition heals.
        assert report["suspecting_at_end"] == {"Last+CI_med": False}

    def test_scenario_replay_is_deterministic(self):
        plan = add_channel_plan(seed=3, stabilization_time=8, horizon=16)
        one = run_sim_scenario(plan, duration=24.0, eta=0.1)
        two = run_sim_scenario(plan, duration=24.0, eta=0.1)
        assert json.dumps(one, sort_keys=True) == json.dumps(
            two, sort_keys=True
        )

    def test_empty_plan_is_transparent(self):
        empty = FaultPlan(name="empty")
        chaotic = run_sim_scenario(empty, duration=30.0, eta=0.1)
        assert chaotic["chaos"]["stats"]["decisions"] > 0
        assert chaotic["chaos"]["stats"]["dropped"] == 0
        # The filter without faults is bit-transparent: same QoS as a
        # plain run of the same config.
        from repro.experiments.runner import run_qos_experiment
        from repro.kv.sim import qos_brief
        from repro.neko.config import ExperimentConfig

        baseline = run_qos_experiment(
            ExperimentConfig(
                num_cycles=300, mttc=1e9, ttr=0.0, eta=0.1, seed=2005
            ),
            ["Last+CI_med"],
        )
        assert chaotic["qos"]["Last+CI_med"] == qos_brief(
            baseline.qos["Last+CI_med"]
        )

    def test_add_channel_detector_retrusts_after_stabilization(self):
        plan = add_channel_plan(seed=1, stabilization_time=12, horizon=24)
        report = run_sim_scenario(plan, duration=40.0, eta=0.1)
        assert report["survived"]
        assert report["suspecting_at_end"] == {"Last+CI_med": False}


class TestKvChaosInvariants:
    def test_partition_heal_loses_zero_acked_writes_at_full_concern(self):
        # Isolate the initial primary from everyone for a third of the
        # run.  At full write concern every acked SET has reached every
        # backup, so no acked write may ever be lost — the invariant the
        # paper's user-visible QoS layer exists to witness.
        plan = (
            FaultPlan.build(name="kv-part", seed=0)
            .isolate("node0", 20.0, 50.0)
            .done()
        )
        report = run_kv_scenario(plan, duration=90.0, seed=1)
        summary = report["summary"]
        assert report["survived"]
        assert report["chaos"]["stats"]["dropped"] > 0
        assert summary["ops"] > 0 and summary["acked_writes"] > 0
        assert summary["lost_writes"] == 0
        # The partition forced at least one view change.
        assert report["views"] >= 2

    def test_kv_scenario_is_deterministic(self):
        plan = (
            FaultPlan.build(seed=2)
            .loss_burst(5.0, 15.0, 0.5)
            .done()
        )
        one = run_kv_scenario(plan, duration=40.0)
        two = run_kv_scenario(plan, duration=40.0)
        assert json.dumps(one, sort_keys=True) == json.dumps(
            two, sort_keys=True
        )
