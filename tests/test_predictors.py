"""Tests for the five delay predictors (paper Section 3.1)."""

import numpy as np
import pytest

from repro.fd.predictors import (
    ArimaPredictor,
    LastPredictor,
    LpfPredictor,
    MeanPredictor,
    WinMeanPredictor,
)


class TestLast:
    def test_predicts_last_observation(self):
        predictor = LastPredictor()
        predictor.observe(0.1)
        predictor.observe(0.3)
        assert predictor.predict() == 0.3

    def test_initial_prediction(self):
        assert LastPredictor(initial_prediction=0.5).predict() == 0.5

    def test_reset(self):
        predictor = LastPredictor()
        predictor.observe(0.2)
        predictor.reset()
        assert predictor.predict() == 0.0
        assert predictor.observations == 0

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            LastPredictor().observe(float("nan"))


class TestMean:
    def test_predicts_running_mean(self):
        predictor = MeanPredictor()
        for value in [0.1, 0.2, 0.3]:
            predictor.observe(value)
        assert predictor.predict() == pytest.approx(0.2)

    def test_matches_numpy_over_long_series(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0.1, 0.3, 10000)
        predictor = MeanPredictor()
        for value in values:
            predictor.observe(value)
        assert predictor.predict() == pytest.approx(values.mean())

    def test_single_observation(self):
        predictor = MeanPredictor()
        predictor.observe(0.25)
        assert predictor.predict() == 0.25


class TestWinMean:
    def test_equals_mean_while_underfull(self):
        # Paper: "If n < N, WINMEAN(N) = MEAN".
        winmean = WinMeanPredictor(window=10)
        mean = MeanPredictor()
        for value in [0.1, 0.2, 0.4]:
            winmean.observe(value)
            mean.observe(value)
        assert winmean.predict() == pytest.approx(mean.predict())

    def test_windows_out_old_values(self):
        predictor = WinMeanPredictor(window=2)
        for value in [10.0, 0.1, 0.3]:
            predictor.observe(value)
        assert predictor.predict() == pytest.approx(0.2)

    def test_window_of_one_is_last(self):
        predictor = WinMeanPredictor(window=1)
        predictor.observe(0.1)
        predictor.observe(0.9)
        assert predictor.predict() == 0.9

    def test_matches_numpy_sliding_mean(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0.1, 0.3, 500)
        predictor = WinMeanPredictor(window=10)
        for value in values:
            predictor.observe(value)
        assert predictor.predict() == pytest.approx(values[-10:].mean())

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WinMeanPredictor(window=0)

    def test_reset(self):
        predictor = WinMeanPredictor(window=3)
        predictor.observe(0.5)
        predictor.reset()
        predictor.observe(0.1)
        assert predictor.predict() == 0.1


class TestLpf:
    def test_exponential_smoothing_formula(self):
        predictor = LpfPredictor(beta=0.125)
        predictor.observe(0.2)      # seeds the estimate
        predictor.observe(0.4)
        expected = 0.2 + 0.125 * (0.4 - 0.2)
        assert predictor.predict() == pytest.approx(expected)

    def test_beta_one_tracks_last(self):
        predictor = LpfPredictor(beta=1.0)
        predictor.observe(0.1)
        predictor.observe(0.7)
        assert predictor.predict() == pytest.approx(0.7)

    def test_converges_to_constant_input(self):
        predictor = LpfPredictor(beta=0.125)
        for _ in range(200):
            predictor.observe(0.25)
        assert predictor.predict() == pytest.approx(0.25)

    def test_smooths_alternating_input(self):
        predictor = LpfPredictor(beta=0.125)
        for i in range(1000):
            predictor.observe(0.1 if i % 2 == 0 else 0.3)
        assert predictor.predict() == pytest.approx(0.2, abs=0.02)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            LpfPredictor(beta=0.0)
        with pytest.raises(ValueError):
            LpfPredictor(beta=1.5)

    def test_reset(self):
        predictor = LpfPredictor()
        predictor.observe(0.9)
        predictor.reset()
        predictor.observe(0.1)
        assert predictor.predict() == pytest.approx(0.1)


class TestArimaPredictor:
    def test_paper_default_order(self):
        assert ArimaPredictor().order == (2, 1, 1)

    def test_degrades_to_last_before_fit(self):
        predictor = ArimaPredictor(initial_fit=200)
        predictor.observe(0.21)
        assert predictor.predict() == pytest.approx(0.21)

    def test_tracks_level_after_fit(self):
        rng = np.random.default_rng(2)
        predictor = ArimaPredictor(initial_fit=100, refit_interval=200)
        for _ in range(500):
            predictor.observe(0.2 + rng.normal(0, 0.002))
        assert predictor.predict() == pytest.approx(0.2, abs=0.01)

    def test_forecaster_accessible(self):
        predictor = ArimaPredictor()
        assert predictor.forecaster.p == 2

    def test_reset(self):
        predictor = ArimaPredictor(initial_fit=50)
        for _ in range(100):
            predictor.observe(0.2)
        predictor.reset()
        assert predictor.predict() == 0.0
        assert predictor.observations == 0


class TestO1Complexity:
    """The paper notes all methods run in O(1) per observation; guard the
    implementations against accidental O(n) (e.g. recomputing MEAN from a
    stored list)."""

    @pytest.mark.parametrize(
        "factory",
        [LastPredictor, MeanPredictor, lambda: WinMeanPredictor(10),
         lambda: LpfPredictor(0.125)],
    )
    def test_long_run_is_fast(self, factory):
        import time

        predictor = factory()
        start = time.perf_counter()
        for i in range(200_000):
            predictor.observe(0.2)
            predictor.predict()
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0  # generous: O(n^2) would take minutes
