"""Robustness tests: component interplay and hostile inputs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fd.combinations import make_strategy
from repro.net.delay import (
    CompositeDelay,
    ConstantDelay,
    DiurnalModulation,
    ShiftedGammaDelay,
    TelegraphDelay,
    TraceDelay,
)
from repro.net.link import FairLossyLink
from repro.net.loss import BernoulliLoss
from repro.net.message import Datagram
from repro.timeseries.arima import ArimaForecaster


class TestDelayModelInterplay:
    def test_composite_reset_propagates(self, rng):
        telegraph = TelegraphDelay(rng, high=1.0, dwell_low=1, dwell_high=10**9)
        trace = TraceDelay([0.1, 0.2])
        composite = CompositeDelay([telegraph, trace])
        composite.sample(0.0)
        composite.sample(1.0)
        composite.reset()
        assert not telegraph.in_high_state
        assert composite.sample(0.0) in (0.1, 1.1)  # trace restarted at 0.1

    def test_diurnal_over_stateful_base(self, rng):
        base = ShiftedGammaDelay(rng, minimum=0.1, shape=2.0, scale=0.01)
        modulated = DiurnalModulation(base, floor=0.1, amplitude=0.5, period=100.0)
        peak = np.mean([modulated.sample(25.0) for _ in range(4000)])
        trough = np.mean([modulated.sample(75.0) for _ in range(4000)])
        assert peak > trough
        # Both keep the floor.
        assert peak > 0.1 and trough > 0.1

    def test_fifo_with_loss(self, sim, streams):
        received = []
        link = FairLossyLink(
            sim,
            TraceDelay([0.5, 0.1, 0.1, 0.1]),
            BernoulliLoss(streams.get("loss"), 0.5),
            receiver=lambda m: received.append(m.seq),
            fifo=True,
        )
        for seq in range(20):
            link.send(Datagram(source="a", destination="b", kind="t", seq=seq))
        sim.run()
        # Whatever was dropped, the survivors arrive in send order.
        assert received == sorted(received)
        assert link.stats.dropped + link.stats.delivered == 20


class TestStrategyRobustness:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=150,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_all_thirty_strategies_survive_hostile_delays(self, delays):
        """Extreme delay sequences (0 to 100 s, any order) must never
        produce a non-finite or negative time-out in any combination."""
        import math

        from repro.fd.combinations import all_combinations

        for _, predictor, margin in all_combinations():
            strategy = make_strategy(predictor, margin)
            for delay in delays:
                strategy.observe(delay)
                timeout = strategy.timeout()
                assert math.isfinite(timeout)
                assert timeout >= 0.0

    @given(
        st.lists(
            st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
            min_size=250,
            max_size=400,
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_arima_forecaster_never_diverges(self, observations):
        """Even on adversarial inputs the online ARIMA stays finite: a
        non-stationary fit is rejected and the previous model kept."""
        import math

        forecaster = ArimaForecaster(2, 1, 1, refit_interval=100, initial_fit=50)
        for value in observations:
            forecaster.observe(value)
            assert math.isfinite(forecaster.predict())

    def test_strategy_with_zero_delays_everywhere(self):
        strategy = make_strategy("Arima", "JAC_high")
        for _ in range(300):
            strategy.observe(0.0)
        assert strategy.timeout() == pytest.approx(0.0, abs=1e-9)

    def test_strategy_with_alternating_extremes(self):
        strategy = make_strategy("LPF", "CI_high")
        for i in range(500):
            strategy.observe(0.001 if i % 2 == 0 else 10.0)
        timeout = strategy.timeout()
        # The CI margin must cover the enormous dispersion.
        assert timeout > 5.0


class TestSimulatorStress:
    def test_hundred_thousand_events(self, sim):
        counter = [0]

        def tick():
            counter[0] += 1
            if counter[0] < 100_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        assert counter[0] == 100_000
        assert sim.now == pytest.approx(99.999, abs=0.01)

    def test_many_cancelled_events_are_collected(self, sim):
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10_000)]
        for handle in handles:
            handle.cancel()
        fired = []
        sim.schedule(0.5, lambda: fired.append(True))
        sim.run()
        assert fired == [True]
        assert sim.events_processed == 1
