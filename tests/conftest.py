"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.neko.layer import Layer, ProtocolStack
from repro.neko.system import NekoSystem
from repro.nekostat.log import EventLog
from repro.net.delay import ConstantDelay
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator starting at t = 0."""
    return Simulator()


@pytest.fixture
def streams() -> RandomStreams:
    """Deterministic random streams with a fixed seed."""
    return RandomStreams(12345)


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded numpy generator for direct model tests."""
    return np.random.default_rng(987)


@pytest.fixture
def event_log() -> EventLog:
    """An empty event log."""
    return EventLog()


class RecordingLayer(Layer):
    """A top layer that records everything delivered to it."""

    def __init__(self, name: str = "recorder") -> None:
        super().__init__(name=name)
        self.received = []

    def deliver(self, message) -> None:
        self.received.append(message)


def make_two_process_system(
    sim: Simulator,
    monitored_layers,
    monitor_layers,
    *,
    delay: float = 0.0,
):
    """Wire a minimal monitored/monitor pair with constant-delay links."""
    system = NekoSystem(sim)
    system.network.set_link("monitored", "monitor", ConstantDelay(delay))
    system.network.set_link("monitor", "monitored", ConstantDelay(delay))
    monitored = system.create_process("monitored", ProtocolStack(monitored_layers))
    monitor = system.create_process("monitor", ProtocolStack(monitor_layers))
    return system, monitored, monitor
