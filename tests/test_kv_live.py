"""Live-mode KV smoke test: one real-UDP failover, fully observable.

The acceptance scenario of the KV subsystem's live mode: a monitor
daemon with a live detector bank, two `LiveKvNode` replicas heartbeating
it over loopback UDP, a `LiveFailoverController` driving view changes
from suspect/trust transitions, and an `AsyncKvClient` writing through
the failover.  Every state transition must be visible in the `repro.obs`
trace and the `/metrics` exposition.
"""

import asyncio

import pytest

from repro.chaos import ChaosEngine, FaultPlan, attach_daemon
from repro.kv.live import AsyncKvClient, LiveFailoverController, LiveKvNode
from repro.obs import TraceRecorder
from repro.service import MonitorDaemon

pytestmark = [pytest.mark.kv, pytest.mark.network]

NETWORK_TIMEOUT = 90.0


def run(coroutine, timeout=NETWORK_TIMEOUT):
    """Run an async test body with a hard timeout (no plugin needed)."""
    return asyncio.run(asyncio.wait_for(coroutine, timeout=timeout))


async def eventually(predicate, *, timeout=30.0, interval=0.02):
    """Poll ``predicate`` until true or ``timeout`` elapses."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            return False
        await asyncio.sleep(interval)
    return True


class TestLiveFailover:
    def test_real_udp_failover_is_fully_observable(self):
        async def main():
            tracer = TraceRecorder(None, ring_capacity=8192)
            daemon = MonitorDaemon(
                port=0, http_port=None, eta=0.1,
                detector_ids=["Last+CI_med"], initial_timeout=0.8,
                auto_register=True, tracer=tracer,
            )
            await daemon.start()
            names = ["kv-a", "kv-b"]
            nodes = [
                LiveKvNode(
                    name, names, daemon.udp_endpoint, eta=0.1, tracer=tracer
                )
                for name in names
            ]
            client = None
            try:
                for node in nodes:
                    await node.start()
                for node in nodes:
                    for other in nodes:
                        if other is not node:
                            node.add_peer(other.name, other.udp_endpoint)
                controller = LiveFailoverController(
                    daemon, names, detector_id="Last+CI_med"
                )
                assert daemon.kv_controller is controller
                client = AsyncKvClient(
                    "c1",
                    {node.name: node.udp_endpoint for node in nodes},
                    names,
                    op_timeout=0.4,
                    max_retries=30,
                )
                await client.start()

                # Both replicas heartbeat the daemon, which learns their
                # service addresses from the inbound datagrams.
                assert await eventually(
                    lambda: all(daemon.peer_addr(n) is not None for n in names)
                )

                # A write against the initial view lands on kv-a.
                before = await client.set("k", "before-crash")
                assert before == (0, 1)

                # Crash the primary: the detector suspects it and the
                # controller installs a view naming kv-b.
                nodes[0].crash()
                assert await eventually(
                    lambda: controller.view.primary == "kv-b"
                )
                assert controller.failovers_total >= 1

                # Writes and reads continue against the new primary; the
                # new-epoch version dominates the pre-crash one.
                after = await client.set("k", "after-failover")
                assert after > before and after[0] >= 1
                value, version, stale = await client.get("k")
                assert value == "after-failover"
                assert version == after and not stale

                # Every transition is visible in the trace...
                kinds = {event["kind"] for event in tracer.tail(8192)}
                assert {"crash", "suspect", "kv-demote", "kv-promote",
                        "kv-view"} <= kinds
                # ...including send spans from the KV replicas' own
                # heartbeat emitters (the shared tracer is threaded
                # through LiveKvNode), wall-time and seq on every one.
                kv_sends = [
                    event for event in tracer.tail(8192, kind="send")
                    if event["endpoint"] in names
                ]
                assert kv_sends
                assert all(
                    "seq" in event and "t" in event for event in kv_sends
                )
                # ...and on /metrics.
                metrics = daemon.exporter.render()
                assert "fd_kv_epoch" in metrics
                assert "fd_kv_failovers_total" in metrics
                assert 'fd_kv_primary{endpoint="kv-b"} 1' in metrics
                assert "fd_service_sent_datagrams_total" in metrics
                assert controller.views_broadcast > 0
            finally:
                if client is not None:
                    await client.stop()
                for node in nodes:
                    await node.stop()
                await daemon.stop()
                tracer.close()

        run(main())


class TestLivePartitionHeal:
    def test_partition_demotes_and_heal_readopts_primary(self):
        """A healed primary is re-adopted and clients converge.

        The chaos shim on the daemon intake drops kv-a's heartbeats for
        a 4s window — a pure network partition, the node itself stays
        healthy.  The controller must demote to kv-b while kv-a is
        unreachable, then re-promote kv-a (priority order) once its
        heartbeats flow again, and a client must see its writes land on
        whichever primary the view names at the time.
        """
        async def main():
            plan = (
                FaultPlan.build(name="kv-heal", seed=0)
                .partition("kv-a", "*", 0.0, 4.0, bidirectional=False)
                .done()
            )
            engine = ChaosEngine(plan)
            daemon = MonitorDaemon(
                port=0, http_port=None, eta=0.1,
                detector_ids=["Last+CI_med"], initial_timeout=0.8,
                auto_register=True,
            )
            intake = attach_daemon(engine, daemon)
            await daemon.start()
            # Keep the partition dormant until the steady state exists.
            intake.arm(float("inf"))
            names = ["kv-a", "kv-b"]
            nodes = [
                LiveKvNode(name, names, daemon.udp_endpoint, eta=0.1)
                for name in names
            ]
            client = None
            try:
                for node in nodes:
                    await node.start()
                for node in nodes:
                    for other in nodes:
                        if other is not node:
                            node.add_peer(other.name, other.udp_endpoint)
                controller = LiveFailoverController(
                    daemon, names, detector_id="Last+CI_med"
                )
                client = AsyncKvClient(
                    "c1",
                    {node.name: node.udp_endpoint for node in nodes},
                    names,
                    op_timeout=0.4,
                    max_retries=30,
                )
                await client.start()

                assert await eventually(
                    lambda: all(daemon.peer_addr(n) is not None for n in names)
                )
                before = await client.set("k", "pre-partition")
                assert controller.view.primary == "kv-a"

                # Anchor the plan: the 4s partition starts *now*.
                intake.arm(daemon.scheduler.now)
                assert await eventually(
                    lambda: controller.view.primary == "kv-b", timeout=15.0
                ), "partitioned primary must be demoted"
                assert controller.failovers_total >= 1
                during = await client.set("k", "during-partition")
                assert during > before

                # Heal: kv-a's heartbeats flow again, the detector
                # re-trusts, and priority order re-promotes kv-a.
                assert await eventually(
                    lambda: controller.view.primary == "kv-a", timeout=20.0
                ), "healed primary must be re-adopted"
                assert controller.failovers_total >= 2
                assert engine.stats.dropped > 0

                # The client converges on the restored primary: a fresh
                # write lands there and dominates every earlier version.
                after = await client.set("k", "post-heal")
                assert after > during
                value, version, stale = await client.get("k")
                assert value == "post-heal"
                assert version == after and not stale
            finally:
                if client is not None:
                    await client.stop()
                for node in nodes:
                    await node.stop()
                await daemon.stop()

        run(main())
