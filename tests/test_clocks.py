"""Tests for the clock substrate (local clocks and NTP synchronisation)."""

import pytest

from repro.clocks.clock import DriftingClock, PerfectClock
from repro.clocks.ntp import DisciplinedClock, NtpSample, NtpSynchronizer
from repro.sim.engine import Simulator


class TestPerfectClock:
    def test_reads_global_time(self, sim):
        clock = PerfectClock(sim)
        sim.schedule(3.5, lambda: None)
        sim.run()
        assert clock.now() == 3.5

    def test_roundtrip_identity(self, sim):
        clock = PerfectClock(sim)
        assert clock.global_from_local(clock.local_from_global(7.0)) == 7.0


class TestDriftingClock:
    def test_constant_offset(self, sim):
        clock = DriftingClock(sim, offset=0.25)
        assert clock.local_from_global(10.0) == 10.25

    def test_drift_accumulates(self, sim):
        clock = DriftingClock(sim, drift=1e-3)
        assert clock.local_from_global(1000.0) == pytest.approx(1001.0)

    def test_offset_and_drift_combined(self, sim):
        clock = DriftingClock(sim, offset=0.5, drift=1e-4)
        assert clock.local_from_global(100.0) == pytest.approx(100.51)

    def test_inverse_mapping(self, sim):
        clock = DriftingClock(sim, offset=0.3, drift=2e-4)
        t = 1234.5
        assert clock.global_from_local(clock.local_from_global(t)) == pytest.approx(t)

    def test_adjust_steps_offset(self, sim):
        clock = DriftingClock(sim, offset=0.5)
        clock.adjust(-0.5)
        assert clock.offset == 0.0
        assert clock.local_from_global(10.0) == 10.0

    def test_extreme_negative_drift_rejected(self, sim):
        with pytest.raises(ValueError):
            DriftingClock(sim, drift=-1.0)

    def test_now_tracks_simulator(self, sim):
        clock = DriftingClock(sim, offset=1.0)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert clock.now() == pytest.approx(3.0)


class TestNtpSample:
    def test_offset_estimation_symmetric_path(self):
        # Client 0.5 s behind server, symmetric 0.1 s delays.
        sample = NtpSample(t0=10.0, t1=10.6, t2=10.6, t3=10.2)
        assert sample.offset == pytest.approx(0.5)

    def test_round_trip_excludes_server_time(self):
        sample = NtpSample(t0=10.0, t1=10.6, t2=10.7, t3=10.3)
        assert sample.round_trip == pytest.approx(0.2)

    def test_asymmetry_biases_offset(self):
        # True offset 0: out 0.3 s, back 0.1 s => estimate (0.3-0.1)/2 = 0.1.
        sample = NtpSample(t0=0.0, t1=0.3, t2=0.3, t3=0.4)
        assert sample.offset == pytest.approx(0.1)


class TestNtpSynchronizer:
    def test_corrects_constant_offset(self, sim):
        clock = DriftingClock(sim, offset=0.5)
        sync = NtpSynchronizer(
            sim,
            clock,
            server_now=lambda t: t,
            delay_out=lambda: 0.05,
            delay_back=lambda: 0.05,
            poll_interval=10.0,
        )
        sync.start()
        sim.run(until=1.0)
        assert abs(clock.offset) < 1e-9

    def test_repeated_rounds_keep_drifting_clock_bounded(self, sim):
        clock = DriftingClock(sim, offset=0.2, drift=1e-5)
        sync = NtpSynchronizer(
            sim,
            clock,
            server_now=lambda t: t,
            delay_out=lambda: 0.05,
            delay_back=lambda: 0.05,
            poll_interval=64.0,
        )
        sync.start()
        sim.run(until=1000.0)
        # Residual error bounded by drift * poll_interval plus estimator noise.
        error = clock.local_from_global(sim.now) - sim.now
        assert abs(error) < 5e-3

    def test_min_delay_filter_prefers_fast_sample(self, sim):
        clock = DriftingClock(sim, offset=0.5)
        delays = iter([0.5, 0.05, 0.3, 0.4])
        sync = NtpSynchronizer(
            sim,
            clock,
            server_now=lambda t: t,
            delay_out=lambda: next(delays),
            delay_back=lambda: 0.05,
            poll_interval=10.0,
            samples_per_round=4,
        )
        sync.start()
        sim.run(until=1.0)
        # Symmetric fastest exchange has zero bias, so offset fully corrected.
        assert abs(clock.offset) < 1e-9

    def test_history_records_samples(self, sim):
        clock = DriftingClock(sim, offset=0.0)
        sync = NtpSynchronizer(
            sim, clock, lambda t: t, lambda: 0.01, lambda: 0.01,
            poll_interval=5.0, samples_per_round=2,
        )
        sync.start()
        sim.run(until=11.0)
        assert len(sync.history) == 6  # 3 rounds x 2 samples
        assert len(sync.corrections) == 3

    def test_stop_halts_polling(self, sim):
        clock = DriftingClock(sim, offset=0.0)
        sync = NtpSynchronizer(
            sim, clock, lambda t: t, lambda: 0.01, lambda: 0.01, poll_interval=5.0
        )
        sync.start()
        sim.schedule(6.0, sync.stop)
        sim.run(until=100.0)
        assert len(sync.corrections) == 2

    def test_asymmetric_path_leaves_residual(self, sim):
        clock = DriftingClock(sim, offset=0.0)
        sync = NtpSynchronizer(
            sim, clock, lambda t: t, lambda: 0.3, lambda: 0.1, poll_interval=10.0,
            samples_per_round=1,
        )
        sync.start()
        sim.run(until=1.0)
        # Residual = (out - back) / 2 = 0.1 s injected into the clock.
        assert clock.offset == pytest.approx(0.1)

    def test_invalid_samples_per_round(self, sim):
        clock = DriftingClock(sim, offset=0.0)
        with pytest.raises(ValueError):
            NtpSynchronizer(
                sim, clock, lambda t: t, lambda: 0.01, lambda: 0.01,
                samples_per_round=0,
            )

    def test_negative_delay_rejected(self, sim):
        clock = DriftingClock(sim, offset=0.0)
        sync = NtpSynchronizer(
            sim, clock, lambda t: t, lambda: -0.1, lambda: 0.01
        )
        with pytest.raises(ValueError):
            sync.sample_once()


class TestDisciplinedClock:
    def test_bundles_clock_and_synchronizer(self, sim):
        clock = DisciplinedClock(
            sim, offset=0.4, drift=0.0,
            delay_out=lambda: 0.02, delay_back=lambda: 0.02,
            poll_interval=10.0,
        )
        clock.start_sync()
        sim.run(until=1.0)
        assert abs(clock.offset) < 1e-9
        clock.stop_sync()
