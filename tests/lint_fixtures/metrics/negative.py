"""Negative fixture: vectorized sample math, one boundary conversion.

The compliant shape: recurrence times via ``np.diff``, totals via
``np.sum``, and a single ``tolist()`` where python lists are required.
Scalar narrowing of a *reduction* is fine — it converts one value, not
one value per sample.
"""

import numpy as np


def pack_samples(suspicion_starts, suspicion_ends):
    tmr_samples = np.diff(suspicion_starts).tolist()
    suspected_up_time = float(np.sum(suspicion_ends - suspicion_starts))
    pairs = list(zip(suspicion_starts.tolist(), suspicion_ends.tolist()))
    return tmr_samples, suspected_up_time, pairs


def unrelated_loop(events):
    # Loops over non-sample iterables may narrow freely.
    return [float(event.value) for event in events]
