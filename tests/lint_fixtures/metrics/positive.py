"""Positive fixture: per-element float() narrowing of sample arrays.

Every construct below re-materialises a NumPy sample array as python
floats one element at a time — the O(n)-objects regression FDL007 exists
to catch on the batch metrics path.
"""


def pack_samples(suspicion_starts, suspicion_ends):
    tmr_samples = []
    for start in suspicion_starts:
        tmr_samples.append(float(start))
    durations = [float(end) for end in suspicion_ends]
    total = 0.0
    for duration in durations:
        total += duration
    return tmr_samples, durations, total


def pairwise(mistake_durations):
    return {index: float(value) for index, value in enumerate(mistake_durations)}
