"""Positive fixture: shared mutable state on a detector class."""


class LeakyPredictor:
    history = []  # shared by every instance in the 30-way bank
    options = {"window": 8}

    def observe(self, delay):
        self.history.append(delay)


def collect(sample, sink=[]):
    sink.append(sample)
    return sink


def tally(key, counts={}):
    counts[key] = counts.get(key, 0) + 1
    return counts
