"""Negative fixture: per-instance state, immutable class constants."""


class TidyPredictor:
    WINDOW = 8
    KINDS = ("low", "med", "high")
    __slots__ = ("history",)

    def __init__(self):
        self.history = []

    def observe(self, delay):
        self.history.append(delay)


def collect(sample, sink=None):
    if sink is None:
        sink = []
    sink.append(sample)
    return sink
