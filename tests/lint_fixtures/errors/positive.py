"""Positive fixture: broad excepts that silently swallow the error."""


def swallow_bare(work):
    try:
        work()
    except:  # noqa: E722 - the rule under test
        pass


def swallow_exception(work):
    try:
        work()
    except Exception:
        return None


def swallow_with_binding(work, log):
    try:
        work()
    except Exception as exc:
        # Logging alone is not accounting: nothing a dashboard can see.
        log.debug("ignored %r", exc)


def swallow_base_exception_in_tuple(work):
    try:
        work()
    except (ValueError, BaseException):
        return False
