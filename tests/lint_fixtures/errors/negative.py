"""Negative fixture: every broad except accounts for the error."""

import sqlite3


class TypedDecodeError(ValueError):
    pass


def funnel_into_typed_error(decode, raw):
    try:
        return decode(raw)
    except Exception as exc:
        # Re-raising as a typed error keeps the failure observable.
        raise TypedDecodeError(f"undecodable: {exc!r}") from exc


class CountingSupervisor:
    def __init__(self):
        self.restart_failures_total = 0
        self.component_restarts = {}

    def attempt(self, restart):
        try:
            restart()
        except Exception:
            self.restart_failures_total += 1

    def tick(self, component, work):
        try:
            work()
        except Exception:
            self._count_restart(component)

    def _count_restart(self, name):
        self.component_restarts[name] = self.component_restarts.get(name, 0) + 1


def tolerate_specific(connection):
    try:
        connection.commit()
    except sqlite3.Error:
        # Specific exception types name what is tolerated: not flagged.
        return False
    return True


def reraise_bare(work):
    try:
        work()
    except:  # noqa: E722 - re-raises, so the rule stays silent
        raise
