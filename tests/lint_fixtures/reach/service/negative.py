"""Coroutines that keep blocking work off the loop (FDL011-clean)."""

import asyncio


def persist(conn, rows):
    for row in rows:
        conn.execute("INSERT INTO t VALUES (?)", row)
    conn.commit()


# fdlint: disable=async-blocking-reach (fixture: stands in for a measured sub-ms buffered commit accepted as an on-loop choke point)
def bounded_flush(conn):
    conn.commit()


async def offloaded(conn, queue):
    loop = asyncio.get_running_loop()
    while True:
        rows = await queue.get()
        # Sanctioned: the blocking helper runs on the executor.
        await loop.run_in_executor(None, lambda: persist(conn, rows))


async def choke_point(conn):
    # The pragma on the primitive marks an accepted choke point, so the
    # chain does not propagate to this caller.
    bounded_flush(conn)
