"""Coroutines reaching blocking I/O through sync helpers (FDL011)."""


def persist(conn, rows):
    # Blocking primitive one frame below the loop: sqlite execute.
    for row in rows:
        conn.execute("INSERT INTO t VALUES (?)", row)
    conn.commit()


def checkpoint(conn, rows):
    # A second sync hop: still reachable from the coroutine below.
    persist(conn, rows)


async def flush_loop(conn, queue):
    while True:
        rows = await queue.get()
        checkpoint(conn, rows)  # blocks the event loop two frames down
