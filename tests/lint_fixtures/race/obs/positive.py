"""Lock-guarded writes with bare reads elsewhere (FDL012)."""

import threading


class SharedWindow:
    def __init__(self):
        self._lock = threading.Lock()
        self._samples = []
        self._high_water = 0

    def record(self, value):
        with self._lock:
            self._samples.append(value)
            self._high_water = max(self._high_water, value)

    def snapshot(self):
        # Bare read of lock-guarded state: torn list iteration.
        return list(self._samples)

    def peak(self):
        return self._high_water  # bare read of a guarded scalar
