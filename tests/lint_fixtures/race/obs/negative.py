"""Lock discipline done right on the read side (FDL012-clean)."""

import threading


class GuardedWindow:
    def __init__(self):
        self._lock = threading.Lock()
        self._samples = []
        self._high_water = 0
        # __init__ reads are pre-publication: no concurrent reader yet.
        assert self._high_water == 0

    def record(self, value):
        with self._lock:
            self._samples.append(value)
            self._high_water = max(self._high_water, value)

    def snapshot(self):
        with self._lock:
            return list(self._samples)

    def peak(self):
        with self._lock:
            return self._drain()

    def _drain(self):
        # Lock-held-only helper: every call site above holds the lock,
        # so its bare reads are guarded by the callers.
        result = self._high_water
        self._samples.clear()
        return result
