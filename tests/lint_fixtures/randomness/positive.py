"""Positive fixture: ambient module-level randomness."""

import random

import numpy as np


def ambient_uniform():
    return random.random()


def ambient_choice(items):
    return random.choice(items)


def ambient_numpy_draw():
    return np.random.normal(0.0, 1.0)


def unseeded_generator():
    return np.random.default_rng()
