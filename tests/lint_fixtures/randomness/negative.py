"""Negative fixture: injected, seeded randomness only."""

import numpy as np


def injected_draw(rng: np.random.Generator) -> float:
    return rng.normal(0.0, 1.0)


def derived_seed(seed: int, index: int) -> np.random.SeedSequence:
    return np.random.SeedSequence(entropy=seed, spawn_key=(index,))


def explicit_generator(seq: np.random.SeedSequence) -> np.random.Generator:
    return np.random.Generator(np.random.PCG64(seq))
