"""Negative fixture: async code that stays off the blocking paths."""

import asyncio


async def respond(writer, payload):
    writer.write(payload)  # asyncio stream write: buffered, non-blocking
    await writer.drain()


async def persist_offloaded(loop, connection, rows):
    await loop.run_in_executor(
        None, lambda: connection.executemany("INSERT INTO t VALUES (?)", rows)
    )


async def awaited_driver(store):
    await store.execute("SELECT 1")  # aiosqlite-style coroutine


def sync_helper(connection):
    # Synchronous code outside loop-resident modules is out of scope.
    connection.commit()


async def gather(tasks):
    return await asyncio.gather(*tasks)
