"""Positive fixture: blocking calls lexically inside async bodies."""


async def persist(connection, rows):
    connection.executemany("INSERT INTO t VALUES (?)", rows)
    connection.commit()


async def read_datagram(sock):
    return sock.recv(4096)


async def journal(path, line):
    handle = open(path, "a")
    handle.write(line)
    handle.flush()
