"""Negative fixture: every post-construction mutation holds the lock."""

import threading


class DisciplinedRecorder:
    def __init__(self):
        self._lock = threading.Lock()
        self._events = []
        self.dropped = 0  # only ever mutated under the lock below

    def record(self, event):
        with self._lock:
            self._events.append(event)

    def drop_oldest(self):
        with self._lock:
            self._events.pop(0)
            self.dropped += 1

    def snapshot(self):
        with self._lock:
            return list(self._events)


class LockFreeCounter:
    """No lock-guarded blocks at all: the rule stays silent."""

    def __init__(self):
        self.count = 0

    def bump(self):
        self.count += 1
