"""Positive fixture: an attribute guarded in one method, bare in another."""

import threading


class RacyRecorder:
    def __init__(self):
        self._lock = threading.Lock()
        self._events = []
        self.dropped = 0

    def record(self, event):
        with self._lock:
            self._events.append(event)

    def drop_oldest(self):
        # Mutates self._events without the lock the class established.
        self._events.pop(0)
        self.dropped += 1

    def drain(self):
        with self._lock:
            drained = list(self._events)
            self._events.clear()
        return drained
