"""Negative fixture: ordered comparisons and whitelisted sentinels."""

import math


def expired(now, deadline):
    return now >= deadline


def unset(timeout):
    return timeout == 0.0


def never(deadline):
    return deadline == float("inf")


def cleared(last_time):
    return last_time == float("-inf")


def close_enough(elapsed, duration):
    return math.isclose(elapsed, duration)


def not_time(name, kind):
    return name == kind
