"""Positive fixture: exact equality between float time values."""


def same_instant(arrival_time, deadline):
    return arrival_time == deadline


def tick_matches(now, when):
    return now == when


def interval_unchanged(timeout, previous_delay):
    if timeout != previous_delay:
        return True
    return False
