"""Fixture span emitter: one contracted kind, one unknown to everyone."""


def trace_decisions(tracer, now, endpoint):
    tracer.emit(now, "known-kind", endpoint)
    tracer.emit(now, "mystery-kind", endpoint)
