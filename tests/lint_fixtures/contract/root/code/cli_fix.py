"""Fixture CLI: one documented subcommand, one the docs never mention."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser(prog="repro")
    parser.add_argument("--verbose", action="store_true")
    subparsers = parser.add_subparsers(dest="command")
    demo = subparsers.add_parser("demo")
    demo.add_argument("--known", type=int)
    hidden = subparsers.add_parser("hidden")
    hidden.add_argument("--flag")
    return parser
