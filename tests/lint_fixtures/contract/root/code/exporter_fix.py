"""Fixture metric renderer: one documented series, one drifted."""


def render_metrics(value):
    lines = []
    lines.append(f"fd_good_total {value}")
    lines.append(f"fd_undocumented_thing_total {value}")
    return "\n".join(lines)
