"""Fixture span analyzer: handles exactly one kind."""


def handle(kind):
    if kind == "known-kind":
        return 1
    return 0
