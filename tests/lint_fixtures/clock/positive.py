"""Positive fixture: every statement below violates clock-discipline."""

import asyncio
import time
from datetime import datetime
from time import perf_counter as pc


def naive_timestamp():
    return time.time()


def naive_pause():
    time.sleep(0.5)


def naive_monotonic():
    return time.monotonic()


def naive_datetime():
    return datetime.now()


def aliased_perf_counter():
    return pc()


async def naive_async_pause():
    await asyncio.sleep(1.0)
