"""Negative fixture: clean code that *talks about* time.time().

Scheduler time is anchored to the UNIX epoch (``time.time()`` at
construction) — prose like this sentence, or the comment below, must
never be flagged: the rule reads the AST, not the text.
"""


def scheduled_timestamp(scheduler):
    # A docstring or comment mentioning time.sleep(5) is not a call.
    return scheduler.now


def schedule_pause(scheduler, callback, delay):
    """Spend time via schedule(), never time.sleep()."""
    return scheduler.schedule(delay, callback)


def stringly(note="datetime.now() is prose here"):
    return note
