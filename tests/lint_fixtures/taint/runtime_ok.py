"""A live-runtime module the fixture config whitelists for taint."""

import time


def runtime_now() -> float:
    # fdlint: disable=clock-discipline (fixture: stands in for a whitelisted live-runtime clock bridge)
    return time.time()
