"""Deterministic-tier code laundering wall-clock/randomness via helpers."""

from helpers import pick, pure_delay, stamp


def run_simulation(trace):
    started = stamp()  # tainted: stamp -> wall_clock_now -> time.time
    for event in trace:
        event.at = started


def shuffle_schedule(events):
    return pick(events)  # tainted: ambient random.choice
