"""Deterministic-tier code that only uses pure/whitelisted helpers."""

from helpers import pure_delay
from runtime_ok import runtime_now


def run_simulation(trace, scheduler):
    # Time flows from the injected scheduler, never the wall clock.
    started = scheduler.now
    for event in trace:
        event.at = started + pure_delay(0.1, 0.01)


def runtime_bridge():
    # runtime_ok.py is whitelisted by the test's LintConfig: its
    # primitives do not taint.
    return runtime_now()
