"""Helpers whose clock/randomness use should taint their callers."""

import random
import time


def wall_clock_now() -> float:
    # FDL001 flags this line directly; FDL010 is about *callers*.
    return time.time()


def stamp() -> float:
    # One hop of indirection: still tainted, transitively.
    return wall_clock_now()


def pick(options):
    # Ambient stdlib randomness: seed-taints every caller.
    return random.choice(options)


def pure_delay(base: float, jitter: float) -> float:
    # No primitives anywhere below: never taints.
    return base + jitter
