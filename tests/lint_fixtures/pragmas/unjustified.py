"""Fixture: a pragma with no written reason suppresses nothing."""

import time


def sneaky_timestamp():
    return time.time()  # fdlint: disable=clock-discipline
