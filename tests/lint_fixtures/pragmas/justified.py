"""Fixture: a violation silenced by a *justified* pragma."""

import time


def measured_overhead():
    # fdlint: disable=clock-discipline (fixture: self-measurement needs the wall clock)
    return time.perf_counter()
