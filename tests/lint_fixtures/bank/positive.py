"""Positive fixture: inline detector-bank fan-out (must flag FDL008)."""

from repro.fd.combinations import combination_ids, make_strategy
from repro.fd.detector import PushFailureDetector


def build_inline_bank(monitored, eta, event_log):
    bank = {}
    for detector_id in combination_ids():
        predictor, margin = detector_id.split("+")
        bank[detector_id] = PushFailureDetector(
            make_strategy(predictor, margin),
            monitored,
            eta,
            event_log,
            detector_id=detector_id,
        )
    return bank


def build_inline_bank_comprehension(monitored, eta, event_log, detectors):
    return {
        detector_id: PushFailureDetector(
            make_strategy(*detector_id.split("+")),
            monitored,
            eta,
            event_log,
            detector_id=detector_id,
        )
        for detector_id in detectors
    }
