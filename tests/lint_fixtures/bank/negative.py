"""Negative fixture: legal detector construction (FDL008 stays silent).

A single detector built directly (the tuning/sweep idiom), a loop over
non-combination sources (the consensus harness's loop over peers), and
the bank helper itself are all fine.
"""

from repro.fd.bank import make_detector_bank
from repro.fd.combinations import make_strategy
from repro.fd.detector import PushFailureDetector


def build_single_detector(monitored, eta, event_log):
    return PushFailureDetector(
        make_strategy("Last", "CI_med"),
        monitored,
        eta,
        event_log,
        detector_id="tuning",
    )


def build_peer_detectors(peers, eta, event_log):
    detectors = {}
    for peer in peers:
        detectors[peer] = PushFailureDetector(
            make_strategy("Last", "CI_med"),
            peer,
            eta,
            event_log,
            detector_id=f"self->{peer}",
        )
    return detectors


def build_banks_per_node(nodes, eta, logs):
    return {
        node: make_detector_bank(node, eta, logs[node], ["Last+CI_med"])
        for node in nodes
    }
