"""Tests for the KV sweep layer (`repro.experiments.kv_sweep`) and CLI."""

import json

import pytest

from repro.cli import main
from repro.experiments.kv_sweep import (
    HEATMAP_METRICS,
    KvSweepCell,
    format_kv_sweep,
    format_leaderboard,
    leaderboard,
    render_heatmap,
    run_kv_sweep,
    sweep_to_dict,
)
from repro.kv.sim import KvSimConfig

pytestmark = pytest.mark.kv

BASE = KvSimConfig(duration=20.0, seed=4, clients=1)


def _cell(eta=0.1, detector_id="Last+CI_med", **overrides):
    fields = dict(
        eta=eta, detector_id=detector_id, ops=100, failed_fraction=0.01,
        stale_reads=1, lost_writes=0, unavailability_s=2.0, max_window_s=1.5,
        latency_p95_s=0.4, failovers=3, promotion_delay_s=0.2,
        td_mean_s=0.21, mistake_rate=0.001,
    )
    fields.update(overrides)
    return KvSweepCell(**fields)


class TestRunKvSweep:
    def test_grid_is_row_major_by_eta(self):
        cells = run_kv_sweep(
            BASE, [0.2, 0.5], ["Last+CI_med", "Last+JAC_med"], workers=1
        )
        assert [(c.eta, c.detector_id) for c in cells] == [
            (0.2, "Last+CI_med"),
            (0.2, "Last+JAC_med"),
            (0.5, "Last+CI_med"),
            (0.5, "Last+JAC_med"),
        ]
        for cell in cells:
            assert cell.ops > 0
            assert 0.0 <= cell.failed_fraction <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_kv_sweep(BASE, [], ["Last+CI_med"])
        with pytest.raises(ValueError):
            run_kv_sweep(BASE, [0.1], [])
        with pytest.raises(ValueError):
            run_kv_sweep(BASE, [-1.0], ["Last+CI_med"])
        with pytest.raises(ValueError):
            run_kv_sweep(BASE, [0.1], ["NotA+Detector"])

    def test_cells_are_deterministic(self):
        first = run_kv_sweep(BASE, [0.2], ["Last+CI_med"])
        second = run_kv_sweep(BASE, [0.2], ["Last+CI_med"])
        assert [c.to_dict() for c in first] == [c.to_dict() for c in second]


class TestRendering:
    def test_table_has_one_row_per_cell(self):
        cells = [_cell(eta=0.1), _cell(eta=0.5, promotion_delay_s=None,
                                       td_mean_s=None)]
        table = format_kv_sweep(cells)
        lines = table.splitlines()
        assert len(lines) == 2 + len(cells)
        assert "Last+CI_med" in table

    def test_heatmap_covers_grid_and_scales_shades(self):
        cells = [
            _cell(eta=0.1, unavailability_s=10.0),
            _cell(eta=0.5, unavailability_s=0.0),
            _cell(eta=0.1, detector_id="Arima+CI_low", unavailability_s=5.0),
            _cell(eta=0.5, detector_id="Arima+CI_low", unavailability_s=10.0),
        ]
        art = render_heatmap(cells, "unavailability_s")
        lines = art.splitlines()
        assert lines[0].startswith("heatmap: unavailability_s")
        # One row per detector plus header and eta axis.
        assert len(lines) == 2 + 2
        row = next(line for line in lines if line.startswith("Last+CI_med"))
        shades = row.split("|")[1]
        assert shades[0] == "@" and shades[1] == " "  # max and zero

    def test_heatmap_rejects_unknown_metric(self):
        with pytest.raises(ValueError):
            render_heatmap([_cell()], "no_such_metric")
        assert "unavailability_s" in HEATMAP_METRICS

    def test_leaderboard_ranks_by_unavailability_first(self):
        cells = [
            _cell(detector_id="Bad", unavailability_s=9.0),
            _cell(detector_id="Good", unavailability_s=1.0),
            _cell(detector_id="Good", eta=0.5, unavailability_s=1.0),
        ]
        rows = leaderboard(cells)
        assert [row["detector_id"] for row in rows] == ["Good", "Bad"]
        assert rows[0]["cells"] == 2
        assert rows[0]["unavailability_s"] == 2.0
        text = format_leaderboard(rows)
        assert text.splitlines()[2].lstrip().startswith("1")

    def test_sweep_to_dict_is_json_able(self):
        cells = [_cell()]
        doc = sweep_to_dict(BASE, cells)
        encoded = json.loads(json.dumps(doc))
        assert encoded["config"]["seed"] == BASE.seed
        assert len(encoded["cells"]) == 1
        assert encoded["leaderboard"][0]["detector_id"] == "Last+CI_med"


class TestCli:
    def test_kv_sweep_command_end_to_end(self, tmp_path, capsys):
        output = tmp_path / "sweep.json"
        code = main([
            "kv-sweep", "--etas", "0.2", "--detectors", "Last+CI_med",
            "--duration", "20", "--seed", "4", "--clients", "1",
            "--output", str(output),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "heatmap:" in printed
        assert "Last+CI_med" in printed
        document = json.loads(output.read_text())
        assert len(document["cells"]) == 1
        assert document["cells"][0]["detector_id"] == "Last+CI_med"

    def test_kv_sweep_rejects_bad_detector(self, capsys):
        assert main(["kv-sweep", "--detectors", "Nope+CI_med",
                     "--etas", "0.2", "--duration", "20"]) == 2
