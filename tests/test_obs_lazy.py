"""Regression tests for the repro.obs lazy export shim.

``repro.obs`` used to eagerly re-import names from its submodules, so
``repro.obs.analyze`` resolved to either the submodule or (had the
function been re-exported) the ``analyze()`` function depending on
import order.  The PEP 562 ``__getattr__`` makes submodule access
deterministic; these tests pin that down in clean interpreters.
"""

import subprocess
import sys

import pytest


def run_snippet(code):
    return subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, check=False,
    )


def test_submodule_attribute_resolves_without_explicit_import():
    # Bare `import repro.obs` then attribute-chase into the submodule:
    # exactly the access pattern that used to depend on import order.
    proc = run_snippet(
        "import types\n"
        "import repro.obs\n"
        "assert isinstance(repro.obs.analyze, types.ModuleType)\n"
        "assert callable(repro.obs.analyze.hop_breakdown)\n"
        "assert callable(repro.obs.analyze.analyze)\n"
    )
    assert proc.returncode == 0, proc.stderr


def test_analyze_function_import_still_works():
    proc = run_snippet(
        "from repro.obs.analyze import analyze\n"
        "import repro.obs\n"
        "import types\n"
        "assert callable(analyze)\n"
        "assert isinstance(repro.obs.analyze, types.ModuleType)\n"
    )
    assert proc.returncode == 0, proc.stderr


def test_lazy_exports_resolve_and_cache():
    import repro.obs

    hub_cls = repro.obs.ObservabilityHub
    assert hub_cls.__name__ == "ObservabilityHub"
    # second access is served from the module dict, same object
    assert repro.obs.ObservabilityHub is hub_cls
    assert repro.obs.TraceRecorder.__name__ == "TraceRecorder"
    assert callable(repro.obs.ks_distance)


def test_from_import_of_lazy_name():
    from repro.obs import WindowedQosStore  # noqa: F401 - import is the test

    assert WindowedQosStore.__name__ == "WindowedQosStore"


def test_unknown_attribute_raises():
    import repro.obs

    with pytest.raises(AttributeError, match="no attribute 'nope'"):
        repro.obs.nope


def test_dir_lists_exports_and_submodules():
    import repro.obs

    names = dir(repro.obs)
    for expected in ("ObservabilityHub", "analyze", "drift", "trace"):
        assert expected in names
    assert sorted(repro.obs.__all__) == repro.obs.__all__
