"""Scenario tests for the push-style failure detector.

Each scenario wires the real Figure 3 architecture (Heartbeater, SimCrash,
MultiPlexer, PushFailureDetector) on controlled links so the expected
suspect/trust transitions can be computed by hand.
"""

import pytest

from repro.fd.combinations import make_strategy
from repro.fd.detector import PushFailureDetector
from repro.fd.heartbeat import Heartbeater
from repro.fd.multiplexer import MultiPlexer
from repro.fd.predictors import LastPredictor
from repro.fd.safety import ConstantMargin
from repro.fd.simcrash import SimCrash
from repro.fd.timeout import TimeoutStrategy
from repro.neko.layer import ProtocolStack
from repro.neko.system import NekoSystem
from repro.nekostat.events import EventKind
from repro.nekostat.log import EventLog
from repro.nekostat.metrics import extract_qos
from repro.net.delay import ConstantDelay, TraceDelay
from repro.sim.engine import Simulator


def build(sim, event_log, delay_model, *, eta=1.0, strategy=None,
          crash_schedule=None, initial_timeout=5.0, detectors=None):
    """Wire heartbeater -> simcrash -> link -> multiplexer -> detector(s)."""
    system = NekoSystem(sim)
    system.network.set_link("monitored", "monitor", delay_model)
    heartbeater = Heartbeater("monitor", eta, event_log)
    simcrash = SimCrash(
        100.0, 10.0, None, event_log,
        schedule=crash_schedule if crash_schedule is not None else [],
    )
    system.create_process("monitored", ProtocolStack([heartbeater, simcrash]))
    if detectors is None:
        if strategy is None:
            strategy = TimeoutStrategy(LastPredictor(), ConstantMargin(0.1))
        detectors = [
            PushFailureDetector(
                strategy, "monitored", eta, event_log,
                detector_id="fd", initial_timeout=initial_timeout,
            )
        ]
    multiplexer = MultiPlexer(detectors, event_log)
    system.create_process("monitor", ProtocolStack([multiplexer]))
    system.start()
    return system, detectors


class TestSteadyState:
    def test_no_suspicion_with_stable_delays(self, sim, event_log):
        build(sim, event_log, ConstantDelay(0.2))
        sim_run(sim, 50.0)
        assert event_log.filter(kind=EventKind.START_SUSPECT) == []

    def test_delays_observed_match_link(self, sim, event_log):
        _, detectors = build(sim, event_log, ConstantDelay(0.2))
        sim_run(sim, 10.0)
        fd = detectors[0]
        assert fd.heartbeats_seen == 10
        assert fd.strategy.prediction() == pytest.approx(0.2)

    def test_current_timeout_tracks_strategy(self, sim, event_log):
        _, detectors = build(sim, event_log, ConstantDelay(0.2))
        sim_run(sim, 5.0)
        assert detectors[0].current_timeout() == pytest.approx(0.3)

    def test_highest_sequence_advances(self, sim, event_log):
        _, detectors = build(sim, event_log, ConstantDelay(0.2))
        sim_run(sim, 10.5)
        assert detectors[0].highest_sequence == 10


class TestCrashDetection:
    def test_crash_produces_permanent_suspicion(self, sim, event_log):
        build(sim, event_log, ConstantDelay(0.2), crash_schedule=[(10.5, 20.5)])
        sim_run(sim, 40.0)
        qos = extract_qos(event_log, end_time=40.0)["fd"]
        assert len(qos.td_samples) == 1
        assert qos.undetected_crashes == 0

    def test_detection_time_value(self, sim, event_log):
        # Crash at 10.5: last heartbeat sent at 10 arrives 10.2; the next
        # freshness point is 11 + 0.2 + 0.1 = 11.3, so T_D = 0.8.
        build(sim, event_log, ConstantDelay(0.2), crash_schedule=[(10.5, 20.5)])
        sim_run(sim, 40.0)
        qos = extract_qos(event_log, end_time=40.0)["fd"]
        assert qos.td_samples[0] == pytest.approx(0.8, abs=1e-6)

    def test_suspicion_ends_after_repair(self, sim, event_log):
        build(sim, event_log, ConstantDelay(0.2), crash_schedule=[(10.5, 20.5)])
        sim_run(sim, 40.0)
        ends = event_log.filter(kind=EventKind.END_SUSPECT)
        assert len(ends) == 1
        # First heartbeat after repair is sent at t=21, arrives 21.2.
        assert ends[0].time == pytest.approx(21.2, abs=1e-6)

    def test_detector_state_flags(self, sim, event_log):
        _, detectors = build(
            sim, event_log, ConstantDelay(0.2), crash_schedule=[(10.5, 20.5)]
        )
        sim_run(sim, 15.0)
        assert detectors[0].suspecting
        sim_run(sim, 40.0)
        assert not detectors[0].suspecting

    def test_multiple_crash_cycles(self, sim, event_log):
        schedule = [(10.5, 15.5), (30.5, 35.5), (50.5, 55.5)]
        build(sim, event_log, ConstantDelay(0.2), crash_schedule=schedule)
        sim_run(sim, 70.0)
        qos = extract_qos(event_log, end_time=70.0)["fd"]
        assert len(qos.td_samples) == 3
        assert qos.undetected_crashes == 0


class TestFalsePositives:
    def test_delay_spike_causes_mistake(self, sim, event_log):
        # Heartbeats sent at 1s intervals; seq 5 is slow (0.5 > 0.2+0.1
        # timeout) -> a mistake begins at tau and ends on its arrival.
        delays = [0.2] * 5 + [0.5] + [0.2] * 50
        build(sim, event_log, TraceDelay(delays))
        sim_run(sim, 30.0)
        qos = extract_qos(event_log, end_time=30.0)["fd"]
        assert len(qos.mistakes) == 1
        # Suspicion from tau = 5 + 1*... heartbeat 5 sent at 5.0; freshness
        # point for it: sigma_4 + eta + delta = 4 + 1 + 0.3 = 5.3; ends at
        # arrival 5.5.
        assert qos.mistakes[0].start == pytest.approx(5.3, abs=1e-6)
        assert qos.mistakes[0].end == pytest.approx(5.5, abs=1e-6)

    def test_lost_heartbeat_causes_mistake_until_next(self, sim, event_log):
        class DropSeq:
            """Delay model is constant; drop is simulated by a huge delay."""

        delays = [0.2] * 5 + [10.0] + [0.2] * 50  # seq 5 effectively lost
        build(sim, event_log, TraceDelay(delays))
        sim_run(sim, 30.0)
        qos = extract_qos(event_log, end_time=30.0)["fd"]
        assert len(qos.mistakes) == 1
        # Mistake ends when heartbeat 6 (fresh) arrives at 6 + 0.2.
        assert qos.mistakes[0].end == pytest.approx(6.2, abs=1e-6)

    def test_stale_heartbeat_does_not_end_suspicion(self, sim, event_log):
        # seq 5 delayed so long it arrives after seq 6: it is stale on
        # arrival and must not generate an extra EndSuspect.
        delays = [0.2] * 5 + [1.5] + [0.2] * 50
        _, detectors = build(sim, event_log, TraceDelay(delays))
        sim_run(sim, 30.0)
        assert detectors[0].stale_heartbeats == 1
        starts = event_log.filter(kind=EventKind.START_SUSPECT)
        ends = event_log.filter(kind=EventKind.END_SUSPECT)
        assert len(starts) == len(ends) == 1
        # Trust restored by fresh seq 6 at 6.2, not by stale seq 5 at 6.5.
        assert ends[0].time == pytest.approx(6.2, abs=1e-6)

    def test_stale_heartbeat_observed_by_default(self, sim, event_log):
        delays = [0.2] * 5 + [1.5] + [0.2] * 50
        strategy = TimeoutStrategy(LastPredictor(), ConstantMargin(0.1))
        _, detectors = build(sim, event_log, TraceDelay(delays), strategy=strategy)
        sim_run(sim, 6.6)  # just after the stale arrival at 6.5
        # The stale delay (1.5) was fed to the predictor (LAST).
        assert detectors[0].strategy.prediction() == pytest.approx(1.5)

    def test_observe_stale_false_skips_stale_delays(self, sim, event_log):
        delays = [0.2] * 5 + [1.5] + [0.2] * 50
        strategy = TimeoutStrategy(LastPredictor(), ConstantMargin(0.1))
        detector = PushFailureDetector(
            strategy, "monitored", 1.0, event_log,
            detector_id="fd", initial_timeout=5.0, observe_stale=False,
        )
        build(sim, event_log, TraceDelay(delays), detectors=[detector])
        sim_run(sim, 6.6)
        assert detector.strategy.prediction() == pytest.approx(0.2)


class TestInitialBehaviour:
    def test_initial_timeout_covers_first_heartbeat(self, sim, event_log):
        build(sim, event_log, ConstantDelay(0.2), initial_timeout=5.0)
        sim_run(sim, 3.0)
        assert event_log.filter(kind=EventKind.START_SUSPECT) == []

    def test_suspects_if_no_heartbeat_ever(self, sim, event_log):
        # Crash from the very start: the initial timeout expires.
        build(
            sim, event_log, ConstantDelay(0.2),
            crash_schedule=[(0.0, 50.0)], initial_timeout=5.0,
        )
        sim_run(sim, 20.0)
        starts = event_log.filter(kind=EventKind.START_SUSPECT)
        assert len(starts) == 1
        assert starts[0].time == pytest.approx(6.0)  # eta + initial_timeout

    def test_heartbeat_without_seq_rejected(self, sim, event_log):
        from repro.net.message import Datagram

        strategy = TimeoutStrategy(LastPredictor(), ConstantMargin(0.1))
        detector = PushFailureDetector(strategy, "p", 1.0, event_log)
        system = NekoSystem(sim)
        system.create_process("monitor", ProtocolStack([detector]))
        with pytest.raises(ValueError):
            detector.deliver(Datagram(source="p", destination="monitor", kind="heartbeat"))

    def test_non_heartbeat_messages_pass_through(self, sim, event_log):
        from repro.net.message import Datagram
        from tests.conftest import RecordingLayer

        strategy = TimeoutStrategy(LastPredictor(), ConstantMargin(0.1))
        detector = PushFailureDetector(strategy, "p", 1.0, event_log)
        recorder = RecordingLayer()
        system = NekoSystem(sim)
        system.create_process("monitor", ProtocolStack([recorder, detector]))
        message = Datagram(source="x", destination="monitor", kind="chat")
        detector.deliver(message)
        assert recorder.received == [message]
        assert detector.heartbeats_seen == 0

    def test_invalid_parameters(self, event_log):
        strategy = TimeoutStrategy(LastPredictor(), ConstantMargin(0.1))
        with pytest.raises(ValueError):
            PushFailureDetector(strategy, "p", 0.0, event_log)
        with pytest.raises(ValueError):
            PushFailureDetector(strategy, "p", 1.0, event_log, initial_timeout=-1.0)


class TestEventData:
    def test_suspect_events_carry_detector_and_timeout(self, sim, event_log):
        build(sim, event_log, ConstantDelay(0.2), crash_schedule=[(10.5, 20.5)])
        sim_run(sim, 25.0)
        start = event_log.filter(kind=EventKind.START_SUSPECT)[0]
        assert start.detector == "fd"
        assert start.site == "monitor"
        assert start.data["timeout"] == pytest.approx(0.3)

    def test_balanced_start_end_when_trusting_at_end(self, sim, event_log):
        build(sim, event_log, ConstantDelay(0.2), crash_schedule=[(10.5, 20.5)])
        sim_run(sim, 40.0)
        starts = event_log.filter(kind=EventKind.START_SUSPECT)
        ends = event_log.filter(kind=EventKind.END_SUSPECT)
        assert len(starts) == len(ends)


def sim_run(sim, until):
    """Run the (already started) scenario to `until`."""
    sim.run(until=until)
