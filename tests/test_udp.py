"""Integration tests for the real-network (UDP) backend.

These exercise the Neko promise: the same protocol layers run over real
sockets on localhost.  Kept small and generously timed to stay robust on
loaded machines.
"""

import time

import pytest

from repro.fd.detector import PushFailureDetector
from repro.fd.heartbeat import Heartbeater
from repro.fd.predictors import LastPredictor
from repro.fd.safety import ConstantMargin
from repro.fd.timeout import TimeoutStrategy
from repro.neko.layer import Layer, ProtocolStack
from repro.neko.system import NekoSystem
from repro.nekostat.events import EventKind
from repro.nekostat.log import EventLog
from repro.net.message import Datagram
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.udp import (
    DatagramDecodeError,
    UdpNetwork,
    WallClockScheduler,
    decode_datagram,
    encode_datagram,
)

from tests.conftest import RecordingLayer


class ThreadSafeEventLog(EventLog):
    """EventLog tolerant of wall-clock time jitter between threads."""

    def append(self, event):
        # Relax the monotonicity check: wall-clock dispatch from separate
        # timer threads can interleave within a few ms.
        self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)


@pytest.fixture
def udp_world():
    scheduler = WallClockScheduler()
    network = UdpNetwork(scheduler)
    yield scheduler, network
    network.close()


class TestWireFormat:
    """The JSON datagram codec shared by the threaded backend and the
    asyncio monitoring daemon."""

    def test_roundtrip_preserves_every_field(self):
        message = Datagram(
            source="q", destination="monitor", kind="heartbeat",
            seq=42, timestamp=12.5, payload={"rtt": 0.003}, uid=7,
        )
        got = decode_datagram(encode_datagram(message))
        assert (got.source, got.destination, got.kind) == ("q", "monitor", "heartbeat")
        assert got.seq == 42 and got.timestamp == 12.5
        assert got.payload == {"rtt": 0.003} and got.uid == 7

    def test_roundtrip_of_control_datagram_without_seq(self):
        message = Datagram(source="q", destination="monitor", kind="crash")
        got = decode_datagram(encode_datagram(message))
        assert got.kind == "crash" and got.seq is None

    def test_malformed_bytes_rejected(self):
        with pytest.raises(DatagramDecodeError):
            decode_datagram(b"\xff\x00 not json")

    def test_missing_required_field_rejected(self):
        with pytest.raises(DatagramDecodeError):
            decode_datagram(b'{"source": "q"}')

    def test_type_confused_fields_rejected(self):
        for raw in (
            b'{"source": 1, "destination": "m", "kind": "heartbeat"}',
            b'{"source": "q", "destination": "m", "kind": "heartbeat", "seq": "x"}',
            b'{"source": "q", "destination": "m", "kind": "heartbeat", "uid": "x"}',
            b'{"source": "q", "destination": "m", "kind": "heartbeat", "timestamp": "x"}',
            b'[1, 2, 3]',
            b'"heartbeat"',
        ):
            with pytest.raises(DatagramDecodeError):
                decode_datagram(raw)

    def test_oversized_datagram_rejected(self):
        raw = b"x" * (UdpNetwork.MAX_DATAGRAM + 1)
        with pytest.raises(DatagramDecodeError):
            decode_datagram(raw)

    def test_decode_error_is_a_value_error(self):
        # Pre-hardening call sites caught ValueError; the typed error
        # must stay substitutable for them.
        assert issubclass(DatagramDecodeError, ValueError)

    @given(raw=st.binary(max_size=512))
    @settings(max_examples=300, deadline=None)
    def test_fuzz_no_other_exception_escapes(self, raw):
        try:
            message = decode_datagram(raw)
        except DatagramDecodeError:
            return
        assert isinstance(message, Datagram)

    @given(
        prefix=st.integers(min_value=0, max_value=200),
        flip=st.integers(min_value=0, max_value=255),
        position=st.integers(min_value=0, max_value=199),
    )
    @settings(max_examples=200, deadline=None)
    def test_fuzz_truncated_and_flipped_real_datagrams(
        self, prefix, flip, position
    ):
        raw = encode_datagram(
            Datagram(
                source="q", destination="monitor", kind="heartbeat",
                seq=3, timestamp=1.25, payload={"k": "v"},
            )
        )
        mangled = bytearray(raw[:prefix] if prefix < len(raw) else raw)
        if mangled:
            mangled[position % len(mangled)] ^= flip
        try:
            message = decode_datagram(bytes(mangled))
        except DatagramDecodeError:
            return
        assert isinstance(message, Datagram)


class TestWallClockScheduler:
    def test_now_advances(self):
        scheduler = WallClockScheduler()
        first = scheduler.now
        time.sleep(0.02)
        assert scheduler.now > first

    def test_schedule_fires(self):
        scheduler = WallClockScheduler()
        fired = []
        scheduler.schedule(0.02, lambda: fired.append(True))
        time.sleep(0.2)
        assert fired == [True]

    def test_cancel_prevents_firing(self):
        scheduler = WallClockScheduler()
        fired = []
        handle = scheduler.schedule(0.05, lambda: fired.append(True))
        handle.cancel()
        time.sleep(0.15)
        assert fired == []

    def test_run_sleeps_until(self):
        scheduler = WallClockScheduler()
        scheduler.run(until=0.05)
        assert scheduler.now >= 0.05

    def test_callbacks_fire_in_deadline_order(self):
        scheduler = WallClockScheduler()
        fired = []
        scheduler.schedule(0.12, lambda: fired.append("late"))
        scheduler.schedule(0.03, lambda: fired.append("early"))
        time.sleep(0.3)
        assert fired == ["early", "late"]

    def test_close_cancels_pending_timers(self):
        scheduler = WallClockScheduler()
        fired = []
        for _ in range(4):
            scheduler.schedule(0.1, lambda: fired.append(True))
        scheduler.close()
        assert scheduler.closed
        time.sleep(0.25)
        assert fired == []

    def test_schedule_after_close_raises(self):
        scheduler = WallClockScheduler()
        scheduler.close()
        with pytest.raises(RuntimeError):
            scheduler.schedule(0.01, lambda: None)

    def test_close_joins_timer_threads_and_is_idempotent(self):
        import threading

        baseline = threading.active_count()
        scheduler = WallClockScheduler()
        for _ in range(4):
            scheduler.schedule(5.0, lambda: None)
        scheduler.close(timeout=2.0)
        scheduler.close(timeout=2.0)
        deadline = time.time() + 2.0
        while threading.active_count() > baseline and time.time() < deadline:
            time.sleep(0.01)
        assert threading.active_count() <= baseline

    def test_close_during_in_flight_callback(self):
        # close() from another thread must not deadlock on the callback
        # currently running in a timer thread.
        scheduler = WallClockScheduler()
        started = []
        scheduler.schedule(0.02, lambda: (started.append(True), time.sleep(0.1)))
        deadline = time.time() + 2.0
        while not started and time.time() < deadline:
            time.sleep(0.005)
        scheduler.close(timeout=1.0)
        assert started == [True]


@pytest.mark.network
class TestUdpNetwork:
    def test_datagram_roundtrip(self, udp_world):
        scheduler, network = udp_world
        received = []
        network.register("a", received.append)
        network.register("b", lambda m: None)
        message = Datagram(
            source="b", destination="a", kind="heartbeat", seq=3, timestamp=1.5,
            payload={"k": "v"},
        )
        network.send(message)
        deadline = time.time() + 2.0
        while not received and time.time() < deadline:
            time.sleep(0.01)
        assert len(received) == 1
        got = received[0]
        assert (got.source, got.destination, got.kind) == ("b", "a", "heartbeat")
        assert got.seq == 3 and got.timestamp == 1.5 and got.payload == {"k": "v"}

    def test_unknown_destination_silently_dropped(self, udp_world):
        _, network = udp_world
        network.register("a", lambda m: None)
        network.send(Datagram(source="a", destination="ghost", kind="t"))

    def test_duplicate_registration_rejected(self, udp_world):
        _, network = udp_world
        network.register("a", lambda m: None)
        with pytest.raises(ValueError):
            network.register("a", lambda m: None)

    def test_endpoint_lookup(self, udp_world):
        _, network = udp_world
        network.register("a", lambda m: None)
        host, port = network.endpoint("a")
        assert host == "127.0.0.1" and port > 0


@pytest.mark.network
class TestRealExecution:
    def test_failure_detector_over_real_udp(self, udp_world):
        """The Neko contract: unchanged detector layers over real sockets."""
        scheduler, network = udp_world
        event_log = ThreadSafeEventLog()
        system = NekoSystem(scheduler, network)  # type: ignore[arg-type]

        eta = 0.05  # fast heartbeats to keep the test short
        heartbeater = Heartbeater("monitor", eta, event_log)
        strategy = TimeoutStrategy(LastPredictor(), ConstantMargin(0.2))
        detector = PushFailureDetector(
            strategy, "monitored", eta, event_log,
            detector_id="udp-fd", initial_timeout=1.0,
        )
        system.create_process("monitored", ProtocolStack([heartbeater]))
        system.create_process("monitor", ProtocolStack([detector]))
        system.start()
        time.sleep(0.6)
        heartbeater.stop()

        assert detector.heartbeats_seen >= 5
        assert not detector.suspecting
        assert event_log.filter(kind=EventKind.START_SUSPECT) == []

        # Silence (simulated crash): the detector must start suspecting.
        time.sleep(0.8)
        assert detector.suspecting
        assert len(event_log.filter(kind=EventKind.START_SUSPECT)) == 1
