"""Tests for the calibrated network profiles."""

import numpy as np
import pytest

from repro.net.traces import DelayTrace
from repro.net.wan import (
    PROFILES,
    get_profile,
    italy_japan_profile,
    lan_profile,
    mobile_profile,
)
from repro.sim.random import RandomStreams


class TestRegistry:
    def test_known_profiles(self):
        assert set(PROFILES) == {"italy-japan", "lan", "mobile"}

    def test_get_profile(self):
        assert get_profile("lan").name == "lan"

    def test_unknown_profile_lists_names(self):
        with pytest.raises(KeyError, match="italy-japan"):
            get_profile("mars")


class TestItalyJapanProfile:
    def sample(self, count=100000, seed=0):
        profile = italy_japan_profile()
        streams = RandomStreams(seed)
        model = profile.build_delay_model(streams)
        return np.array([model.sample(float(i)) for i in range(count)])

    def test_table4_minimum(self):
        delays = self.sample(20000)
        assert delays.min() >= 0.192
        assert delays.min() < 0.195  # the floor is actually reached

    def test_table4_mean(self):
        delays = self.sample(50000)
        assert 0.195 < delays.mean() < 0.210  # paper: ~200 ms

    def test_table4_std(self):
        delays = self.sample(50000)
        assert 0.004 < delays.std() < 0.010  # paper: 7.6 ms

    def test_table4_maximum_spikes(self):
        delays = self.sample(100000)
        # Rare spikes produce a maximum in the paper's 300+ ms range.
        assert delays.max() > 0.260

    def test_delays_autocorrelated(self):
        trace = DelayTrace(self.sample(20000))
        assert trace.autocorrelation(1)[1] > 0.2

    def test_loss_rate_below_one_percent(self):
        profile = italy_japan_profile()
        model = profile.build_loss_model(RandomStreams(1))
        rate = sum(model.drops(float(i)) for i in range(100000)) / 100000
        assert 0.0 < rate < 0.01

    def test_lossless_variant(self):
        profile = italy_japan_profile(loss=False)
        model = profile.build_loss_model(RandomStreams(1))
        assert not any(model.drops(float(i)) for i in range(1000))

    def test_spikeless_variant_light_tail(self):
        profile = italy_japan_profile(spikes=False)
        model = profile.build_delay_model(RandomStreams(1))
        delays = np.array([model.sample(float(i)) for i in range(50000)])
        assert delays.max() < 0.25

    def test_reproducible_across_instances(self):
        a = self.sample(100, seed=5)
        b = self.sample(100, seed=5)
        assert np.array_equal(a, b)

    def test_directions_are_independent(self):
        profile = italy_japan_profile()
        streams = RandomStreams(0)
        forward = profile.build_delay_model(streams, "fwd")
        reverse = profile.build_delay_model(streams, "rev")
        fwd = [forward.sample(float(i)) for i in range(100)]
        rev = [reverse.sample(float(i)) for i in range(100)]
        assert fwd != rev

    def test_nominal_metadata(self):
        nominal = italy_japan_profile().nominal
        assert nominal["hops"] == 18
        assert nominal["min_ms"] == 192.0


class TestOtherProfiles:
    def test_lan_is_fast(self):
        model = lan_profile().build_delay_model(RandomStreams(0))
        delays = np.array([model.sample(float(i)) for i in range(10000)])
        assert delays.mean() < 0.002

    def test_mobile_is_slow_and_variable(self):
        model = mobile_profile().build_delay_model(RandomStreams(0))
        delays = np.array([model.sample(float(i)) for i in range(20000)])
        assert delays.min() >= 0.06
        assert delays.std() > 0.01

    def test_mobile_lossier_than_wan(self):
        mobile_loss = mobile_profile().build_loss_model(RandomStreams(0))
        wan_loss = italy_japan_profile().build_loss_model(RandomStreams(0))
        mobile_rate = sum(mobile_loss.drops(float(i)) for i in range(50000)) / 50000
        wan_rate = sum(wan_loss.drops(float(i)) for i in range(50000)) / 50000
        assert mobile_rate > wan_rate
