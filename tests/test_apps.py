"""Tests for the upper-layer applications: membership and consensus."""

import pytest

from repro.apps.consensus import ConsensusLayer
from repro.apps.harness import build_consensus_group
from repro.apps.membership import MembershipService
from repro.fd.combinations import make_strategy
from repro.nekostat.events import EventKind, StatEvent
from repro.nekostat.log import EventLog
from repro.net.wan import italy_japan_profile, lan_profile
from repro.sim.engine import Simulator


def suspect_event(time, detector, start=True):
    kind = EventKind.START_SUSPECT if start else EventKind.END_SUSPECT
    return StatEvent(time=time, kind=kind, site="monitor", detector=detector)


class TestMembershipService:
    def make(self, event_log, members=("a", "b", "c")):
        return MembershipService(
            event_log,
            members,
            {member: f"fd-{member}" for member in members},
        )

    def test_initial_view_and_coordinator(self, event_log):
        service = self.make(event_log)
        assert service.view() == ["a", "b", "c"]
        assert service.coordinator() == "a"
        assert service.stats.elections == 0

    def test_suspecting_coordinator_triggers_election(self, event_log):
        service = self.make(event_log)
        event_log.append(suspect_event(10.0, "fd-a"))
        assert service.coordinator() == "b"
        assert service.stats.elections == 1
        assert service.stats.coordinator_history[-1] == (10.0, "b")

    def test_suspecting_non_coordinator_changes_view_only(self, event_log):
        service = self.make(event_log)
        event_log.append(suspect_event(10.0, "fd-c"))
        assert service.coordinator() == "a"
        assert service.stats.elections == 0
        assert service.stats.view_changes == 1
        assert service.view() == ["a", "b"]

    def test_trust_restoration_reelects_by_rank(self, event_log):
        service = self.make(event_log)
        event_log.append(suspect_event(10.0, "fd-a"))
        event_log.append(suspect_event(20.0, "fd-a", start=False))
        assert service.coordinator() == "a"
        assert service.stats.elections == 2  # a->b and b->a

    def test_all_suspected_gives_no_coordinator(self, event_log):
        service = self.make(event_log)
        for t, member in [(1.0, "a"), (2.0, "b"), (3.0, "c")]:
            event_log.append(suspect_event(t, f"fd-{member}"))
        assert service.coordinator() is None
        assert service.view() == []

    def test_foreign_detector_events_ignored(self, event_log):
        service = self.make(event_log)
        event_log.append(suspect_event(1.0, "unrelated"))
        assert service.stats.view_changes == 0

    def test_on_election_callback(self, event_log):
        calls = []
        MembershipService(
            event_log, ["a", "b"], {"a": "fd-a", "b": "fd-b"},
            on_election=lambda t, old, new: calls.append((t, old, new)),
        )
        event_log.append(suspect_event(5.0, "fd-a"))
        assert calls == [(5.0, "a", "b")]

    def test_validation(self, event_log):
        with pytest.raises(ValueError):
            MembershipService(event_log, [], {})
        with pytest.raises(ValueError):
            MembershipService(event_log, ["a"], {})


class TestConsensusNoFailures:
    def run_group(self, n=3, profile=None, until=30.0, crash_schedules=None,
                  values=None, seed=0):
        sim = Simulator()
        group = [f"p{i}" for i in range(n)]
        world = build_consensus_group(
            sim,
            group,
            profile if profile is not None else lan_profile(),
            lambda: make_strategy("Last", "JAC_med"),
            seed=seed,
            eta=0.5,
            initial_timeout=2.0,
            crash_schedules=crash_schedules,
            retransmit_interval=0.5,
        )
        world.system.start()
        if values is None:
            values = {address: f"v-{address}" for address in group}
        world.propose_all(values)
        sim.run(until=until)
        return world

    def test_all_decide_same_value(self):
        world = self.run_group()
        decisions = world.decisions()
        assert all(result is not None for result in decisions.values())
        assert len(world.decided_values()) == 1

    def test_decides_in_round_zero_without_failures(self):
        world = self.run_group()
        assert all(r.round == 0 for r in world.decisions().values())

    def test_decision_is_a_proposed_value(self):
        world = self.run_group()
        decided = world.decided_values()[0]
        assert decided in {f"v-p{i}" for i in range(3)}

    def test_five_processes(self):
        world = self.run_group(n=5)
        assert len(world.decided_values()) == 1
        assert all(result is not None for result in world.decisions().values())

    def test_decision_latency_reasonable_on_lan(self):
        world = self.run_group()
        latest = max(r.decided_at for r in world.decisions().values())
        assert latest < 1.0  # three message delays on a sub-ms LAN

    def test_works_over_lossy_wan(self):
        world = self.run_group(profile=italy_japan_profile(), until=60.0)
        assert len(world.decided_values()) == 1
        assert all(result is not None for result in world.decisions().values())


class TestConsensusWithCrashes:
    def run_group(self, crash_schedules, n=3, until=120.0, propose_at=0.0):
        sim = Simulator()
        group = [f"p{i}" for i in range(n)]
        world = build_consensus_group(
            sim, group, lan_profile(),
            lambda: make_strategy("Last", "JAC_med"),
            eta=0.5, initial_timeout=2.0,
            crash_schedules=crash_schedules,
            retransmit_interval=0.5,
        )
        world.system.start()
        values = {address: f"v-{address}" for address in group}
        if propose_at > 0:
            sim.schedule(propose_at, lambda: world.propose_all(values))
        else:
            world.propose_all(values)
        sim.run(until=until)
        return world

    def test_survivors_decide_despite_crashed_coordinator(self):
        # p0 is the round-0 coordinator; it crashes before anyone proposes
        # and stays down.  The survivors must rotate to p1 and decide.
        world = self.run_group({"p0": [(0.1, 1e9)]}, propose_at=1.0)
        survivors = {a: r for a, r in world.decisions().items() if a != "p0"}
        assert all(result is not None for result in survivors.values())
        assert len(world.decided_values()) == 1
        assert all(result.round >= 1 for result in survivors.values())

    def test_crash_after_decision_is_harmless(self):
        world = self.run_group({"p0": [(50.0, 1e9)]})
        assert all(result is not None for result in world.decisions().values())
        assert all(result.round == 0 for result in world.decisions().values())

    def test_minority_crash_tolerated_in_five(self):
        world = self.run_group(
            {"p0": [(0.1, 1e9)], "p1": [(0.1, 1e9)]}, n=5
        )
        survivors = {a: r for a, r in world.decisions().items()
                     if a not in ("p0", "p1")}
        assert all(result is not None for result in survivors.values())
        assert len(world.decided_values()) == 1

    def test_agreement_never_violated(self):
        # Whatever happens, no two processes decide differently.
        for schedules in (
            {"p0": [(0.1, 1e9)]},
            {"p1": [(0.3, 20.0)]},
            {"p2": [(1.0, 5.0), (30.0, 40.0)]},
        ):
            world = self.run_group(schedules)
            assert len(world.decided_values()) <= 1


class TestConsensusValidation:
    def test_group_too_small(self):
        with pytest.raises(ValueError):
            ConsensusLayer(["only"], lambda peer: False)

    def test_duplicate_members(self):
        with pytest.raises(ValueError):
            ConsensusLayer(["a", "a"], lambda peer: False)

    def test_double_propose_rejected(self):
        sim = Simulator()
        world = build_consensus_group(
            sim, ["a", "b"], lan_profile(),
            lambda: make_strategy("Last", "JAC_med"),
        )
        world.system.start()
        world.consensus["a"].propose(1)
        with pytest.raises(RuntimeError):
            world.consensus["a"].propose(2)

    def test_harness_group_too_small(self):
        with pytest.raises(ValueError):
            build_consensus_group(
                Simulator(), ["solo"], lan_profile(),
                lambda: make_strategy("Last", "JAC_med"),
            )
