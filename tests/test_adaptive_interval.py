"""Tests for the adaptive sending-interval extension (Bertier [2])."""

import pytest

from repro.fd.adaptive_interval import AdaptiveHeartbeater, IntervalController
from repro.fd.baselines import constant_timeout_strategy
from repro.fd.detector import PushFailureDetector
from repro.fd.multiplexer import MultiPlexer
from repro.neko.layer import ProtocolStack
from repro.neko.system import NekoSystem
from repro.nekostat.events import EventKind
from repro.nekostat.log import EventLog
from repro.net.delay import ConstantDelay
from repro.net.message import Datagram

from tests.conftest import RecordingLayer


def wire(sim, event_log, *, eta=1.0, delta=0.3, target=None,
         check_interval=5.0, delay=0.2):
    system = NekoSystem(sim)
    system.network.set_link("q", "p", ConstantDelay(delay))
    system.network.set_link("p", "q", ConstantDelay(delay))
    heartbeater = AdaptiveHeartbeater("p", eta, event_log)
    system.create_process("q", ProtocolStack([heartbeater]))
    detector = PushFailureDetector(
        constant_timeout_strategy(delta), "q", eta, event_log,
        detector_id="fd", initial_timeout=5.0,
    )
    layers = []
    controller = None
    if target is not None:
        controller = IntervalController(
            detector, "q", target, check_interval=check_interval,
        )
        layers.append(controller)
    layers.append(MultiPlexer([detector], event_log))
    system.create_process("p", ProtocolStack(layers))
    system.start()
    return heartbeater, detector, controller


class TestAdaptiveHeartbeater:
    def test_behaves_like_heartbeater_without_requests(self, sim, event_log):
        heartbeater, detector, _ = wire(sim, event_log)
        sim.run(until=10.5)
        assert heartbeater.sent == 11
        assert heartbeater.interval_changes == 0
        assert detector.highest_sequence == 10

    def test_set_interval_changes_period(self, sim, event_log):
        heartbeater, _, _ = wire(sim, event_log)
        sim.schedule(5.1, lambda: heartbeater.deliver(
            Datagram(source="p", destination="q", kind="set-interval", payload=2.0)
        ))
        sim.run(until=15.35)
        # 6 beats at 1 s (t=0..5), then every 2 s from 7.1: 7.1, 9.1, 11.1,
        # 13.1, 15.1 -> 5 more.
        assert heartbeater.eta == 2.0
        assert heartbeater.sent == 11
        assert heartbeater.interval_changes == 1

    def test_sequence_numbers_continue(self, sim, event_log):
        heartbeater, detector, _ = wire(sim, event_log)
        sim.schedule(3.1, lambda: heartbeater.deliver(
            Datagram(source="p", destination="q", kind="set-interval", payload=0.5)
        ))
        sim.schedule(6.0, heartbeater.stop)
        sim.run(until=7.0)  # let in-flight heartbeats drain
        # Sequences must be strictly increasing with no resets: the highest
        # received sequence equals the number sent minus one.
        assert detector.highest_sequence == heartbeater.sent - 1
        assert detector.stale_heartbeats == 0

    def test_interval_clamped_to_bounds(self, sim, event_log):
        heartbeater, _, _ = wire(sim, event_log)
        heartbeater.min_eta = 0.5
        heartbeater.max_eta = 4.0
        heartbeater.deliver(
            Datagram(source="p", destination="q", kind="set-interval", payload=100.0)
        )
        assert heartbeater.eta == 4.0
        heartbeater.deliver(
            Datagram(source="p", destination="q", kind="set-interval", payload=0.01)
        )
        assert heartbeater.eta == 0.5

    def test_ack_reply_sent(self, sim, event_log):
        heartbeater, detector, _ = wire(sim, event_log)
        recorder = RecordingLayer()
        # Splice the recorder above the monitor stack top to observe acks:
        # easier to drive the heartbeater directly and watch the reverse
        # link deliver to the monitor process.
        sim.schedule(2.1, lambda: heartbeater.deliver(
            Datagram(source="p", destination="q", kind="set-interval", payload=1.5)
        ))
        sim.run(until=4.0)
        assert heartbeater.eta == 1.5

    def test_invalid_bounds_rejected(self, event_log):
        with pytest.raises(ValueError):
            AdaptiveHeartbeater("p", 1.0, event_log, min_eta=2.0, max_eta=3.0)


class TestIntervalController:
    def test_negotiates_eta_towards_target(self, sim, event_log):
        # delta = 0.3 -> desired eta = 2.0 - 0.3 = 1.7 (vs initial 1.0).
        heartbeater, detector, controller = wire(
            sim, event_log, target=2.0, check_interval=3.0
        )
        sim.run(until=30.0)
        assert controller.negotiations, "no negotiation happened"
        assert heartbeater.eta == pytest.approx(1.7, abs=0.01)
        assert detector.eta == pytest.approx(1.7, abs=0.01)

    def test_no_negotiation_when_within_tolerance(self, sim, event_log):
        # desired = 1.2 - 0.3 = 0.9: within 20% of the current 1.0.
        heartbeater, detector, controller = wire(
            sim, event_log, target=1.2, check_interval=3.0
        )
        sim.run(until=30.0)
        assert controller.negotiations == []
        assert heartbeater.eta == 1.0

    def test_detection_respects_target_after_negotiation(self, sim, event_log):
        heartbeater, detector, controller = wire(
            sim, event_log, target=2.0, check_interval=3.0
        )
        sim.run(until=20.0)  # let the negotiation settle
        heartbeater.stop()   # emulate a crash (silence)
        sim.run(until=40.0)
        starts = event_log.filter(kind=EventKind.START_SUSPECT)
        assert len(starts) == 1
        stop_time = 20.0
        detection_latency = starts[0].time - stop_time
        # T_D <= eta + delta = target (plus the heartbeat in flight slack).
        assert detection_latency <= 2.0 + 0.3

    def test_no_mistakes_during_negotiation(self, sim, event_log):
        wire(sim, event_log, target=2.0, check_interval=3.0)
        sim.run(until=60.0)
        # Constant delays: the transition must not cause false suspicion.
        assert event_log.filter(kind=EventKind.START_SUSPECT) == []

    def test_desired_eta_floor(self, sim, event_log):
        _, detector, controller = wire(
            sim, event_log, target=0.2, check_interval=3.0
        )
        # target < delta: slack negative, clamped to min_eta.
        assert controller.desired_eta() == controller.min_eta

    def test_validation(self, sim, event_log):
        _, detector, _ = wire(sim, event_log)
        with pytest.raises(ValueError):
            IntervalController(detector, "q", 0.0)
        with pytest.raises(ValueError):
            IntervalController(detector, "q", 1.0, tolerance=1.5)
        with pytest.raises(ValueError):
            detector.update_eta(0.0)
