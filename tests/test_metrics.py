"""Tests for QoS metric extraction (T_D, T_M, T_MR, P_A).

These tests build synthetic event logs with known ground truth and verify
the interval algebra of :func:`repro.nekostat.metrics.extract_qos`,
including the tricky cases: suspicions that become permanent detections,
suspicions corrected during a crash by stale heartbeats, undetected
crashes, and open intervals at the end of a run.
"""

import math

import pytest

from repro.nekostat.events import EventKind, StatEvent
from repro.nekostat.log import EventLog
from repro.nekostat.metrics import extract_qos


def build_log(entries):
    """entries: list of (time, kind, detector-or-None)."""
    log = EventLog()
    for time, kind, detector in sorted(entries, key=lambda e: e[0]):
        site = "monitor" if detector else "monitored"
        log.append(StatEvent(time=time, kind=kind, site=site, detector=detector))
    return log


S, E = EventKind.START_SUSPECT, EventKind.END_SUSPECT
C, R = EventKind.CRASH, EventKind.RESTORE


class TestDetectionTime:
    def test_simple_detection(self):
        log = build_log([
            (10.0, C, None),
            (11.2, S, "fd"),
            (40.0, R, None),
            (40.3, E, "fd"),
        ])
        qos = extract_qos(log, end_time=100.0)["fd"]
        assert qos.td_samples == pytest.approx([1.2])
        assert qos.undetected_crashes == 0

    def test_td_upper_is_max(self):
        log = build_log([
            (10.0, C, None), (11.0, S, "fd"), (20.0, R, None), (20.1, E, "fd"),
            (50.0, C, None), (53.0, S, "fd"), (60.0, R, None), (60.1, E, "fd"),
        ])
        qos = extract_qos(log, end_time=100.0)["fd"]
        assert qos.t_d_upper == pytest.approx(3.0)
        assert qos.t_d.mean == pytest.approx(2.0)

    def test_suspicion_started_before_crash_gives_zero_td(self):
        # A false positive in progress at crash time persists until repair:
        # detection was effectively immediate.
        log = build_log([
            (9.0, S, "fd"),
            (10.0, C, None),
            (40.0, R, None),
            (40.2, E, "fd"),
        ])
        qos = extract_qos(log, end_time=100.0)["fd"]
        assert qos.td_samples == pytest.approx([0.0])
        # And it is NOT double-counted as a mistake.
        assert qos.mistakes == []

    def test_suspicion_corrected_during_crash_not_permanent(self):
        # A stale in-flight heartbeat ends the first suspicion mid-crash;
        # the second suspicion is the permanent one.
        log = build_log([
            (10.0, C, None),
            (11.0, S, "fd"),
            (12.0, E, "fd"),   # stale heartbeat arrived during the crash
            (13.5, S, "fd"),
            (40.0, R, None),
            (40.2, E, "fd"),
        ])
        qos = extract_qos(log, end_time=100.0)["fd"]
        assert qos.td_samples == pytest.approx([3.5])
        # The corrected suspicion started while crashed: not a mistake.
        assert qos.mistakes == []

    def test_undetected_crash_counted(self):
        log = build_log([
            (10.0, C, None),
            (12.0, R, None),  # repaired before any suspicion
        ])
        qos = extract_qos(log, end_time=100.0, detectors=["fd"])["fd"]
        assert qos.undetected_crashes == 1
        assert qos.td_samples == []
        assert qos.t_d is None
        assert qos.t_d_upper is None

    def test_open_suspicion_at_end_detects_open_crash(self):
        log = build_log([
            (90.0, C, None),
            (91.5, S, "fd"),
        ])
        qos = extract_qos(log, end_time=100.0)["fd"]
        assert qos.td_samples == pytest.approx([1.5])

    def test_multiple_crashes_one_sample_each(self):
        entries = []
        for k in range(5):
            base = 100.0 * k
            entries += [
                (base + 10.0, C, None),
                (base + 11.0 + 0.1 * k, S, "fd"),
                (base + 40.0, R, None),
                (base + 40.2, E, "fd"),
            ]
        qos = extract_qos(build_log(entries), end_time=500.0)["fd"]
        assert len(qos.td_samples) == 5
        assert qos.td_samples == pytest.approx([1.0, 1.1, 1.2, 1.3, 1.4])


class TestMistakes:
    def test_false_positive_is_mistake(self):
        log = build_log([
            (5.0, S, "fd"),
            (5.4, E, "fd"),
        ])
        qos = extract_qos(log, end_time=100.0)["fd"]
        assert len(qos.mistakes) == 1
        assert qos.mistakes[0].duration == pytest.approx(0.4)
        assert qos.t_m.mean == pytest.approx(0.4)

    def test_mistake_durations_averaged(self):
        log = build_log([
            (5.0, S, "fd"), (5.2, E, "fd"),
            (10.0, S, "fd"), (10.6, E, "fd"),
        ])
        qos = extract_qos(log, end_time=100.0)["fd"]
        assert qos.t_m.mean == pytest.approx(0.4)

    def test_tmr_between_mistake_starts(self):
        log = build_log([
            (5.0, S, "fd"), (5.2, E, "fd"),
            (25.0, S, "fd"), (25.1, E, "fd"),
            (65.0, S, "fd"), (65.3, E, "fd"),
        ])
        qos = extract_qos(log, end_time=100.0)["fd"]
        assert qos.tmr_samples == pytest.approx([20.0, 40.0])
        assert qos.t_mr.mean == pytest.approx(30.0)

    def test_single_mistake_tmr_falls_back_to_up_time(self):
        log = build_log([(5.0, S, "fd"), (5.2, E, "fd")])
        qos = extract_qos(log, end_time=100.0)["fd"]
        assert qos.t_mr.mean == pytest.approx(100.0)

    def test_no_mistakes_tmr_none(self):
        log = build_log([
            (10.0, C, None), (11.0, S, "fd"), (40.0, R, None), (40.1, E, "fd"),
        ])
        qos = extract_qos(log, end_time=100.0)["fd"]
        assert qos.t_m is None
        assert qos.t_mr is None

    def test_open_mistake_closed_at_end_time(self):
        log = build_log([(95.0, S, "fd")])
        qos = extract_qos(log, end_time=100.0)["fd"]
        assert len(qos.mistakes) == 1
        assert qos.mistakes[0].duration == pytest.approx(5.0)

    def test_permanent_detection_not_a_mistake(self):
        log = build_log([
            (5.0, S, "fd"), (5.5, E, "fd"),      # a real mistake
            (10.0, C, None), (11.0, S, "fd"),
            (40.0, R, None), (40.1, E, "fd"),    # the detection
        ])
        qos = extract_qos(log, end_time=100.0)["fd"]
        assert len(qos.mistakes) == 1
        assert qos.mistakes[0].start == 5.0


class TestAccuracy:
    def test_pa_formula(self):
        # T_M mean = 1.0, T_MR mean = 10.0 -> P_A = 0.9.
        log = build_log([
            (10.0, S, "fd"), (11.0, E, "fd"),
            (20.0, S, "fd"), (21.0, E, "fd"),
        ])
        qos = extract_qos(log, end_time=100.0)["fd"]
        assert qos.p_a == pytest.approx(0.9)

    def test_pa_one_when_mistake_free(self):
        log = build_log([
            (10.0, C, None), (11.0, S, "fd"), (40.0, R, None), (40.1, E, "fd"),
        ])
        assert extract_qos(log, end_time=100.0)["fd"].p_a == 1.0

    def test_empirical_pa_counts_suspected_up_time(self):
        # 2 s of false suspicion in 100 s of up-time (no crashes).
        log = build_log([(10.0, S, "fd"), (12.0, E, "fd")])
        qos = extract_qos(log, end_time=100.0)["fd"]
        assert qos.empirical_p_a == pytest.approx(0.98)

    def test_empirical_pa_excludes_crash_periods(self):
        # Permanent detection during a 30 s crash must not count against
        # availability; only the 1 s of pre-repair... the detection interval
        # [11, 40.1] overlaps up-time only in [40.0, 40.1].
        log = build_log([
            (10.0, C, None), (11.0, S, "fd"), (40.0, R, None), (40.1, E, "fd"),
        ])
        qos = extract_qos(log, end_time=100.0)["fd"]
        assert qos.up_time == pytest.approx(70.0)
        assert qos.suspected_up_time == pytest.approx(0.1)

    def test_mistake_rate(self):
        log = build_log([
            (10.0, S, "fd"), (10.1, E, "fd"),
            (20.0, S, "fd"), (20.1, E, "fd"),
        ])
        qos = extract_qos(log, end_time=100.0)["fd"]
        assert qos.mistake_rate == pytest.approx(2 / 100.0)


class TestMultipleDetectors:
    def test_detectors_isolated(self):
        log = build_log([
            (5.0, S, "a"), (5.5, E, "a"),
            (10.0, C, None),
            (11.0, S, "a"), (12.0, S, "b"),
            (40.0, R, None),
            (40.1, E, "a"), (40.2, E, "b"),
        ])
        qos = extract_qos(log, end_time=100.0)
        assert qos["a"].td_samples == pytest.approx([1.0])
        assert qos["b"].td_samples == pytest.approx([2.0])
        assert len(qos["a"].mistakes) == 1
        assert len(qos["b"].mistakes) == 0

    def test_detector_filter(self):
        log = build_log([(5.0, S, "a"), (5.5, E, "a")])
        qos = extract_qos(log, end_time=10.0, detectors=["a", "ghost"])
        assert set(qos) == {"a", "ghost"}
        assert qos["ghost"].mistakes == []


class TestMalformedLogs:
    def test_double_start_rejected(self):
        log = build_log([(1.0, S, "fd"), (2.0, S, "fd")])
        with pytest.raises(ValueError):
            extract_qos(log, end_time=10.0)

    def test_end_without_start_rejected(self):
        log = build_log([(1.0, E, "fd")])
        with pytest.raises(ValueError):
            extract_qos(log, end_time=10.0)

    def test_empty_log(self):
        qos = extract_qos(EventLog(), end_time=10.0, detectors=["fd"])["fd"]
        assert qos.td_samples == []
        assert qos.p_a == 1.0
        assert qos.up_time == 10.0
