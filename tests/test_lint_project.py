"""Project-pass tests: FDL010-FDL013 fixtures, engine parity, cache."""

import shutil
from dataclasses import replace
from pathlib import Path

from repro.lint import DEFAULT_CONFIG, lint_file, lint_paths
from repro.lint.cache import DEFAULT_CACHE_DIR, LintCache
from repro.lint.engine import write_baseline, load_baseline

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def lint_dir(subdir, config=DEFAULT_CONFIG, **kwargs):
    return lint_paths([str(FIXTURES / subdir)], config, **kwargs)


# ----------------------------------------------------------------------
# FDL010 clock/seed taint
# ----------------------------------------------------------------------
class TestClockSeedTaint:
    def test_positive_flags_laundered_clock_and_randomness(self):
        result = lint_dir("taint", select=["clock-seed-taint"])
        flagged = [f for f in result.findings
                   if f.path.endswith("sim/positive.py")]
        assert len(flagged) == 2
        assert all(f.code == "FDL010" for f in flagged)
        messages = " | ".join(f.message for f in flagged)
        assert "time.time" in messages
        assert "random.choice" in messages
        # the chain names every hop of the laundering
        assert "stamp() -> wall_clock_now()" in messages

    def test_pragma_on_primitive_does_not_launder(self):
        # runtime_ok.py carries a *justified* FDL001 pragma on its
        # time.time() — that accepts the direct call, but the function
        # still taints callers in the deterministic tier.
        result = lint_dir("taint", select=["clock-seed-taint"])
        negative = [f for f in result.findings
                    if f.path.endswith("sim/negative.py")]
        assert len(negative) == 1
        assert "runtime_now" in negative[0].message

    def test_whitelisted_runtime_file_does_not_taint(self):
        config = replace(
            DEFAULT_CONFIG,
            taint_runtime_files=DEFAULT_CONFIG.taint_runtime_files
            + ("taint/runtime_ok.py",),
        )
        result = lint_dir("taint", config, select=["clock-seed-taint"])
        assert [f for f in result.findings
                if f.path.endswith("negative.py")] == []
        # the positive cases still fire under the widened whitelist
        assert [f for f in result.findings
                if f.path.endswith("positive.py")]


# ----------------------------------------------------------------------
# FDL011 async-blocking reachability
# ----------------------------------------------------------------------
class TestAsyncBlockingReach:
    def test_positive_flags_two_hop_chain_from_coroutine(self):
        result = lint_dir("reach", select=["async-blocking-reach"])
        flagged = [f for f in result.findings
                   if f.path.endswith("positive.py")]
        assert len(flagged) == 1
        finding = flagged[0]
        assert finding.code == "FDL011"
        assert "checkpoint() -> persist()" in finding.message
        assert "blocks on" in finding.message

    def test_negative_offload_and_choke_point_are_clean(self):
        result = lint_dir("reach", select=["async-blocking-reach"])
        assert [f for f in result.findings
                if f.path.endswith("negative.py")] == []


# ----------------------------------------------------------------------
# FDL012 lock-read races
# ----------------------------------------------------------------------
class TestLockReadRace:
    def test_positive_flags_bare_reads_of_guarded_attrs(self):
        result = lint_dir("race", select=["lock-read-race"])
        flagged = [f for f in result.findings
                   if f.path.endswith("positive.py")]
        assert len(flagged) == 2
        assert {f.code for f in flagged} == {"FDL012"}
        attrs = " | ".join(f.message for f in flagged)
        assert "_samples" in attrs
        assert "_high_water" in attrs

    def test_negative_guarded_reads_and_held_only_helper_are_clean(self):
        result = lint_dir("race", select=["lock-read-race"])
        assert [f for f in result.findings
                if f.path.endswith("negative.py")] == []


# ----------------------------------------------------------------------
# FDL013 contract drift
# ----------------------------------------------------------------------
CONTRACT_CONFIG = replace(
    DEFAULT_CONFIG,
    contract_root=str(FIXTURES / "contract/root"),
    contract_metric_renderers=("code/exporter_fix.py",),
    contract_metric_docs=("docs/guide.md",),
    contract_span_emitters=("code/tracer_fix.py",),
    contract_span_analyzers=("code/analyze_fix.py",),
    contract_span_docs=("docs/guide.md",),
    contract_cli_files=("code/cli_fix.py",),
    contract_cli_docs=("docs/guide.md",),
)


class TestContractDrift:
    def run(self):
        return lint_dir(
            "contract/root/code", CONTRACT_CONFIG,
            select=["contract-drift"],
        )

    def test_metric_drift_both_directions(self):
        messages = [f.message for f in self.run().findings]
        assert any("fd_undocumented_thing_total" in m and "rendered" in m
                   for m in messages)
        assert any("fd_ghost_total" in m and "documented" in m
                   for m in messages)
        assert not any("fd_good_total" in m for m in messages)

    def test_span_kind_drift(self):
        messages = [f.message for f in self.run().findings]
        assert any("mystery-kind" in m for m in messages)
        assert not any("'known-kind'" in m for m in messages)

    def test_cli_surface_drift(self):
        messages = [f.message for f in self.run().findings]
        assert any("'hidden'" in m and "not documented" in m
                   for m in messages)
        assert any("--unknown" in m for m in messages)
        assert not any("--known" in m for m in messages)
        assert not any("'demo'" in m and "not documented" in m
                       for m in messages)

    def test_all_findings_are_fdl013(self):
        result = self.run()
        assert result.findings
        assert {f.code for f in result.findings} == {"FDL013"}

    def test_subset_lint_does_not_cross_fire(self):
        # Only the tracer file: the metric and CLI sub-checks are gated
        # on their source files and must stay silent.
        result = lint_paths(
            [str(FIXTURES / "contract/root/code/tracer_fix.py")],
            CONTRACT_CONFIG, select=["contract-drift"],
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# Engine parity: pragmas, selection, baselines, lint_file scope
# ----------------------------------------------------------------------
TAINTED_SIM = """\
from helpers import stamp


def run(trace):
    return stamp(){pragma}
"""

HELPERS = """\
import time


def stamp():
    return time.time()
"""


def _write_taint_tree(tmp_path, pragma=""):
    (tmp_path / "sim").mkdir(parents=True, exist_ok=True)
    (tmp_path / "helpers.py").write_text(HELPERS, encoding="utf-8")
    (tmp_path / "sim" / "run.py").write_text(
        TAINTED_SIM.format(pragma=pragma), encoding="utf-8"
    )
    return tmp_path


class TestProjectEngineParity:
    def test_project_findings_report_without_pragma(self, tmp_path):
        _write_taint_tree(tmp_path)
        result = lint_paths([str(tmp_path)], DEFAULT_CONFIG,
                            select=["clock-seed-taint"])
        assert [f.rule for f in result.findings] == ["clock-seed-taint"]

    def test_justified_pragma_suppresses_project_finding(self, tmp_path):
        _write_taint_tree(
            tmp_path,
            pragma="  # fdlint: disable=clock-seed-taint"
            " (test: accepted wall-clock bridge)",
        )
        result = lint_paths([str(tmp_path)], DEFAULT_CONFIG,
                            select=["clock-seed-taint"])
        assert result.findings == []
        assert len(result.suppressions) == 1
        assert result.suppressions[0].justified
        assert result.suppressions[0].suppressed[0].code == "FDL010"

    def test_unjustified_pragma_keeps_finding_and_raises_fdl000(
        self, tmp_path
    ):
        _write_taint_tree(
            tmp_path, pragma="  # fdlint: disable=clock-seed-taint"
        )
        result = lint_paths([str(tmp_path)], DEFAULT_CONFIG,
                            select=["clock-seed-taint"])
        rules = sorted(f.rule for f in result.findings)
        assert rules == ["clock-seed-taint", "unjustified-suppression"]
        assert result.suppressions == []

    def test_code_selector_works_for_project_rules(self, tmp_path):
        _write_taint_tree(tmp_path)
        by_code = lint_paths([str(tmp_path)], DEFAULT_CONFIG,
                             select=["FDL010"])
        assert [f.code for f in by_code.findings] == ["FDL010"]

    def test_ignore_drops_project_rule(self, tmp_path):
        _write_taint_tree(tmp_path)
        result = lint_paths([str(tmp_path)], DEFAULT_CONFIG,
                            ignore=["FDL010", "clock-discipline"])
        assert [f for f in result.findings if f.code == "FDL010"] == []

    def test_baseline_filters_project_findings(self, tmp_path):
        _write_taint_tree(tmp_path)
        full = lint_paths([str(tmp_path)], DEFAULT_CONFIG,
                          select=["clock-seed-taint"])
        assert full.findings
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), full)
        filtered = lint_paths(
            [str(tmp_path)], DEFAULT_CONFIG,
            select=["clock-seed-taint"],
            baseline=load_baseline(str(baseline_path)),
        )
        assert filtered.findings == []
        assert filtered.baselined == len(full.findings)

    def test_project_pass_can_be_disabled(self, tmp_path):
        _write_taint_tree(tmp_path)
        result = lint_paths([str(tmp_path)], DEFAULT_CONFIG,
                            select=["clock-seed-taint"], project=False)
        assert result.findings == []

    def test_lint_file_is_per_file_only(self):
        # Single-snippet unit tests must see exactly the lexical rules.
        result = lint_file(
            str(FIXTURES / "taint/sim/positive.py"), DEFAULT_CONFIG
        )
        assert [f for f in result.findings if f.code == "FDL010"] == []


# ----------------------------------------------------------------------
# Incremental cache
# ----------------------------------------------------------------------
class TestLintCache:
    def test_warm_run_hits_and_agrees(self, tmp_path):
        _write_taint_tree(tmp_path / "tree")
        cache_dir = str(tmp_path / "cache")
        cold = lint_paths([str(tmp_path / "tree")], DEFAULT_CONFIG,
                          cache_dir=cache_dir)
        assert cold.cache_hits == 0
        assert cold.cache_misses == cold.files_scanned
        warm = lint_paths([str(tmp_path / "tree")], DEFAULT_CONFIG,
                          cache_dir=cache_dir)
        assert warm.cache_hits == warm.files_scanned
        assert warm.cache_misses == 0
        assert warm.findings == cold.findings
        assert warm.suppressions == cold.suppressions

    def test_content_change_invalidates_only_that_file(self, tmp_path):
        tree = _write_taint_tree(tmp_path / "tree")
        cache_dir = str(tmp_path / "cache")
        lint_paths([str(tree)], DEFAULT_CONFIG, cache_dir=cache_dir)
        helpers = tree / "helpers.py"
        helpers.write_text(
            HELPERS + "\n\ndef extra():\n    return 1\n",
            encoding="utf-8",
        )
        second = lint_paths([str(tree)], DEFAULT_CONFIG,
                            cache_dir=cache_dir)
        assert second.cache_misses == 1
        assert second.cache_hits == second.files_scanned - 1

    def test_doc_edits_affect_cached_project_pass(self, tmp_path):
        # The project pass re-links summaries every run, so reference
        # (doc) drift surfaces even on a fully warm cache.
        root = tmp_path / "root"
        shutil.copytree(FIXTURES / "contract/root", root)
        config = replace(CONTRACT_CONFIG, contract_root=str(root))
        cache_dir = str(tmp_path / "cache")
        first = lint_paths([str(root / "code")], config,
                           select=["contract-drift"], cache_dir=cache_dir)
        guide = root / "docs" / "guide.md"
        guide.write_text(
            guide.read_text(encoding="utf-8")
            + "\nAlso renders `fd_undocumented_thing_total` now.\n"
            + "And the `mystery-kind` span.\n"
            + "\n    repro hidden --flag x\n",
            encoding="utf-8",
        )
        second = lint_paths([str(root / "code")], config,
                            select=["contract-drift"],
                            cache_dir=cache_dir)
        assert second.cache_hits == second.files_scanned
        fixed = {
            m for m in (f.message for f in first.findings)
        } - {m for m in (f.message for f in second.findings)}
        assert any("fd_undocumented_thing_total" in m for m in fixed)
        assert any("mystery-kind" in m for m in fixed)
        assert any("'hidden'" in m for m in fixed)

    def test_rule_ignore_set_salts_the_cache(self, tmp_path):
        _write_taint_tree(tmp_path / "tree")
        cache_dir = str(tmp_path / "cache")
        lint_paths([str(tmp_path / "tree")], DEFAULT_CONFIG,
                   cache_dir=cache_dir)
        narrowed = lint_paths(
            [str(tmp_path / "tree")], DEFAULT_CONFIG,
            ignore=["clock-discipline"], cache_dir=cache_dir,
        )
        # different selection -> different salt -> no stale reuse
        assert narrowed.cache_hits == 0
        assert [f for f in narrowed.findings
                if f.rule == "clock-discipline"] == []

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        tree = _write_taint_tree(tmp_path / "tree")
        cache_dir = tmp_path / "cache"
        lint_paths([str(tree)], DEFAULT_CONFIG, cache_dir=str(cache_dir))
        for entry in cache_dir.glob("*.json"):
            entry.write_text("{not json", encoding="utf-8")
        result = lint_paths([str(tree)], DEFAULT_CONFIG,
                            cache_dir=str(cache_dir))
        assert result.cache_hits == 0
        assert result.findings  # identical analysis, recomputed

    def test_default_cache_dir_constant(self):
        assert DEFAULT_CACHE_DIR == ".repro-lint-cache"
