"""Determinism tests for the parallel campaign runner.

The parallel runner is only acceptable if it is *invisible* in the
numbers: fanning the repetitions of a campaign over worker processes must
produce byte-identical pooled QoS to the serial loop, because every run's
seed is derived from the run index (``ExperimentConfig.with_run``), not
from any shared mutable state.
"""

import pytest

from repro.experiments.parallel import (
    default_workers,
    parallel_map,
    resolve_workers,
    run_repetitions_parallel,
)
from repro.experiments.runner import (
    QosRunSummary,
    aggregate_runs,
    run_qos_experiment,
    run_repetitions,
)
from repro.experiments.sweep import sweep_eta
from repro.neko.config import ExperimentConfig

DETECTORS = ["Last+JAC_med", "Mean+CI_med"]

CONFIG = ExperimentConfig(
    num_cycles=1200,
    mttc=60.0,
    ttr=10.0,
    eta=1.0,
    profile_name="italy-japan",
    seed=7,
)


def _assert_pooled_identical(pooled_a, pooled_b):
    assert set(pooled_a) == set(pooled_b)
    for detector_id in pooled_a:
        a, b = pooled_a[detector_id], pooled_b[detector_id]
        assert a.td_samples == b.td_samples
        assert a.tm_samples == b.tm_samples
        assert a.tmr_samples == b.tmr_samples
        assert a.undetected_crashes == b.undetected_crashes
        assert a.up_time == b.up_time
        assert a.suspected_up_time == b.suspected_up_time


class TestHelpers:
    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) == default_workers()
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            resolve_workers(-2)

    def test_parallel_map_preserves_order(self):
        payloads = list(range(20))
        assert parallel_map(_square, payloads, workers=2) == [
            p * p for p in payloads
        ]

    def test_parallel_map_inline_for_single_worker(self):
        assert parallel_map(_square, [3, 4], workers=1) == [9, 16]

    def test_summary_strips_event_log(self):
        result = run_qos_experiment(
            CONFIG.with_run(0), DETECTORS
        )
        summary = QosRunSummary.from_result(result)
        assert summary.qos is result.qos
        assert summary.heartbeats_sent == result.heartbeats_sent
        assert summary.crashes == result.crashes
        assert not hasattr(summary, "event_log")


class TestRunRepetitions:
    def test_parallel_matches_serial_bit_for_bit(self):
        serial = run_repetitions(CONFIG, 2, DETECTORS, workers=1)
        parallel = run_repetitions(CONFIG, 2, DETECTORS, workers=2)
        assert all(isinstance(r, QosRunSummary) for r in parallel)
        _assert_pooled_identical(aggregate_runs(serial), aggregate_runs(parallel))

    def test_run_order_is_preserved(self):
        results = run_repetitions_parallel(CONFIG, 3, DETECTORS, workers=2)
        assert [r.config.seed for r in results] == [
            CONFIG.with_run(k).seed for k in range(3)
        ]

    def test_build_kwargs_rejected_on_parallel_path(self):
        with pytest.raises(ValueError, match="build_kwargs"):
            run_repetitions(
                CONFIG, 2, DETECTORS, workers=2, record_events=True
            )

    def test_invalid_worker_counts(self):
        with pytest.raises(ValueError):
            run_repetitions_parallel(CONFIG, 2, DETECTORS, workers=0)
        with pytest.raises(ValueError):
            run_repetitions(CONFIG, 0, DETECTORS)


class TestSweepWorkers:
    def test_sweep_eta_parallel_matches_serial(self):
        base = ExperimentConfig(
            num_cycles=800, mttc=60.0, ttr=10.0, eta=1.0,
            profile_name="italy-japan", seed=3,
        )
        etas = [0.5, 1.0]
        serial = sweep_eta(
            base, etas, predictor_name="Last", margin_name="JAC_med", workers=1
        )
        parallel = sweep_eta(
            base, etas, predictor_name="Last", margin_name="JAC_med", workers=2
        )
        assert serial == parallel  # frozen dataclasses: field-wise equality
        assert [p.value for p in parallel] == etas


def _square(x):
    """Module-level so it pickles into pool workers."""
    return x * x
