"""Tests for the replicated KV store (`repro.kv`).

Unit tests cover the versioned store, the replica state machine, the
sticky-leadership election rule and the user-visible metrics assembly.
The property tests at the bottom pin the subsystem's two contracts: a
seeded simulated run is byte-stable (same config ⇒ identical event
record and QoS summary), and with ``write_concern`` covering every
backup no acknowledged write is lost across a single failover.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kv.client import KvClientLayer
from repro.kv.failover import FailoverState, ViewChange
from repro.kv.metrics import (
    compute_summary,
    merge_intervals,
    percentile,
    primary_at,
    promotion_delays,
)
from repro.kv.node import (
    KV_GET,
    KV_GET_OK,
    KV_REDIRECT,
    KV_REP,
    KV_REP_ACK,
    KV_SET,
    KV_SET_OK,
    KV_VIEW,
    KvNodeCore,
)
from repro.kv.sim import KvSimConfig, run_kv_sim
from repro.kv.store import VersionedStore, decode_version, encode_version
from repro.kv.workload import WorkloadSpec
from repro.net.message import Datagram

pytestmark = pytest.mark.kv


# ----------------------------------------------------------------------
# Versioned store
# ----------------------------------------------------------------------
class TestVersionedStore:
    def test_monotonic_apply_and_rejection(self):
        store = VersionedStore()
        assert store.apply("k", "a", (0, 1))
        assert store.apply("k", "b", (0, 2))
        assert not store.apply("k", "stale", (0, 1))
        assert store.get("k") == ("b", (0, 2))
        assert store.rejected_writes == 1

    def test_new_epoch_dominates_higher_seq(self):
        store = VersionedStore()
        assert store.apply("k", "old-primary", (0, 99))
        assert store.apply("k", "new-primary", (1, 1))
        assert store.get("k") == ("new-primary", (1, 1))

    def test_equal_version_is_idempotent(self):
        store = VersionedStore()
        assert store.apply("k", "a", (0, 1))
        applied = store.applied_writes
        assert store.apply("k", "a", (0, 1))  # retransmitted replication
        assert store.applied_writes == applied

    def test_has_seen_distinguishes_overwritten_from_lost(self):
        store = VersionedStore()
        store.apply("k", "a", (0, 1))
        store.apply("k", "b", (0, 2))
        assert store.has_seen("k", (0, 1))  # overwritten, not lost
        assert not store.has_seen("k", (0, 3))

    def test_version_codec_roundtrip(self):
        assert decode_version(encode_version((3, 7))) == (3, 7)


# ----------------------------------------------------------------------
# Replica state machine
# ----------------------------------------------------------------------
def _mesh(names, write_concern=0):
    return {name: KvNodeCore(name, names, write_concern=write_concern)
            for name in names}


class TestKvNodeCore:
    def test_backup_redirects_clients(self):
        cores = _mesh(["a", "b"])
        out = cores["b"].handle("client", KV_SET,
                                {"key": "k", "value": "v", "uid": "u1"})
        assert [(dst, kind) for dst, kind, _ in out] == [("client", KV_REDIRECT)]
        assert out[0][2]["primary"] == "a"

    def test_set_replicates_and_acks_immediately_at_w0(self):
        cores = _mesh(["a", "b", "c"])
        out = cores["a"].handle("client", KV_SET,
                                {"key": "k", "value": "v", "uid": "u1"})
        kinds = sorted((dst, kind) for dst, kind, _ in out)
        assert kinds == [("b", KV_REP), ("c", KV_REP), ("client", KV_SET_OK)]
        assert cores["a"].store.get("k") == ("v", (0, 1))

    def test_write_concern_delays_ack_until_backup_acks(self):
        cores = _mesh(["a", "b", "c"], write_concern=2)
        out = cores["a"].handle("client", KV_SET,
                                {"key": "k", "value": "v", "uid": "u1"})
        assert all(kind == KV_REP for _, kind, _ in out)
        reps = {dst: payload for dst, _, payload in out}
        # First backup ack: still pending.
        (ack_b,) = cores["b"].handle("a", KV_REP, reps["b"])
        assert cores["a"].handle("b", KV_REP_ACK, ack_b[2]) == []
        assert cores["a"].pending_writes == 1
        # Second ack releases the client ack.
        (ack_c,) = cores["c"].handle("a", KV_REP, reps["c"])
        (release,) = cores["a"].handle("c", KV_REP_ACK, ack_c[2])
        assert release[0] == "client" and release[1] == KV_SET_OK
        assert decode_version(release[2]["version"]) == (0, 1)
        assert cores["a"].pending_writes == 0

    def test_get_serves_value_and_version(self):
        cores = _mesh(["a", "b"])
        cores["a"].handle("client", KV_SET,
                          {"key": "k", "value": "v", "uid": "u1"})
        (reply,) = cores["a"].handle("client", KV_GET, {"key": "k", "uid": "u2"})
        assert reply[1] == KV_GET_OK
        assert reply[2]["value"] == "v"
        assert decode_version(reply[2]["version"]) == (0, 1)

    def test_retried_set_is_idempotent(self):
        cores = _mesh(["a", "b"])
        cores["a"].handle("client", KV_SET,
                          {"key": "k", "value": "v", "uid": "u1"})
        out = cores["a"].handle("client", KV_SET,
                                {"key": "k", "value": "v", "uid": "u1"})
        assert [(dst, kind) for dst, kind, _ in out] == [("client", KV_SET_OK)]
        assert decode_version(out[0][2]["version"]) == (0, 1)
        assert cores["a"].store.version("k") == (0, 1)  # not re-applied

    def test_retried_pending_set_redrives_replication_without_ack(self):
        # A retry of a write still awaiting backup acks must NOT take the
        # idempotent fast path: acking it would release a write with zero
        # backup acks, which is lost if the primary is then deposed.
        # Instead the primary re-sends kv-rep to the peers that have not
        # acked (the original replication may have been lost).
        cores = _mesh(["a", "b", "c"], write_concern=2)
        out = cores["a"].handle("client", KV_SET,
                                {"key": "k", "value": "v", "uid": "u1"})
        reps = {dst: payload for dst, _, payload in out}
        # b acks; the replication to c is lost in flight.
        (ack_b,) = cores["b"].handle("a", KV_REP, reps["b"])
        assert cores["a"].handle("b", KV_REP_ACK, ack_b[2]) == []
        # The client times out and retries the same uid.
        retry = cores["a"].handle("client", KV_SET,
                                  {"key": "k", "value": "v", "uid": "u1"})
        assert [(dst, kind) for dst, kind, _ in retry] == [("c", KV_REP)]
        assert cores["a"].pending_writes == 1
        # The re-driven replication completes the write concern.
        (ack_c,) = cores["c"].handle("a", KV_REP, retry[0][2])
        (release,) = cores["a"].handle("c", KV_REP_ACK, ack_c[2])
        assert release[0] == "client" and release[1] == KV_SET_OK
        assert decode_version(release[2]["version"]) == (0, 1)
        # Only now is the uid eligible for the idempotent re-ack.
        again = cores["a"].handle("client", KV_SET,
                                  {"key": "k", "value": "v", "uid": "u1"})
        assert [(dst, kind) for dst, kind, _ in again] == [("client", KV_SET_OK)]

    def test_superseded_replication_is_not_acked(self):
        # A backup whose store already holds a newer epoch's value must
        # not ack a deposed primary's older record: the rejection would
        # otherwise count towards the stale primary's write concern and
        # release a client ack for a version durable nowhere.
        cores = _mesh(["a", "b", "c"], write_concern=2)
        view = {"epoch": 1, "primary": "b"}
        cores["b"].handle("controller", KV_VIEW, view)
        cores["b"].handle("client", KV_SET,
                          {"key": "k", "value": "new", "uid": "u2"})
        stale_rep = {"key": "k", "value": "old",
                     "version": encode_version((0, 7)), "uid": "u1"}
        assert cores["b"].handle("a", KV_REP, stale_rep) == []
        # A retransmit of a record the backup once applied is re-acked.
        rep = {"key": "k2", "value": "v",
               "version": encode_version((0, 1)), "uid": "u3"}
        (first,) = cores["c"].handle("a", KV_REP, rep)
        (again,) = cores["c"].handle("a", KV_REP, rep)
        assert first[1] == again[1] == KV_REP_ACK

    def test_view_adoption_promotes_and_demotes(self):
        cores = _mesh(["a", "b"], write_concern=1)
        cores["a"].handle("client", KV_SET,
                          {"key": "k", "value": "v", "uid": "u1"})
        assert cores["a"].pending_writes == 1
        view = {"epoch": 1, "primary": "b"}
        cores["a"].handle("controller", KV_VIEW, view)
        cores["b"].handle("controller", KV_VIEW, view)
        # Deposed primary drops its pending table; promoted one restarts
        # its write sequence so new-epoch versions dominate.
        assert cores["a"].pending_writes == 0 and cores["a"].dropped_pending == 1
        assert cores["b"].is_primary and cores["b"].write_seq == 0
        cores["b"].handle("client", KV_SET,
                          {"key": "k", "value": "w", "uid": "u2"})
        # The new-epoch version dominates the deposed primary's (0, 1).
        assert cores["b"].store.version("k") == (1, 1)

    def test_stale_view_is_ignored(self):
        cores = _mesh(["a", "b"])
        cores["a"].handle("controller", KV_VIEW, {"epoch": 2, "primary": "b"})
        cores["a"].handle("controller", KV_VIEW, {"epoch": 1, "primary": "a"})
        assert cores["a"].primary == "b" and cores["a"].epoch == 2

    def test_write_concern_validation(self):
        with pytest.raises(ValueError):
            KvNodeCore("a", ["a", "b"], write_concern=2)


# ----------------------------------------------------------------------
# Client retry/redirect targeting
# ----------------------------------------------------------------------
class _StubTimer:
    def __init__(self):
        self.delay = None

    def arm(self, delay):
        self.delay = delay

    def cancel(self):
        self.delay = None


class _StubSim:
    now = 0.0


class _StubProcess:
    address = "client0"

    def __init__(self):
        self.sim = _StubSim()

    def timer(self, callback, name=""):
        return _StubTimer()


def _stub_client(nodes):
    """A KvClientLayer wired to a stub process, capturing what it sends."""
    client = KvClientLayer(
        nodes, WorkloadSpec(read_fraction=0.0), np.random.default_rng(0)
    )
    sent = []
    client._process = _StubProcess()
    client._send_down = sent.append
    client.on_attach()
    return client, sent


class TestKvClientTargeting:
    def test_redirect_to_newer_view_targets_named_primary(self):
        client, sent = _stub_client(["n0", "n1", "n2"])
        client._begin_op()
        first = sent[-1]
        assert first.destination == "n0"
        client.deliver(Datagram(source="n0", destination="client0",
                                kind=KV_REDIRECT,
                                payload={"uid": first.payload["uid"],
                                         "epoch": 1, "primary": "n1"}))
        # The retransmit goes straight to the primary the redirect named,
        # not to the next node in the timeout rotation.
        assert sent[-1].destination == "n1"

    def test_same_view_redirect_rotates_onward(self):
        client, sent = _stub_client(["n0", "n1", "n2"])
        client.epoch = 1
        client.primary = "n1"
        client._begin_op()
        assert sent[-1].destination == "n1"
        client._on_op_timeout()  # believed primary timed out: rotate
        assert sent[-1].destination == "n2"
        uid = sent[-1].payload["uid"]
        # n2 re-names the view the client already holds (dead primary,
        # not yet detected): rotate onward rather than ping-ponging back.
        client.deliver(Datagram(source="n2", destination="client0",
                                kind=KV_REDIRECT,
                                payload={"uid": uid, "epoch": 1,
                                         "primary": "n1"}))
        assert sent[-1].destination == "n0"


# ----------------------------------------------------------------------
# Election rule
# ----------------------------------------------------------------------
class TestFailoverState:
    def test_sticky_leadership_ignores_backup_suspicion(self):
        state = FailoverState(["a", "b", "c"])
        assert state.on_transition("b", True) is None
        assert state.view == ViewChange(epoch=0, primary="a")

    def test_primary_suspicion_promotes_next_unsuspected(self):
        state = FailoverState(["a", "b", "c"])
        state.on_transition("b", True)
        change = state.on_transition("a", True)
        assert change == ViewChange(epoch=1, primary="c")

    def test_total_outage_yields_primary_none_then_recovers(self):
        state = FailoverState(["a", "b"])
        state.on_transition("a", True)
        change = state.on_transition("b", True)
        assert change == ViewChange(epoch=2, primary=None)
        change = state.on_transition("b", False)
        assert change == ViewChange(epoch=3, primary="b")

    def test_no_failback_on_recovery(self):
        state = FailoverState(["a", "b"])
        assert state.on_transition("a", True) == ViewChange(1, "b")
        # Higher-priority node comes back: healthy primary stays.
        assert state.on_transition("a", False) is None
        assert state.primary == "b"


# ----------------------------------------------------------------------
# Metrics assembly
# ----------------------------------------------------------------------
class TestMetrics:
    def test_merge_intervals_unions_overlaps(self):
        merged = merge_intervals([(0.0, 2.0), (1.0, 3.0), (5.0, 6.0)])
        assert merged == [(0.0, 3.0), (5.0, 6.0)]

    def test_percentile_nearest_rank(self):
        values = [float(n) for n in range(1, 101)]
        assert percentile(values, 0.95) == 95.0
        assert percentile([], 0.95) is None

    def test_promotion_delay_measured_from_primary_crash(self):
        views = [
            (0.0, ViewChange(0, "a")),
            (10.5, ViewChange(1, "b")),
        ]
        assert primary_at(views, 10.0) == "a"
        assert promotion_delays(views, [10.0]) == [0.5]
        # A crash of a node that was not primary yields no sample.
        assert promotion_delays(views, [11.0]) == []


# ----------------------------------------------------------------------
# End-to-end simulated run
# ----------------------------------------------------------------------
SMALL = KvSimConfig(duration=30.0, eta=0.2, seed=11, clients=1)


class TestRunKvSim:
    def test_small_run_produces_both_qos_layers(self):
        result = run_kv_sim(SMALL)
        assert result.summary.ops > 0
        assert set(result.detector_qos) == set(SMALL.node_names)
        first_time, first_view = result.views[0]
        assert first_time == 0.0
        assert first_view == ViewChange(epoch=0, primary="node0")
        # The scheduled crash hit the epoch-0 primary and was detected.
        assert result.summary.primary_crashes == 1
        assert result.detector_qos["node0"].td_samples

    def test_summary_matches_recomputation(self):
        result = run_kv_sim(SMALL)
        recomputed = compute_summary(
            result.records,
            result.views,
            {},  # no stores: write-loss against the union of none
            primary_crash_times=result.primary_crash_times,
        )
        assert recomputed.ops == result.summary.ops
        assert recomputed.unavailability == result.summary.unavailability


# ----------------------------------------------------------------------
# Property: byte-stability of seeded runs
# ----------------------------------------------------------------------
class TestByteStability:
    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        eta=st.sampled_from([0.1, 0.25, 0.5]),
        write_concern=st.integers(min_value=0, max_value=1),
    )
    def test_same_config_same_bytes(self, seed, eta, write_concern):
        config = KvSimConfig(
            duration=15.0,
            eta=eta,
            seed=seed,
            clients=1,
            write_concern=write_concern,
            workload=WorkloadSpec(think_time=0.3),
        )
        first = run_kv_sim(config).canonical_json()
        second = run_kv_sim(config).canonical_json()
        assert first == second


# ----------------------------------------------------------------------
# Property: no acknowledged write lost across a single failover
# ----------------------------------------------------------------------
def _ack_writes(cores, primary, uids, alive):
    """Drive writes through the cores; return acked (key, version) pairs.

    Messages to crashed replicas (not in ``alive``) are dropped, exactly
    like the simulator's crash layer does.
    """
    acked = []
    for uid in uids:
        key = f"k{uid % 3}"
        queue = [(primary, "client", KV_SET,
                  {"key": key, "value": f"v{uid}", "uid": f"u{uid}"})]
        while queue:
            target, sender, kind, payload = queue.pop(0)
            if target == "client":
                if kind == KV_SET_OK:
                    acked.append((payload["key"],
                                  decode_version(payload["version"])))
                continue
            if target not in alive:
                continue  # crashed replica: datagram dropped
            for dst, out_kind, out_payload in cores[target].handle(
                    sender, kind, payload):
                queue.append((dst, target, out_kind, out_payload))
    return acked


class TestNoAckedWriteLost:
    @settings(max_examples=25, deadline=None)
    @given(
        before=st.integers(min_value=0, max_value=8),
        after=st.integers(min_value=0, max_value=8),
    )
    def test_full_write_concern_survives_one_failover(self, before, after):
        """Acked writes survive when every backup must ack (w = n-1)."""
        names = ["a", "b"]
        cores = _mesh(names, write_concern=1)
        acked = _ack_writes(cores, "a", range(before), alive={"a", "b"})
        # Node a crashes; the controller promotes b (epoch 1).
        cores["b"].handle("controller", KV_VIEW, {"epoch": 1, "primary": "b"})
        # Writes during the crash reach only b; with w=1 they stay
        # unacknowledged (the single backup is down), so they cannot be
        # counted as lost.
        acked += _ack_writes(cores, "b", range(100, 100 + after), alive={"b"})
        survivor = cores["b"].store
        for key, version in acked:
            assert survivor.has_seen(key, version), (
                f"acked write {key}@{version} missing from the promoted "
                f"primary"
            )

    def test_simulated_failover_loses_nothing_at_full_write_concern(self):
        config = KvSimConfig(
            duration=30.0, eta=0.2, seed=11, clients=1, write_concern=2,
        )
        result = run_kv_sim(config)
        assert result.summary.acked_writes > 0
        assert result.summary.lost_writes == 0
