"""Tests for campaign comparison statistics."""

import numpy as np
import pytest

from repro.experiments.compare import (
    compare_campaigns,
    format_comparison,
    welch_t,
)
from repro.experiments.runner import AggregatedQos


def aggregate(detector, td=(), tm=(), tmr=()):
    return AggregatedQos(
        detector=detector,
        td_samples=list(td),
        tm_samples=list(tm),
        tmr_samples=list(tmr),
        up_time=100.0,
    )


class TestWelchT:
    def test_zero_for_identical_samples(self):
        assert welch_t([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_sign_follows_direction(self):
        assert welch_t([1.0, 1.1, 0.9], [2.0, 2.1, 1.9]) > 0
        assert welch_t([2.0, 2.1, 1.9], [1.0, 1.1, 0.9]) < 0

    def test_large_for_separated_samples(self):
        rng = np.random.default_rng(0)
        a = rng.normal(1.0, 0.1, 100)
        b = rng.normal(2.0, 0.1, 100)
        assert welch_t(list(a), list(b)) > 20

    def test_degenerate_samples_give_zero(self):
        assert welch_t([1.0], [2.0, 3.0]) == 0.0
        assert welch_t([1.0, 1.0], [1.0, 1.0]) == 0.0


class TestCompareCampaigns:
    def test_detects_real_shift(self):
        rng = np.random.default_rng(1)
        a = {"fd": aggregate("fd", td=rng.normal(0.7, 0.05, 60))}
        b = {"fd": aggregate("fd", td=rng.normal(0.9, 0.05, 60))}
        result = compare_campaigns(a, b)
        td = result["fd"].metrics["td"]
        assert td.significant
        assert td.difference == pytest.approx(0.2, abs=0.03)
        assert result["fd"].any_significant()

    def test_no_false_alarm_on_same_distribution(self):
        rng = np.random.default_rng(2)
        a = {"fd": aggregate("fd", td=rng.normal(0.7, 0.05, 60))}
        b = {"fd": aggregate("fd", td=rng.normal(0.7, 0.05, 60))}
        result = compare_campaigns(a, b, confidence=0.99)
        assert not result["fd"].metrics["td"].significant

    def test_only_shared_detectors_compared(self):
        a = {"x": aggregate("x", td=[1.0, 1.1]), "only-a": aggregate("only-a")}
        b = {"x": aggregate("x", td=[1.0, 1.2]), "only-b": aggregate("only-b")}
        result = compare_campaigns(a, b)
        assert set(result) == {"x"}

    def test_missing_samples_skip_metric(self):
        a = {"fd": aggregate("fd", td=[1.0, 1.1])}
        b = {"fd": aggregate("fd", td=[1.0, 1.2])}
        result = compare_campaigns(a, b)
        assert "td" in result["fd"].metrics
        assert "tm" not in result["fd"].metrics

    def test_relative_change(self):
        a = {"fd": aggregate("fd", td=[1.0, 1.0, 1.0])}
        b = {"fd": aggregate("fd", td=[1.5, 1.5, 1.5])}
        result = compare_campaigns(a, b)
        assert result["fd"].metrics["td"].relative_change == pytest.approx(0.5)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            compare_campaigns({}, {}, confidence=1.5)


class TestFormatComparison:
    def test_renders_table(self):
        rng = np.random.default_rng(3)
        a = {"fd": aggregate("fd", td=rng.normal(0.7, 0.05, 50),
                             tmr=rng.normal(30.0, 5.0, 50))}
        b = {"fd": aggregate("fd", td=rng.normal(0.9, 0.05, 50),
                             tmr=rng.normal(30.0, 5.0, 50))}
        text = format_comparison(compare_campaigns(a, b))
        assert "fd" in text
        assert "SIGNIFICANT" in text
        assert "~same" in text

    def test_only_significant_filter(self):
        rng = np.random.default_rng(4)
        same = rng.normal(0.7, 0.05, 50)
        a = {"fd": aggregate("fd", td=same)}
        b = {"fd": aggregate("fd", td=same + rng.normal(0, 1e-6, 50))}
        text = format_comparison(
            compare_campaigns(a, b), only_significant=True
        )
        assert "SIGNIFICANT" not in text
