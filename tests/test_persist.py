"""Tests for event-log persistence."""

import pytest

from repro.nekostat.events import EventKind, StatEvent
from repro.nekostat.log import EventLog
from repro.nekostat.metrics import extract_qos
from repro.nekostat.persist import (
    StreamingEventWriter,
    event_from_json,
    event_to_json,
    iter_events,
    load_event_log,
    save_event_log,
)


def sample_log():
    log = EventLog()
    log.append(StatEvent(time=1.0, kind=EventKind.SENT, site="q", seq=0,
                         local_time=1.0))
    log.append(StatEvent(time=1.2, kind=EventKind.RECEIVED, site="p", seq=0))
    log.append(StatEvent(time=10.0, kind=EventKind.CRASH, site="q"))
    log.append(StatEvent(time=11.0, kind=EventKind.START_SUSPECT, site="p",
                         detector="fd", data={"timeout": 0.3}))
    log.append(StatEvent(time=40.0, kind=EventKind.RESTORE, site="q"))
    log.append(StatEvent(time=40.2, kind=EventKind.END_SUSPECT, site="p",
                         detector="fd", data={"timeout": 0.31}))
    return log


class TestJsonRoundtrip:
    def test_every_field_preserved(self):
        original = StatEvent(
            time=1.5, kind=EventKind.START_SUSPECT, site="p",
            detector="fd", local_time=1.49, data={"timeout": 0.3},
        )
        restored = event_from_json(event_to_json(original))
        assert restored == original

    def test_optional_fields_omitted(self):
        event = StatEvent(time=1.0, kind=EventKind.CRASH, site="monitored")
        line = event_to_json(event)
        assert '"d":' not in line and '"q":' not in line and '"x":' not in line
        assert event_from_json(line) == event

    def test_seq_roundtrip(self):
        event = StatEvent(time=1.0, kind=EventKind.SENT, site="q", seq=42)
        assert event_from_json(event_to_json(event)).seq == 42


class TestFileRoundtrip:
    def test_save_and_load(self, tmp_path):
        log = sample_log()
        path = tmp_path / "events.jsonl"
        written = save_event_log(log, path)
        assert written == len(log)
        restored = load_event_log(path)
        assert len(restored) == len(log)
        assert list(restored) == list(log)

    def test_qos_identical_after_roundtrip(self, tmp_path):
        log = sample_log()
        path = tmp_path / "events.jsonl"
        save_event_log(log, path)
        restored = load_event_log(path)
        original_qos = extract_qos(log, end_time=50.0)["fd"]
        restored_qos = extract_qos(restored, end_time=50.0)["fd"]
        assert restored_qos.td_samples == original_qos.td_samples
        assert restored_qos.p_a == original_qos.p_a

    def test_iter_events_streams(self, tmp_path):
        path = tmp_path / "events.jsonl"
        save_event_log(sample_log(), path)
        kinds = [event.kind for event in iter_events(path)]
        assert kinds[0] is EventKind.SENT
        assert kinds[-1] is EventKind.END_SUSPECT

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            event_to_json(StatEvent(time=1.0, kind=EventKind.CRASH, site="q"))
            + "\n\n"
        )
        assert len(list(iter_events(path))) == 1

    def test_corrupt_line_reported_with_number(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"t": 1.0}\n')
        with pytest.raises(ValueError, match=":1:"):
            list(iter_events(path))


class TestStreamingWriter:
    def test_writes_live_events(self, tmp_path):
        log = EventLog()
        path = tmp_path / "stream.jsonl"
        with StreamingEventWriter(log, path) as writer:
            log.append(StatEvent(time=1.0, kind=EventKind.CRASH, site="q"))
            log.append(StatEvent(time=2.0, kind=EventKind.RESTORE, site="q"))
        assert writer.written == 2
        restored = load_event_log(path)
        assert len(restored) == 2

    def test_events_after_close_ignored(self, tmp_path):
        log = EventLog()
        path = tmp_path / "stream.jsonl"
        writer = StreamingEventWriter(log, path)
        log.append(StatEvent(time=1.0, kind=EventKind.CRASH, site="q"))
        writer.close()
        log.append(StatEvent(time=2.0, kind=EventKind.RESTORE, site="q"))
        assert writer.written == 1
        assert len(load_event_log(path)) == 1

    def test_close_idempotent(self, tmp_path):
        writer = StreamingEventWriter(EventLog(), tmp_path / "s.jsonl")
        writer.close()
        writer.close()

    def test_full_experiment_roundtrip(self, tmp_path):
        from repro.experiments.runner import run_qos_experiment
        from repro.neko.config import ExperimentConfig

        config = ExperimentConfig(num_cycles=400, mttc=60.0, ttr=12.0, seed=5)
        result = run_qos_experiment(config, ["Last+JAC_med"])
        path = tmp_path / "run.jsonl"
        save_event_log(result.event_log, path)
        offline = extract_qos(
            load_event_log(path), end_time=config.duration
        )["Last+JAC_med"]
        online = result.qos["Last+JAC_med"]
        assert offline.td_samples == online.td_samples
        assert len(offline.mistakes) == len(online.mistakes)
