"""Tests for Heartbeater, SimCrash and MultiPlexer layers."""

import numpy as np
import pytest

from repro.fd.heartbeat import Heartbeater
from repro.fd.multiplexer import MultiPlexer
from repro.fd.simcrash import SimCrash
from repro.neko.layer import Layer, ProtocolStack
from repro.neko.system import NekoSystem
from repro.nekostat.events import EventKind
from repro.nekostat.log import EventLog
from repro.net.delay import ConstantDelay
from repro.net.message import Datagram

from tests.conftest import RecordingLayer


class TestHeartbeater:
    def wire(self, sim, event_log, eta=1.0, record=True):
        system = NekoSystem(sim)
        system.network.set_link("q", "p", ConstantDelay(0.1))
        heartbeater = Heartbeater("p", eta, event_log, record_sent_events=record)
        recorder = RecordingLayer()
        system.create_process("q", ProtocolStack([heartbeater]))
        system.create_process("p", ProtocolStack([recorder]))
        system.start()
        return heartbeater, recorder

    def test_sends_every_eta(self, sim, event_log):
        heartbeater, recorder = self.wire(sim, event_log)
        sim.run(until=5.5)
        assert heartbeater.sent == 6  # t = 0..5
        assert [m.seq for m in recorder.received] == [0, 1, 2, 3, 4, 5]

    def test_timestamps_are_send_times(self, sim, event_log):
        _, recorder = self.wire(sim, event_log, eta=2.0)
        sim.run(until=6.5)
        assert [m.timestamp for m in recorder.received] == [0.0, 2.0, 4.0, 6.0]

    def test_sent_events_recorded(self, sim, event_log):
        self.wire(sim, event_log)
        sim.run(until=3.5)
        sent = event_log.filter(kind=EventKind.SENT)
        assert [e.seq for e in sent] == [0, 1, 2, 3]

    def test_sent_events_optional(self, sim, event_log):
        self.wire(sim, event_log, record=False)
        sim.run(until=3.5)
        assert event_log.filter(kind=EventKind.SENT) == []

    def test_stop(self, sim, event_log):
        heartbeater, _ = self.wire(sim, event_log)
        sim.schedule(2.5, heartbeater.stop)
        sim.run(until=10.0)
        assert heartbeater.sent == 3

    def test_kind_is_heartbeat(self, sim, event_log):
        _, recorder = self.wire(sim, event_log)
        sim.run(until=0.5)
        assert recorder.received[0].kind == "heartbeat"

    def test_invalid_eta(self, event_log):
        with pytest.raises(ValueError):
            Heartbeater("p", 0.0, event_log)


class TestSimCrash:
    def wire(self, sim, event_log, schedule=None, rng=None, mttc=10.0, ttr=2.0):
        system = NekoSystem(sim)
        system.network.set_link("q", "p", ConstantDelay(0.0))
        heartbeater = Heartbeater("p", 1.0, event_log)
        simcrash = SimCrash(mttc, ttr, rng, event_log, schedule=schedule)
        recorder = RecordingLayer()
        system.create_process("q", ProtocolStack([heartbeater, simcrash]))
        system.create_process("p", ProtocolStack([recorder]))
        system.start()
        return simcrash, recorder

    def test_drops_messages_while_crashed(self, sim, event_log):
        simcrash, recorder = self.wire(sim, event_log, schedule=[(2.5, 5.5)])
        sim.run(until=8.5)
        # Heartbeats at 0,1,2 pass; 3,4,5 dropped; 6,7,8 pass.
        assert [m.seq for m in recorder.received] == [0, 1, 2, 6, 7, 8]
        assert simcrash.dropped_messages == 3

    def test_emits_crash_and_restore_events(self, sim, event_log):
        self.wire(sim, event_log, schedule=[(2.5, 5.5)])
        sim.run(until=8.0)
        assert event_log.crash_intervals(end_time=8.0) == [(2.5, 5.5)]

    def test_uniform_time_to_crash_range(self, sim, event_log):
        # With MTTC the delay to first crash is in [MTTC/2, 3*MTTC/2].
        rng = np.random.default_rng(0)
        simcrash, _ = self.wire(sim, event_log, rng=rng, mttc=10.0, ttr=1.0)
        sim.run(until=200.0)
        crashes = event_log.filter(kind=EventKind.CRASH)
        restores = event_log.filter(kind=EventKind.RESTORE)
        assert len(crashes) >= 10
        gaps = [c.time - r.time for r, c in zip(restores, crashes[1:])]
        assert all(5.0 <= gap <= 15.0 for gap in gaps)

    def test_ttr_is_constant(self, sim, event_log):
        rng = np.random.default_rng(1)
        self.wire(sim, event_log, rng=rng, mttc=10.0, ttr=2.0)
        sim.run(until=200.0)
        for crash_time, restore_time in event_log.crash_intervals(end_time=200.0):
            assert restore_time - crash_time == pytest.approx(2.0)

    def test_deliver_also_dropped_while_crashed(self, sim, event_log):
        simcrash, _ = self.wire(sim, event_log, schedule=[(2.5, 5.5)])
        upper = RecordingLayer()
        upper._down = simcrash
        simcrash._up = upper
        sim.run(until=3.0)  # now crashed
        simcrash.deliver(Datagram(source="p", destination="q", kind="t"))
        assert upper.received == []

    def test_disabled_is_transparent(self, sim, event_log):
        system = NekoSystem(sim)
        system.network.set_link("q", "p", ConstantDelay(0.0))
        heartbeater = Heartbeater("p", 1.0, event_log)
        simcrash = SimCrash(10.0, 1.0, None, event_log, enabled=False)
        recorder = RecordingLayer()
        system.create_process("q", ProtocolStack([heartbeater, simcrash]))
        system.create_process("p", ProtocolStack([recorder]))
        system.start()
        sim.run(until=20.0)
        assert event_log.filter(kind=EventKind.CRASH) == []
        assert len(recorder.received) == 21

    def test_requires_rng_when_enabled_without_schedule(self, event_log):
        with pytest.raises(ValueError):
            SimCrash(10.0, 1.0, None, event_log)

    def test_invalid_schedule_rejected(self, event_log):
        with pytest.raises(ValueError):
            SimCrash(10.0, 1.0, None, event_log, schedule=[(5.0, 4.0)])
        with pytest.raises(ValueError):
            SimCrash(10.0, 1.0, None, event_log, schedule=[(5.0, 8.0), (7.0, 9.0)])

    def test_invalid_parameters(self, event_log):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            SimCrash(0.0, 1.0, rng, event_log)
        with pytest.raises(ValueError):
            SimCrash(10.0, -1.0, rng, event_log)


class TestMultiPlexer:
    def test_fans_out_to_all_uppers(self, sim):
        recorders = [RecordingLayer(f"r{i}") for i in range(3)]
        multiplexer = MultiPlexer(recorders)
        system = NekoSystem(sim)
        system.create_process("p", ProtocolStack([multiplexer]))
        message = Datagram(source="q", destination="p", kind="t", seq=1)
        multiplexer.deliver(message)
        for recorder in recorders:
            assert recorder.received == [message]
        assert multiplexer.messages_fanned_out == 1

    def test_identical_message_instance_to_every_upper(self, sim):
        # The fair-comparison guarantee: every upper sees the same arrival.
        recorders = [RecordingLayer(f"r{i}") for i in range(2)]
        multiplexer = MultiPlexer(recorders)
        system = NekoSystem(sim)
        system.create_process("p", ProtocolStack([multiplexer]))
        message = Datagram(source="q", destination="p", kind="t", seq=1)
        multiplexer.deliver(message)
        assert recorders[0].received[0] is recorders[1].received[0]

    def test_uppers_attached_to_process(self, sim):
        recorder = RecordingLayer()
        multiplexer = MultiPlexer([recorder])
        system = NekoSystem(sim)
        process = system.create_process("p", ProtocolStack([multiplexer]))
        assert recorder.process is process

    def test_uppers_can_send_down_through_multiplexer(self, sim):
        sender = Layer("sender")
        multiplexer = MultiPlexer([sender])
        system = NekoSystem(sim)
        system.network.set_link("p", "q", ConstantDelay(0.0))
        recorder = RecordingLayer()
        system.create_process("p", ProtocolStack([multiplexer]))
        system.create_process("q", ProtocolStack([recorder]))
        sender.send_down(Datagram(source="p", destination="q", kind="t"))
        sim.run()
        assert len(recorder.received) == 1

    def test_received_events_recorded_once(self, sim, event_log):
        recorders = [RecordingLayer(f"r{i}") for i in range(5)]
        multiplexer = MultiPlexer(recorders, event_log, record_received_events=True)
        system = NekoSystem(sim)
        system.create_process("p", ProtocolStack([multiplexer]))
        multiplexer.deliver(Datagram(source="q", destination="p", kind="t", seq=7))
        received = event_log.filter(kind=EventKind.RECEIVED)
        assert len(received) == 1
        assert received[0].seq == 7

    def test_add_upper_after_attach(self, sim):
        multiplexer = MultiPlexer([])
        system = NekoSystem(sim)
        system.create_process("p", ProtocolStack([multiplexer]))
        late = RecordingLayer()
        multiplexer.add_upper(late)
        multiplexer.deliver(Datagram(source="q", destination="p", kind="t", seq=0))
        assert len(late.received) == 1

    def test_on_start_propagates_to_uppers(self, sim):
        started = []

        class Probe(Layer):
            def on_start(self):
                started.append(self.name)

        multiplexer = MultiPlexer([Probe("a"), Probe("b")])
        system = NekoSystem(sim)
        system.create_process("p", ProtocolStack([multiplexer]))
        system.start()
        assert started == ["a", "b"]
