"""Tests for the experiment harness: runner, accuracy, characterize, qos, report."""

import math

import pytest

from repro.experiments.accuracy import (
    collect_delay_trace,
    predictor_accuracy,
    rank_predictors,
)
from repro.experiments.characterize import characterize_profile
from repro.experiments.qos import FIGURE_METRICS, figure_data, qos_metric_value
from repro.experiments.report import (
    format_figure_grid,
    format_predictor_accuracy_table,
    format_qos_report,
    format_wan_table,
)
from repro.experiments.runner import (
    aggregate_runs,
    build_qos_system,
    run_qos_experiment,
    run_repetitions,
)
from repro.neko.config import ExperimentConfig
from repro.net.wan import lan_profile


SMALL = ExperimentConfig(num_cycles=400, mttc=60.0, ttr=12.0, seed=3)
DETECTORS = ["Last+JAC_med", "Mean+CI_low"]


class TestRunner:
    def test_build_returns_components(self):
        parts = build_qos_system(SMALL, DETECTORS)
        assert set(parts) >= {
            "sim", "system", "event_log", "handler", "heartbeater",
            "simcrash", "multiplexer", "detectors", "link",
        }
        assert set(parts["detectors"]) == set(DETECTORS)

    def test_run_produces_qos_for_each_detector(self):
        result = run_qos_experiment(SMALL, DETECTORS)
        assert set(result.qos) == set(DETECTORS)
        for qos in result.qos.values():
            assert qos.observation_time == SMALL.duration

    def test_crashes_injected(self):
        result = run_qos_experiment(SMALL, DETECTORS)
        assert result.crashes >= 3
        for qos in result.qos.values():
            assert len(qos.td_samples) + qos.undetected_crashes >= result.crashes - 1

    def test_deterministic_given_seed(self):
        a = run_qos_experiment(SMALL, DETECTORS)
        b = run_qos_experiment(SMALL, DETECTORS)
        assert a.crashes == b.crashes
        for detector_id in DETECTORS:
            assert a.qos[detector_id].td_samples == b.qos[detector_id].td_samples

    def test_different_seeds_differ(self):
        a = run_qos_experiment(SMALL, DETECTORS)
        b = run_qos_experiment(SMALL.with_run(1), DETECTORS)
        assert a.qos[DETECTORS[0]].td_samples != b.qos[DETECTORS[0]].td_samples

    def test_all_detectors_see_same_crashes(self):
        result = run_qos_experiment(SMALL, DETECTORS)
        counts = {
            d: len(q.td_samples) + q.undetected_crashes
            for d, q in result.qos.items()
        }
        assert len(set(counts.values())) == 1

    def test_run_repetitions_distinct_seeds(self):
        results = run_repetitions(SMALL, 2, DETECTORS)
        assert len(results) == 2
        assert results[0].config.seed != results[1].config.seed

    def test_run_repetitions_validation(self):
        with pytest.raises(ValueError):
            run_repetitions(SMALL, 0, DETECTORS)

    def test_aggregate_pools_samples(self):
        results = run_repetitions(SMALL, 2, DETECTORS)
        pooled = aggregate_runs(results)
        for detector_id in DETECTORS:
            individual = sum(len(r.qos[detector_id].td_samples) for r in results)
            assert len(pooled[detector_id].td_samples) == individual
            assert pooled[detector_id].up_time == pytest.approx(
                sum(r.qos[detector_id].up_time for r in results)
            )

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_runs([])

    def test_clock_offset_biases_detection(self):
        # A monitor clock ahead of the monitored one inflates measured
        # delays, inflating time-outs; behind deflates them.  Either way
        # the experiment must still run and detect crashes.
        config = ExperimentConfig(
            num_cycles=300, mttc=60.0, ttr=12.0, seed=3, clock_offset=0.05
        )
        result = run_qos_experiment(config, ["Last+JAC_med"])
        assert len(result.qos["Last+JAC_med"].td_samples) >= 2


class TestAccuracyExperiment:
    def test_trace_length_reflects_loss(self):
        trace = collect_delay_trace(count=5000, seed=1)
        assert 4900 <= len(trace) <= 5000  # < 1% loss

    def test_trace_without_loss_is_full_length(self):
        trace = collect_delay_trace(count=1000, seed=1, apply_loss=False)
        assert len(trace) == 1000

    def test_accuracy_returns_all_predictors(self):
        trace = collect_delay_trace(count=3000, seed=1)
        accuracy = predictor_accuracy(trace)
        assert set(accuracy) == {"Arima", "Last", "LPF", "Mean", "WinMean"}
        assert all(v > 0 and math.isfinite(v) for v in accuracy.values())

    def test_rank_sorted_ascending(self):
        ranking = rank_predictors({"a": 3.0, "b": 1.0, "c": 2.0})
        assert [name for name, _ in ranking] == ["b", "c", "a"]

    def test_arima_most_accurate_on_wan_trace(self):
        # The paper's headline Table 3 result.
        trace = collect_delay_trace(count=20000, seed=5)
        ranking = rank_predictors(predictor_accuracy(trace))
        assert ranking[0][0] == "Arima"

    def test_mean_less_accurate_than_windowed(self):
        trace = collect_delay_trace(count=20000, seed=5)
        accuracy = predictor_accuracy(trace)
        assert accuracy["WinMean"] < accuracy["Mean"]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            collect_delay_trace(count=0)


class TestCharacterize:
    def test_italy_japan_table4(self):
        result = characterize_profile(samples=20000, seed=2)
        delay = result.delay_ms()
        assert 195 < delay.mean < 210
        assert 4 < delay.std < 10
        assert delay.minimum >= 192.0
        assert result.hops == 18
        assert 0.0 < result.loss_probability < 0.01

    def test_lan_profile(self):
        result = characterize_profile(lan_profile(), samples=5000)
        assert result.delay_ms().mean < 2.0

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            characterize_profile(samples=1)


class TestFigureData:
    def test_metric_extraction(self):
        result = run_qos_experiment(SMALL, DETECTORS)
        qos = result.qos[DETECTORS[0]]
        assert qos_metric_value(qos, "td") == (
            qos.t_d.mean if qos.t_d else math.nan
        )
        assert qos_metric_value(qos, "pa") == qos.p_a

    def test_unknown_metric_rejected(self):
        result = run_qos_experiment(SMALL, DETECTORS)
        with pytest.raises(KeyError):
            qos_metric_value(result.qos[DETECTORS[0]], "latency")

    def test_figure_data_layout(self):
        result = run_qos_experiment(SMALL, DETECTORS)
        data = figure_data(result.qos, "td")
        assert data["Last"]["JAC_med"] > 0
        assert data["Mean"]["CI_low"] > 0
        assert data["Arima"] == {}  # not in this partial run

    def test_all_figure_metrics_defined(self):
        assert set(FIGURE_METRICS) == {"td", "tdu", "tm", "tmr", "pa"}


class TestReportFormatting:
    def test_accuracy_table_ranks_and_scales(self):
        text = format_predictor_accuracy_table({"Arima": 3e-5, "Last": 5e-5})
        lines = text.splitlines()
        assert "Table 3" in lines[0]
        arima_line = next(l for l in lines if l.startswith("Arima"))
        assert "30.000" in arima_line  # 3e-5 s^2 -> 30 ms^2
        assert lines.index(arima_line) < lines.index(
            next(l for l in lines if l.startswith("Last"))
        )

    def test_wan_table_contains_fields(self):
        result = characterize_profile(samples=2000, seed=0)
        text = format_wan_table(result)
        for field in ["Mean one-way delay", "Standard deviation", "hops",
                      "Loss probability"]:
            assert field.lower() in text.lower()

    def test_figure_grid_layout(self):
        data = {"Last": {"CI_low": 0.5, "JAC_high": 0.7}}
        text = format_figure_grid(data, "T_D")
        assert "500.0" in text and "700.0" in text
        assert "-" in text  # missing cells rendered as dashes

    def test_figure_grid_probability_scale(self):
        data = {"Last": {"CI_low": 0.999}}
        text = format_figure_grid(data, "P_A", unit="", scale=1.0, decimals=3)
        assert "0.999" in text

    def test_qos_report_combines_metrics(self):
        data = {"Last": {"CI_low": 0.5}}
        text = format_qos_report({"td": data, "pa": {"Last": {"CI_low": 0.99}}})
        assert "Figure 4" in text and "Figure 8" in text
