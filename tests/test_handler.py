"""Tests for the FDStatHandler (the paper's FD_StatHandler)."""

import pytest

from repro.nekostat.events import EventKind, StatEvent
from repro.nekostat.handler import FDStatHandler
from repro.nekostat.log import EventLog


def feed(log, entries):
    for time, kind, detector, seq in entries:
        site = "monitor" if detector else "monitored"
        log.append(StatEvent(time=time, kind=kind, site=site,
                             detector=detector, seq=seq))


class TestOnlineCounters:
    def test_counts_event_kinds(self, event_log):
        handler = FDStatHandler(event_log)
        feed(event_log, [
            (0.0, EventKind.SENT, None, 0),
            (0.2, EventKind.RECEIVED, None, 0),
            (1.0, EventKind.SENT, None, 1),
            (5.0, EventKind.CRASH, None, None),
            (6.0, EventKind.START_SUSPECT, "fd", None),
            (9.0, EventKind.RESTORE, None, None),
            (9.2, EventKind.END_SUSPECT, "fd", None),
        ])
        assert handler.heartbeats_sent == 2
        assert handler.heartbeats_received == 1
        assert handler.crashes == 1
        assert handler.suspect_transitions == 2

    def test_subscribe_false_needs_manual_feed(self, event_log):
        handler = FDStatHandler(event_log, subscribe=False)
        feed(event_log, [(0.0, EventKind.SENT, None, 0)])
        assert handler.heartbeats_sent == 0
        handler.handle(event_log[0])
        assert handler.heartbeats_sent == 1

    def test_qos_delegates_to_extractor(self, event_log):
        handler = FDStatHandler(event_log)
        feed(event_log, [
            (5.0, EventKind.CRASH, None, None),
            (6.0, EventKind.START_SUSPECT, "fd", None),
            (9.0, EventKind.RESTORE, None, None),
            (9.2, EventKind.END_SUSPECT, "fd", None),
        ])
        qos = handler.qos(end_time=20.0)["fd"]
        assert qos.td_samples == pytest.approx([1.0])

    def test_results_bundle(self, event_log):
        handler = FDStatHandler(event_log)
        feed(event_log, [
            (0.0, EventKind.SENT, None, 0),
            (6.0, EventKind.START_SUSPECT, "fd", None),
            (7.0, EventKind.END_SUSPECT, "fd", None),
        ])
        results = handler.results()
        assert results["heartbeats_sent"] == 1
        assert results["suspect_transitions"] == 2
        assert "fd" in results["qos"]

    def test_log_property(self, event_log):
        handler = FDStatHandler(event_log)
        assert handler.log is event_log
