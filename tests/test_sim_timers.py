"""Tests for Timer and PeriodicTimer."""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.process import PeriodicTimer, Timer


class TestTimer:
    def test_fires_at_deadline(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.arm(2.0)
        sim.run()
        assert fired == [2.0]

    def test_arm_at_absolute(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.arm_at(4.0)
        sim.run()
        assert fired == [4.0]

    def test_rearm_replaces_deadline(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.arm(5.0)
        timer.arm(1.0)
        sim.run()
        assert fired == [1.0]

    def test_rearm_extends_deadline(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.arm(1.0)
        timer.arm(5.0)
        sim.run()
        assert fired == [5.0]

    def test_cancel_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(True))
        timer.arm(1.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_cancel_unarmed_is_noop(self, sim):
        Timer(sim, lambda: None).cancel()

    def test_armed_and_deadline_properties(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        assert timer.deadline is None
        timer.arm(3.0)
        assert timer.armed
        assert timer.deadline == 3.0

    def test_not_armed_after_firing(self, sim):
        timer = Timer(sim, lambda: None)
        timer.arm(1.0)
        sim.run()
        assert not timer.armed

    def test_rearm_from_callback(self, sim):
        fired = []

        def on_fire():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.arm(1.0)

        timer = Timer(sim, on_fire)
        timer.arm(1.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_negative_delay_rejected(self, sim):
        timer = Timer(sim, lambda: None)
        with pytest.raises(SimulationError):
            timer.arm(-1.0)


class TestPeriodicTimer:
    def test_ticks_at_multiples_of_period(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 2.0, lambda k: ticks.append((k, sim.now)))
        timer.start()
        sim.run(until=7.0)
        assert ticks == [(0, 0.0), (1, 2.0), (2, 4.0), (3, 6.0)]

    def test_tick_numbers_are_sequence_numbers(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 1.0, ticks.append)
        timer.start()
        sim.run(until=4.5)
        assert ticks == [0, 1, 2, 3, 4]

    def test_no_cumulative_float_drift(self, sim):
        times = []
        timer = PeriodicTimer(sim, 0.1, lambda k: times.append(sim.now))
        timer.start()
        sim.run(until=100.0)
        # The 1000th tick must land exactly on 0.1 * 1000, not accumulate error.
        assert times[1000] == pytest.approx(100.0, abs=1e-9)
        assert len(times) == 1001

    def test_stop_halts_ticks(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 1.0, ticks.append)
        timer.start()
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert ticks == [0, 1, 2]

    def test_restart_skips_missed_ticks(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 1.0, ticks.append)
        timer.start()
        sim.schedule(1.5, timer.stop)
        sim.schedule(4.5, timer.start)
        sim.run(until=7.5)
        # Ticks 2, 3, 4 elapsed while stopped; sequence resumes at 5.
        assert ticks == [0, 1, 5, 6, 7]

    def test_start_is_idempotent(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 1.0, ticks.append)
        timer.start()
        timer.start()
        sim.run(until=2.5)
        assert ticks == [0, 1, 2]

    def test_custom_start_time(self, sim):
        times = []
        timer = PeriodicTimer(sim, 1.0, lambda k: times.append(sim.now), start=5.0)
        timer.start()
        sim.run(until=7.5)
        assert times == [5.0, 6.0, 7.0]

    def test_running_property(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda k: None)
        assert not timer.running
        timer.start()
        assert timer.running
        timer.stop()
        assert not timer.running

    def test_invalid_period_rejected(self, sim):
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0.0, lambda k: None)

    def test_period_property(self, sim):
        assert PeriodicTimer(sim, 2.5, lambda k: None).period == 2.5
