"""Online drift monitoring: KS statistic, verdicts, metrics, live /drift.

The unit layer feeds the :class:`DriftMonitor` hand-built delay streams
(stable vs spiked) and checks verdicts, loss estimation, span emission
on flips, and the Prometheus rendering.  The live layer (network/chaos
marked) runs the real loopback daemon twice — fault-free and under an
injected delay spike — and asserts ``/drift`` separates the two, the
second half of the PR's acceptance criterion.
"""

import asyncio
import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs import TraceRecorder
from repro.obs.drift import DriftMonitor, ks_distance

pytestmark = pytest.mark.obs


class TestKsDistance:
    def test_identical_samples_are_zero(self):
        xs = [0.1, 0.2, 0.3, 0.4]
        assert ks_distance(xs, xs) == 0.0

    def test_disjoint_samples_are_one(self):
        assert ks_distance([1.0, 2.0], [10.0, 20.0]) == pytest.approx(1.0)

    def test_half_overlap(self):
        # b is a's upper half: F_a - F_b peaks at 0.5 at the median.
        a = [1.0, 2.0, 3.0, 4.0]
        b = [3.0, 4.0]
        assert ks_distance(a, b) == pytest.approx(0.5)

    def test_matches_brute_force_on_random_samples(self, rng):
        a = rng.normal(0.1, 0.02, size=200)
        b = rng.normal(0.12, 0.03, size=150)
        grid = np.concatenate([a, b])
        brute = max(
            abs((a <= x).mean() - (b <= x).mean()) for x in grid
        )
        assert ks_distance(a, b) == pytest.approx(brute)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            ks_distance([], [1.0])


def feed(monitor, endpoint, delays, *, start_seq=0, t0=0.0, eta=0.1):
    for offset, delay in enumerate(delays):
        monitor.observe(
            endpoint, t0 + offset * eta, float(delay), seq=start_seq + offset
        )


class TestDriftMonitor:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            DriftMonitor(window_samples=1)
        with pytest.raises(ValueError):
            DriftMonitor(baseline_samples=1)
        with pytest.raises(ValueError):
            DriftMonitor(min_samples=0)
        with pytest.raises(ValueError):
            DriftMonitor(ks_threshold=0.0)
        with pytest.raises(ValueError):
            DriftMonitor(baseline=[0.1])

    def test_self_baseline_freezes_then_window_fills(self, rng):
        monitor = DriftMonitor(
            window_samples=64, baseline_samples=64, min_samples=16
        )
        feed(monitor, "q", rng.normal(0.1, 0.01, size=32))
        report = monitor.evaluate(10.0)
        assert report["endpoints"]["q"]["status"] == "collecting-baseline"
        feed(monitor, "q", rng.normal(0.1, 0.01, size=32), start_seq=32)
        # Baseline frozen at 64; the window is still empty.
        assert monitor.evaluate(20.0)["endpoints"]["q"]["status"] == (
            "filling-window"
        )
        feed(monitor, "q", rng.normal(0.1, 0.01, size=32), start_seq=64)
        entry = monitor.evaluate(30.0)["endpoints"]["q"]
        assert entry["status"] == "ok"
        assert entry["drifted"] is False
        assert entry["ks"] < 0.35

    def test_shared_baseline_skips_collection(self, rng):
        baseline = rng.normal(0.1, 0.01, size=256)
        monitor = DriftMonitor(
            window_samples=64, baseline=baseline, min_samples=16
        )
        feed(monitor, "q", rng.normal(0.1, 0.01, size=32))
        entry = monitor.evaluate(5.0)["endpoints"]["q"]
        assert entry["status"] == "ok"
        assert entry["baseline_count"] == 256
        assert not entry["drifted"]

    def test_delay_spike_flags_drift_and_recovers(self, rng):
        baseline = rng.normal(0.1, 0.01, size=256)
        monitor = DriftMonitor(
            window_samples=64, baseline=baseline, min_samples=32
        )
        feed(monitor, "q", rng.normal(0.1, 0.01, size=64))
        assert not monitor.evaluate(1.0)["endpoints"]["q"]["drifted"]
        # A +300ms spike floods the rolling window.
        feed(monitor, "q", rng.normal(0.4, 0.01, size=64), start_seq=64)
        report = monitor.evaluate(2.0)
        assert report["drifted"] == ["q"]
        entry = report["endpoints"]["q"]
        assert entry["ks"] >= 0.35
        assert entry["mean_shift_sigmas"] > 3.0
        assert entry["window_mean"] == pytest.approx(0.4, abs=0.02)
        # The spike passes; the window refills with baseline-like delays.
        feed(monitor, "q", rng.normal(0.1, 0.01, size=64), start_seq=128)
        assert monitor.evaluate(3.0)["drifted"] == []

    def test_mean_shift_triggers_on_near_constant_baseline(self):
        monitor = DriftMonitor(
            window_samples=16, baseline=[0.1] * 64, min_samples=8
        )
        feed(monitor, "q", [0.1001] * 16)
        entry = monitor.evaluate(1.0)["endpoints"]["q"]
        # KS saturates on any shift of a constant; the verdict is
        # reached either way, with an enormous reported sigma shift
        # (the baseline std is zero up to float rounding).
        assert entry["drifted"]
        assert entry["mean_shift_sigmas"] > 1e6

    def test_loss_rate_from_sequence_gaps(self, rng):
        baseline = rng.normal(0.1, 0.01, size=64)
        monitor = DriftMonitor(
            window_samples=32, baseline=baseline, min_samples=8
        )
        # Every other heartbeat lost: seqs 0, 2, 4, ... -> 50% loss.
        for i in range(32):
            monitor.observe("q", i * 0.1, 0.1, seq=2 * i)
        entry = monitor.evaluate(5.0)["endpoints"]["q"]
        assert entry["window_loss_rate"] == pytest.approx(0.5, abs=0.02)

    def test_verdict_flip_emits_calibration_drift_span(self, rng):
        tracer = TraceRecorder(ring_capacity=64)
        baseline = rng.normal(0.1, 0.01, size=128)
        monitor = DriftMonitor(
            window_samples=32, baseline=baseline, min_samples=8,
            tracer=tracer,
        )
        feed(monitor, "q", rng.normal(0.5, 0.01, size=32))
        monitor.evaluate(1.0)
        monitor.evaluate(2.0)  # still drifted: no second span
        feed(monitor, "q", rng.normal(0.1, 0.01, size=32), start_seq=32)
        monitor.evaluate(3.0)  # recovered
        spans = tracer.tail(64, kind="calibration-drift")
        assert [s["seq"] for s in spans] == [1, 0]
        drifted_span = spans[0]
        assert drifted_span["endpoint"] == "q"
        assert drifted_span["delay"] == pytest.approx(0.5, abs=0.02)
        assert drifted_span["timeout"] == pytest.approx(0.1, abs=0.02)
        assert drifted_span["deadline"] >= 0.35

    def test_calibration_delta_appears_past_calibrate_min(self, rng):
        baseline = np.maximum(rng.normal(0.1, 0.005, size=1200), 0.001)
        monitor = DriftMonitor(
            window_samples=1200, baseline=baseline, min_samples=64,
            calibrate_min=1000,
        )
        feed(monitor, "q", np.maximum(rng.normal(0.2, 0.005, size=1200), 0.001))
        entry = monitor.evaluate(1.0)["endpoints"]["q"]
        assert "calibration" in entry
        delta = entry["calibration"]
        assert set(delta) == {"floor", "base_queue", "white_std"}
        assert delta["floor"]["window"] > delta["floor"]["baseline"]

    def test_small_windows_skip_calibration(self, rng):
        monitor = DriftMonitor(
            window_samples=64, baseline=rng.normal(0.1, 0.01, size=64),
            min_samples=8,
        )
        feed(monitor, "q", rng.normal(0.1, 0.01, size=64))
        assert "calibration" not in monitor.evaluate(1.0)["endpoints"]["q"]

    def test_report_caches_last_evaluation(self, rng):
        monitor = DriftMonitor(
            window_samples=16, baseline=rng.normal(0.1, 0.01, size=64),
            min_samples=8,
        )
        assert monitor.report() is None
        feed(monitor, "q", rng.normal(0.1, 0.01, size=16))
        report = monitor.evaluate(9.0)
        assert monitor.report() is report
        assert monitor.endpoints() == ["q"]

    def test_render_metrics_exposes_gauges(self, rng):
        monitor = DriftMonitor(
            window_samples=16, baseline=rng.normal(0.1, 0.01, size=64),
            min_samples=8,
        )
        feed(monitor, "q", rng.normal(0.4, 0.01, size=16))
        monitor.evaluate(1.0)
        lines, helps = [], []
        monitor.render_metrics(lines, lambda name, kind, text: helps.append(name))
        text = "\n".join(lines)
        assert "fd_service_drift_evaluations_total 1" in text
        assert 'fd_service_drift_drifted{endpoint="q"} 1' in text
        assert 'fd_service_drift_ks{endpoint="q"}' in text
        assert 'fd_service_drift_window_mean_seconds{endpoint="q"}' in text
        assert "fd_service_drift_evaluations_total" in helps

    def test_unevaluated_endpoints_render_no_series(self, rng):
        monitor = DriftMonitor(window_samples=16, min_samples=8)
        feed(monitor, "q", rng.normal(0.1, 0.01, size=4))
        monitor.evaluate(1.0)  # still collecting-baseline
        lines = []
        monitor.render_metrics(lines, lambda *args: None)
        assert not any("endpoint=" in line for line in lines)

    def test_json_serialisable_report(self, rng):
        monitor = DriftMonitor(
            window_samples=16, baseline=rng.normal(0.1, 0.01, size=64),
            min_samples=8,
        )
        feed(monitor, "q", rng.normal(0.1, 0.01, size=16))
        json.dumps(monitor.evaluate(1.0))


@pytest.mark.network
@pytest.mark.chaos
class TestLiveDrift:
    """The acceptance criterion, live: /drift separates spike from calm."""

    TIMEOUT = 60.0

    def _run(self, coroutine):
        return asyncio.run(
            asyncio.wait_for(coroutine, timeout=self.TIMEOUT)
        )

    async def _daemon_drift_run(self, plan, *, duration):
        from repro.chaos import ChaosEngine, attach_daemon, attach_fleet
        from repro.service import HeartbeatFleet, MonitorDaemon

        daemon = MonitorDaemon(
            port=0, http_port=0, eta=0.05,
            detector_ids=["Last+CI_med"], initial_timeout=0.8,
            drift_window=40, drift_interval=0.25,
        )
        engine = ChaosEngine(plan) if plan is not None else None
        if engine is not None:
            intake = attach_daemon(engine, daemon)
        await daemon.start()
        if engine is not None:
            intake.arm(daemon.scheduler.now)
        fleet = HeartbeatFleet(["node-1"], daemon.udp_endpoint, eta=0.05)
        if engine is not None:
            attach_fleet(engine, fleet)
        await fleet.start()
        try:
            # fdlint: disable=clock-discipline (live loopback scenario runs in real time by contract)
            await asyncio.sleep(duration)
            host, port = daemon.http_endpoint
            url = f"http://{host}:{port}/drift"
            payload = await asyncio.to_thread(
                lambda: urllib.request.urlopen(url, timeout=5.0).read()
            )
            return json.loads(payload)
        finally:
            await fleet.stop()
            await daemon.stop()

    def test_fault_free_run_stays_within_baseline(self):
        report = self._run(self._daemon_drift_run(None, duration=6.0))
        assert report["drifted"] == []
        entry = report["endpoints"]["node-1"]
        assert entry["status"] == "ok"
        assert entry["ks"] < 0.35

    def test_injected_delay_spike_is_flagged(self):
        from repro.chaos import FaultPlan

        # Self-baseline freezes over the calm first ~2s (40 beats at
        # 20Hz); the +400ms spike then floods the rolling window.
        plan = (
            FaultPlan.build(name="drift-spike", seed=1)
            .delay_spike(2.5, 60.0, 0.4)
            .done()
        )
        report = self._run(self._daemon_drift_run(plan, duration=7.0))
        assert report["drifted"] == ["node-1"]
        entry = report["endpoints"]["node-1"]
        assert entry["window_mean"] > entry["baseline_mean"] + 0.2

    def test_drift_route_404_when_disabled(self):
        async def main():
            from repro.service import MonitorDaemon

            daemon = MonitorDaemon(port=0, http_port=0, eta=0.1)
            await daemon.start()
            try:
                host, port = daemon.http_endpoint
                url = f"http://{host}:{port}/drift"

                def fetch():
                    try:
                        urllib.request.urlopen(url, timeout=5.0)
                    except urllib.error.HTTPError as error:
                        return error.code
                    return 200

                assert await asyncio.to_thread(fetch) == 404
            finally:
                await daemon.stop()

        self._run(main())
