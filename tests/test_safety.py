"""Tests for the safety margins (paper Section 3.2 and Table 1)."""

import math

import numpy as np
import pytest

from repro.fd.baselines import BertierMargin
from repro.fd.safety import ConfidenceIntervalMargin, ConstantMargin, JacobsonMargin


class TestConstantMargin:
    def test_is_constant(self):
        margin = ConstantMargin(0.05)
        assert margin.current() == 0.05
        margin.update(0.3, 0.1)
        assert margin.current() == 0.05

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantMargin(-0.1)


class TestConfidenceIntervalMargin:
    def test_initial_margin_before_two_observations(self):
        margin = ConfidenceIntervalMargin(gamma=1.0, initial_margin=0.2)
        assert margin.current() == 0.2
        margin.update(0.21, 0.0)
        assert margin.current() == 0.2

    def test_matches_formula(self):
        observations = [0.20, 0.21, 0.19, 0.22, 0.20]
        margin = ConfidenceIntervalMargin(gamma=2.0)
        for value in observations:
            margin.update(value, 0.0)
        arr = np.array(observations)
        n = arr.size
        sigma = arr.std(ddof=1)
        ss = ((arr - arr.mean()) ** 2).sum()
        expected = 2.0 * sigma * math.sqrt(
            1.0 + 1.0 / n + (observations[-1] - arr.mean()) ** 2 / ss
        )
        assert margin.current() == pytest.approx(expected)

    def test_scales_linearly_with_gamma(self):
        low = ConfidenceIntervalMargin(gamma=1.0)
        high = ConfidenceIntervalMargin(gamma=3.31)
        for value in [0.2, 0.21, 0.19, 0.22]:
            low.update(value, 0.0)
            high.update(value, 0.0)
        assert high.current() == pytest.approx(3.31 * low.current())

    def test_independent_of_prediction(self):
        # SM_CI depends only on network behaviour, never on the predictor.
        a = ConfidenceIntervalMargin(gamma=1.0)
        b = ConfidenceIntervalMargin(gamma=1.0)
        for value in [0.2, 0.25, 0.22]:
            a.update(value, 0.0)
            b.update(value, 99.0)
        assert a.current() == b.current()

    def test_outlier_inflates_margin(self):
        margin = ConfidenceIntervalMargin(gamma=1.0)
        for value in [0.2, 0.2, 0.2, 0.2, 0.2, 0.21]:
            margin.update(value, 0.0)
        baseline = margin.current()
        margin.update(0.4, 0.0)  # last observation far from the mean
        assert margin.current() > baseline

    def test_zero_variance_gives_zero_margin(self):
        margin = ConfidenceIntervalMargin(gamma=1.0)
        for _ in range(5):
            margin.update(0.2, 0.0)
        assert margin.current() == 0.0

    def test_reset(self):
        margin = ConfidenceIntervalMargin(gamma=1.0, initial_margin=0.3)
        for value in [0.2, 0.25]:
            margin.update(value, 0.0)
        margin.reset()
        assert margin.current() == 0.3

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            ConfidenceIntervalMargin(gamma=0.0)

    def test_non_finite_observation_rejected(self):
        with pytest.raises(ValueError):
            ConfidenceIntervalMargin(gamma=1.0).update(float("inf"), 0.0)


class TestJacobsonMargin:
    def test_initial_margin_before_updates(self):
        margin = JacobsonMargin(phi=2.0, initial_margin=0.15)
        assert margin.current() == 0.15

    def test_seeds_with_first_error(self):
        margin = JacobsonMargin(phi=1.0)
        margin.update(0.25, 0.20)
        assert margin.current() == pytest.approx(0.05)

    def test_ewma_recursion(self):
        margin = JacobsonMargin(phi=1.0, alpha=0.25)
        margin.update(0.25, 0.20)  # mdev = 0.05
        margin.update(0.30, 0.21)  # mdev = 0.05 + 0.25*(0.09-0.05) = 0.06
        assert margin.mean_deviation == pytest.approx(0.06)

    def test_phi_scales_at_use_time(self):
        low = JacobsonMargin(phi=1.0)
        high = JacobsonMargin(phi=4.0)
        for obs, pred in [(0.25, 0.2), (0.22, 0.21), (0.3, 0.25)]:
            low.update(obs, pred)
            high.update(obs, pred)
        # phi multiplies the margin, not the deviation state.
        assert high.mean_deviation == pytest.approx(low.mean_deviation)
        assert high.current() == pytest.approx(4.0 * low.current())

    def test_stable_for_phi_four(self):
        # The literal paper formula with phi inside the recursion would
        # diverge; the deviation-state formulation must stay bounded.
        margin = JacobsonMargin(phi=4.0, alpha=0.25)
        rng = np.random.default_rng(3)
        for _ in range(10000):
            margin.update(0.2 + rng.normal(0, 0.005), 0.2)
        assert margin.current() < 0.1

    def test_tracks_accurate_predictor_thin(self):
        # A perfect predictor yields zero deviation: the margin vanishes.
        margin = JacobsonMargin(phi=4.0)
        for _ in range(100):
            margin.update(0.2, 0.2)
        assert margin.current() == pytest.approx(0.0, abs=1e-12)

    def test_depends_on_prediction_error(self):
        accurate = JacobsonMargin(phi=1.0)
        sloppy = JacobsonMargin(phi=1.0)
        rng = np.random.default_rng(4)
        for _ in range(500):
            delay = 0.2 + rng.normal(0, 0.005)
            accurate.update(delay, delay)         # zero error
            sloppy.update(delay, 0.2)             # white error
        assert accurate.current() < sloppy.current()

    def test_reset(self):
        margin = JacobsonMargin(phi=1.0, initial_margin=0.2)
        margin.update(0.25, 0.2)
        margin.reset()
        assert margin.current() == 0.2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            JacobsonMargin(phi=0.0)
        with pytest.raises(ValueError):
            JacobsonMargin(phi=1.0, alpha=0.0)
        with pytest.raises(ValueError):
            JacobsonMargin(phi=1.0).update(float("nan"), 0.0)


class TestBertierMargin:
    def test_combines_error_and_deviation(self):
        margin = BertierMargin(beta=1.0, phi=4.0, gamma=0.1)
        margin.update(0.25, 0.2)  # error 0.05: U = 0.05, var = 0.05
        assert margin.current() == pytest.approx(1.0 * 0.05 + 4.0 * 0.05)

    def test_clamped_at_zero(self):
        margin = BertierMargin(beta=1.0, phi=0.1, gamma=1.0)
        margin.update(0.1, 0.3)  # error -0.2: U=-0.2, var=0.2
        assert margin.current() == 0.0

    def test_initial_margin(self):
        assert BertierMargin(initial_margin=0.12).current() == 0.12

    def test_reset(self):
        margin = BertierMargin()
        margin.update(0.25, 0.2)
        margin.reset()
        assert margin.current() == margin._initial_margin

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            BertierMargin(gamma=0.0)
