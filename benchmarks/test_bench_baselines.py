"""Extension bench: the paper's detectors versus the wider literature.

Runs the baseline detectors — Chen et al.'s NFD-E, Bertier's adaptable
detector, a constant time-out, and the φ-accrual detector (the
Akka/Cassandra descendant of this line of work) — through the identical
MultiPlexer harness as the paper's combinations, on the same link and the
same crashes, and prints one comparison table.
"""

import pytest

from repro.experiments.runner import build_qos_system
from repro.fd.baselines import (
    PhiAccrualDetector,
    bertier_strategy,
    constant_timeout_strategy,
    nfd_e_strategy,
)
from repro.fd.detector import PushFailureDetector
from repro.neko.config import ExperimentConfig
from repro.nekostat.metrics import extract_qos

CONFIG = ExperimentConfig(num_cycles=10_000, mttc=120.0, ttr=20.0, seed=404)

#: The two paper combinations Section 5.3 singles out, as references.
PAPER_PICKS = ["Last+JAC_med", "Arima+CI_high"]


def extra_layers(log):
    return [
        PushFailureDetector(
            nfd_e_strategy(alpha=0.030), "monitored", CONFIG.eta, log,
            detector_id="NFD-E(30ms)", initial_timeout=10.0,
        ),
        PushFailureDetector(
            bertier_strategy(), "monitored", CONFIG.eta, log,
            detector_id="Bertier", initial_timeout=10.0,
        ),
        PushFailureDetector(
            constant_timeout_strategy(0.300), "monitored", CONFIG.eta, log,
            detector_id="Const(300ms)", initial_timeout=10.0,
        ),
        PhiAccrualDetector(
            "monitored", CONFIG.eta, log,
            threshold=8.0, detector_id="PhiAccrual(8)", initial_timeout=10.0,
        ),
        PhiAccrualDetector(
            "monitored", CONFIG.eta, log,
            threshold=2.0, detector_id="PhiAccrual(2)", initial_timeout=10.0,
        ),
    ]


class TestBaselinesComparison:
    def test_bench_baselines_vs_paper_combinations(self, benchmark):
        def run():
            parts = build_qos_system(
                CONFIG, PAPER_PICKS, extra_monitor_layers=extra_layers
            )
            parts["system"].run(until=CONFIG.duration)  # type: ignore[attr-defined]
            return extract_qos(
                parts["event_log"], end_time=CONFIG.duration,  # type: ignore[arg-type]
            )

        qos = benchmark.pedantic(run, rounds=1, iterations=1)
        print("\nBaselines vs paper picks (same link, same crashes)")
        header = (f"{'detector':<16}{'T_D mean':>10}{'T_D max':>10}"
                  f"{'T_MR':>10}{'P_A':>10}{'undetected':>12}")
        print(header)
        print("-" * len(header))
        for detector_id in sorted(qos):
            q = qos[detector_id]
            t_d = q.t_d.mean * 1e3 if q.t_d else float("nan")
            t_du = q.t_d_upper * 1e3 if q.t_d_upper else float("nan")
            t_mr = q.t_mr.mean if q.t_mr else float("inf")
            print(f"{detector_id:<16}{t_d:>8.1f}ms{t_du:>8.1f}ms"
                  f"{t_mr:>9.1f}s{q.p_a:>10.5f}{q.undetected_crashes:>12}")

        # Everyone detects every crash.
        crash_count = {len(q.td_samples) for q in qos.values()}
        assert len(crash_count) == 1
        for q in qos.values():
            assert q.undetected_crashes == 0

        # NFD-E behaves like the modular WinMean + constant margin family:
        # same order of detection delay as the paper picks.
        assert abs(qos["NFD-E(30ms)"].t_d.mean - qos["Last+JAC_med"].t_d.mean) < 0.3

        # Bertier is Chen estimation + an error-driven margin: it lands in
        # the same delay regime as NFD-E (their margins differ by a few
        # milliseconds on this stable path).
        assert abs(qos["Bertier"].t_d.mean - qos["NFD-E(30ms)"].t_d.mean) < 0.05

        # A generous constant time-out pays its full delta on every
        # detection: slower than every adaptive detector of the family.
        for adaptive in ("Bertier", "NFD-E(30ms)", "Last+JAC_med", "Arima+CI_high"):
            assert qos["Const(300ms)"].t_d.mean > qos[adaptive].t_d.mean

        # The phi-accrual trade-off: a higher threshold is slower but
        # more accurate.
        assert qos["PhiAccrual(8)"].t_d.mean > qos["PhiAccrual(2)"].t_d.mean
        phi8_tmr = qos["PhiAccrual(8)"].t_mr.mean if qos["PhiAccrual(8)"].t_mr else 1e9
        phi2_tmr = qos["PhiAccrual(2)"].t_mr.mean if qos["PhiAccrual(2)"].t_mr else 1e9
        assert phi8_tmr >= phi2_tmr
