"""Extension bench: route flaps — the nonstationarity the live path had.

EXPERIMENTS.md and docs/calibration.md argue that the paper's CI-side
spread between predictors (MEAN visibly worse even under SM_CI) is a
signature of *within-run nonstationarity* that no stationary model can
express.  This bench provides the constructive witness: a path whose
propagation floor shifts at route flaps (192 ms ↔ 222 ms).  Windowed
predictors re-learn the new floor within a few heartbeats; the global
MEAN is anchored to the mixture average forever — and its SM_CI detector
collapses, exactly as the paper observed on the real Internet path.

A stationary control run (no flaps) shows the spread vanish again.
"""

import numpy as np
import pytest

from repro.fd.combinations import PREDICTOR_NAMES, make_strategy
from repro.fd.detector import PushFailureDetector
from repro.fd.heartbeat import Heartbeater
from repro.fd.multiplexer import MultiPlexer
from repro.fd.simcrash import SimCrash
from repro.neko.layer import ProtocolStack
from repro.neko.system import NekoSystem
from repro.nekostat.log import EventLog
from repro.nekostat.metrics import extract_qos
from repro.net.delay import ShiftedGammaDelay
from repro.net.topology import RouteFlappingDelay
from repro.sim.engine import Simulator

DURATION = 12_000.0
CRASHES = [
    (400.0 * k + 200.0 + (k * 0.37) % 1.0, 400.0 * k + 230.0)
    for k in range(30)
]


def run_world(flap_probability):
    sim = Simulator()
    rng = np.random.default_rng(3)
    routes = [
        ShiftedGammaDelay(rng, minimum=0.192, shape=2.0, scale=0.003),
        ShiftedGammaDelay(rng, minimum=0.222, shape=2.0, scale=0.003),
    ]
    delay = RouteFlappingDelay(rng, routes, flap_probability=flap_probability)
    log = EventLog()
    system = NekoSystem(sim)
    system.network.set_link("monitored", "monitor", delay, record_delays=False)
    heartbeater = Heartbeater("monitor", 1.0, log)
    simcrash = SimCrash(100.0, 30.0, None, log, schedule=CRASHES)
    system.create_process("monitored", ProtocolStack([heartbeater, simcrash]))
    detectors = [
        PushFailureDetector(
            make_strategy(predictor, "CI_med"), "monitored", 1.0, log,
            detector_id=predictor, initial_timeout=10.0,
        )
        for predictor in PREDICTOR_NAMES
    ]
    system.create_process("monitor", ProtocolStack([MultiPlexer(detectors, log)]))
    system.run(until=DURATION)
    return delay.flaps, extract_qos(log, end_time=DURATION)


class TestRouteFlapNonstationarity:
    def test_bench_mean_collapses_under_route_flaps(self, benchmark):
        flaps, flapping = benchmark.pedantic(
            lambda: run_world(8e-4), rounds=1, iterations=1
        )
        _, stationary = run_world(0.0)

        print(f"\nRoute-flap study ({flaps} floor shifts of 30 ms, SM_CI_med)")
        print(f"{'predictor':<10}{'mistakes (flapping)':>21}"
              f"{'mistakes (stationary)':>23}")
        for predictor in PREDICTOR_NAMES:
            print(f"{predictor:<10}{len(flapping[predictor].mistakes):>21}"
                  f"{len(stationary[predictor].mistakes):>23}")

        trackers = [p for p in PREDICTOR_NAMES if p != "Mean"]

        # Under flaps, MEAN makes several times the mistakes of every
        # tracking predictor (they re-learn the new floor; MEAN cannot).
        worst_tracker = max(len(flapping[p].mistakes) for p in trackers)
        assert len(flapping["Mean"].mistakes) > 2 * worst_tracker

        # On the stationary control MEAN is NOT the outlier — it sits at
        # or below the trackers (its long memory is an asset there).
        best_tracker_stationary = min(
            len(stationary[p].mistakes) for p in trackers
        )
        assert len(stationary["Mean"].mistakes) <= 1.2 * best_tracker_stationary

        # The relative position flip is the witness: MEAN's mistake count
        # relative to the median tracker explodes when flaps turn on.
        def ratio(results):
            tracker_counts = sorted(len(results[p].mistakes) for p in trackers)
            median = tracker_counts[len(tracker_counts) // 2]
            return len(results["Mean"].mistakes) / max(1, median)

        assert ratio(flapping) > 3 * ratio(stationary)

        # Completeness is never at stake: every crash detected everywhere.
        for qos in flapping.values():
            assert qos.undetected_crashes == 0
