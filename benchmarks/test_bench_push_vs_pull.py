"""Bench for the paper's Section 2.2 claim: push-style monitoring obtains
the same quality of detection with half the messages of pull-style."""

import pytest

from repro.fd.combinations import make_strategy
from repro.fd.detector import PushFailureDetector
from repro.fd.heartbeat import Heartbeater
from repro.fd.multiplexer import MultiPlexer
from repro.fd.pull import PullFailureDetector, PullResponder
from repro.fd.simcrash import SimCrash
from repro.neko.layer import ProtocolStack
from repro.neko.system import NekoSystem
from repro.nekostat.log import EventLog
from repro.nekostat.metrics import extract_qos
from repro.net.wan import italy_japan_profile
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

DURATION = 2_000.0
CRASHES = [(200.5 + 400 * k, 230.5 + 400 * k) for k in range(4)]


def run_world(style: str):
    sim = Simulator()
    streams = RandomStreams(77)
    profile = italy_japan_profile()
    event_log = EventLog()
    system = NekoSystem(sim)
    forward = system.network.set_link_profile(
        "monitored", "monitor", profile, streams, record_delays=False
    )
    reverse = system.network.set_link_profile(
        "monitor", "monitored", profile, streams, record_delays=False
    )
    simcrash = SimCrash(100.0, 30.0, None, event_log, schedule=CRASHES)

    if style == "push":
        heartbeater = Heartbeater("monitor", 1.0, event_log)
        system.create_process(
            "monitored", ProtocolStack([heartbeater, simcrash])
        )
        detector = PushFailureDetector(
            make_strategy("Last", "JAC_med"), "monitored", 1.0, event_log,
            detector_id="fd", initial_timeout=10.0,
        )
        system.create_process("monitor", ProtocolStack([MultiPlexer([detector], event_log)]))
        system.run(until=DURATION)
        messages = forward.stats.sent
    else:
        responder = PullResponder()
        system.create_process("monitored", ProtocolStack([responder, simcrash]))
        detector = PullFailureDetector(
            make_strategy("Last", "JAC_med"), "monitored", 1.0, event_log,
            detector_id="fd", initial_timeout=10.0,
        )
        system.create_process("monitor", ProtocolStack([detector]))
        system.run(until=DURATION)
        messages = forward.stats.sent + reverse.stats.sent

    qos = extract_qos(event_log, end_time=DURATION)["fd"]
    return messages, qos


class TestPushVsPull:
    def test_bench_push_vs_pull(self, benchmark):
        push_messages, push_qos = run_world("push")
        pull_messages, pull_qos = benchmark.pedantic(
            lambda: run_world("pull"), rounds=1, iterations=1
        )
        print("\nPush vs pull (Section 2.2 message-cost claim)")
        print(f"{'':<8}{'messages':>10}{'T_D mean':>12}{'crashes':>9}{'mistakes':>10}")
        for name, messages, qos in (
            ("push", push_messages, push_qos),
            ("pull", pull_messages, pull_qos),
        ):
            print(
                f"{name:<8}{messages:>10}"
                f"{qos.t_d.mean * 1e3:>10.1f}ms"
                f"{len(qos.td_samples):>9}"
                f"{len(qos.mistakes):>10}"
            )
        ratio = pull_messages / push_messages
        print(f"message ratio pull/push = {ratio:.2f} (paper: 2x)")

        # The claim: ~2x messages for pull, comparable detection.
        assert 1.7 < ratio < 2.3
        assert len(push_qos.td_samples) == len(CRASHES)
        assert len(pull_qos.td_samples) == len(CRASHES)
        # Pull detection includes the request leg, so it is slower, but
        # the same order of magnitude.
        assert push_qos.t_d.mean < pull_qos.t_d.mean + 1.0
