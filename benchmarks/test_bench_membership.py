"""Extension bench: the group-membership election cost of FD mistakes.

Quantifies the paper's motivating example — "a false positive detection
of the current coordinator ... is more expensive ... than a slower
detection of a true failure" — by running a coordinator under a
membership service with two FD tunings and counting real versus spurious
elections.
"""

import pytest

from repro.apps.membership import MembershipService
from repro.experiments.runner import build_qos_system, MONITORED
from repro.neko.config import ExperimentConfig
from repro.nekostat.metrics import extract_qos

CONFIG = ExperimentConfig(num_cycles=15_000, mttc=600.0, ttr=30.0, seed=777)


def run_membership(detector_id):
    parts = build_qos_system(CONFIG, [detector_id])
    service = MembershipService(
        parts["event_log"],  # type: ignore[arg-type]
        members=[MONITORED, "standby"],
        detector_of={MONITORED: detector_id, "standby": "never-suspected"},
    )
    parts["system"].run(until=CONFIG.duration)  # type: ignore[attr-defined]
    qos = extract_qos(
        parts["event_log"], end_time=CONFIG.duration,  # type: ignore[arg-type]
        detectors=[detector_id],
    )[detector_id]
    return service, qos


class TestMembershipElections:
    def test_bench_election_cost_by_tuning(self, benchmark):
        def sweep():
            return {
                detector_id: run_membership(detector_id)
                for detector_id in ("Last+JAC_low", "Arima+CI_high")
            }

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print("\nMembership elections over "
              f"{CONFIG.duration / 3600:.1f} h of virtual time")
        header = (f"{'tuning':<16}{'crashes':>9}{'spurious':>10}"
                  f"{'elections':>11}{'T_D mean':>10}")
        print(header)
        print("-" * len(header))
        summary = {}
        for detector_id, (service, qos) in results.items():
            crashes = len(qos.td_samples)
            spurious = len(qos.mistakes)
            print(f"{detector_id:<16}{crashes:>9}{spurious:>10}"
                  f"{service.stats.elections:>11}"
                  f"{qos.t_d.mean * 1e3:>8.1f}ms")
            summary[detector_id] = (crashes, spurious, service.stats.elections, qos)

        fast_crashes, fast_spurious, fast_elections, fast_qos = summary["Last+JAC_low"]
        slow_crashes, slow_spurious, slow_elections, slow_qos = summary["Arima+CI_high"]

        # Both tunings see the same crash schedule (same seed).
        assert fast_crashes == slow_crashes

        # The paper's point: the delay-first tuning triggers far more
        # spurious elections than the accuracy-first one...
        assert fast_spurious > 3 * slow_spurious
        # ...for a detection-time gain of only a few tens of milliseconds.
        assert fast_qos.t_d.mean < slow_qos.t_d.mean
        assert slow_qos.t_d.mean - fast_qos.t_d.mean < 0.1

        # Every suspicion/trust flip of the coordinator is an election
        # (real detection + repair + each mistake's start and end).
        assert fast_elections >= fast_spurious + fast_crashes
