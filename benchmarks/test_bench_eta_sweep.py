"""Extension bench: the heartbeat-rate cost/QoS frontier.

The paper fixes ``eta = 1 s`` (Table 5); this bench sweeps it, producing
the frontier an operator actually tunes: message cost (``1/eta``) against
detection time (``~ eta/2 + delta``) and mistake rate.  Chen et al.'s
analytic identities predict the shape; the sweep measures it on the
calibrated WAN with the paper's recommended combination.
"""

import math

import pytest

from repro.experiments.sweep import format_sweep, sweep_eta
from repro.neko.config import ExperimentConfig

CONFIG = ExperimentConfig(num_cycles=6_000, mttc=120.0, ttr=20.0, seed=55)
ETAS = (0.25, 0.5, 1.0, 2.0, 4.0)


class TestEtaSweep:
    def test_bench_eta_frontier(self, benchmark):
        points = benchmark.pedantic(
            lambda: sweep_eta(CONFIG, ETAS), rounds=1, iterations=1
        )
        print("\nHeartbeat-rate frontier (Last+JAC_med, fixed 6000 s runs)")
        print(format_sweep(points, "eta (s)"))

        by_eta = {p.value: p for p in points}

        # Detection time is dominated by eta/2: the paper's eta = 1 s
        # point must sit between the 0.5 s and 2 s points.
        assert (
            by_eta[0.5].detection_time
            < by_eta[1.0].detection_time
            < by_eta[2.0].detection_time
        )

        # The eta/2 + delta structure: subtracting the halved period
        # leaves roughly the same delta everywhere.
        deltas = [p.detection_time - p.value / 2.0 for p in points]
        assert max(deltas) - min(deltas) < 0.15

        # Message cost falls linearly while T_D^U grows ~ eta + delta:
        # quantifying the trade the paper's Table 5 froze.
        assert by_eta[0.25].messages_per_second == pytest.approx(4.0)
        assert by_eta[4.0].detection_time_max > by_eta[0.25].detection_time_max

        # Every point remains complete (all crashes detected => T_D finite).
        assert all(not math.isnan(p.detection_time) for p in points)
