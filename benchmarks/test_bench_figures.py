"""Benches regenerating the paper's Figures 4-8.

Each figure is a predictor x safety-margin grid of one QoS metric over
the 30 detector combinations, computed from the shared campaign (the
Section 5.2 experiment).  Shape assertions encode the paper's qualitative
findings; EXPERIMENTS.md records the numeric comparison.
"""

import math

import pytest

from repro.experiments.qos import FIGURE_METRICS, figure_data
from repro.experiments.report import format_figure_grid
from repro.fd.combinations import MARGIN_NAMES, PREDICTOR_NAMES


def print_grid(data, metric):
    title = FIGURE_METRICS[metric]
    print()
    if metric == "pa":
        print(format_figure_grid(data, title, unit="", scale=1.0, decimals=6))
    else:
        print(format_figure_grid(data, title, unit="ms", scale=1e3))


def complete(data):
    return all(
        not math.isnan(data[p][m]) for p in PREDICTOR_NAMES for m in MARGIN_NAMES
    )


class TestFigure4DetectionTime:
    def test_bench_fig4_td(self, benchmark, campaign):
        data = benchmark(lambda: figure_data(campaign, "td"))
        print_grid(data, "td")
        assert complete(data)
        # All detection times are between eta/2-ish and 2*eta.
        for predictor in PREDICTOR_NAMES:
            for margin in MARGIN_NAMES:
                assert 0.3 < data[predictor][margin] < 2.0
        # Bigger CI margins mean longer detection (gamma monotonicity).
        for predictor in PREDICTOR_NAMES:
            assert data[predictor]["CI_low"] < data[predictor]["CI_high"]
        # Paper: MEAN yields the longest delays on the JAC side (its
        # persistent epoch errors inflate the Jacobson deviation).
        for predictor in ("Arima", "LPF"):
            assert data["Mean"]["JAC_high"] > data[predictor]["JAC_high"]

    def test_bench_fig4_fastest_combination(self, campaign):
        # Paper Sec. 5.3: LAST + SM_JAC offers "very good delay"; it must
        # sit within a hair of the global best.
        data = figure_data(campaign, "td")
        best = min(data[p][m] for p in PREDICTOR_NAMES for m in MARGIN_NAMES)
        assert data["Last"]["JAC_low"] - best < 0.01


class TestFigure5MaxDetectionTime:
    def test_bench_fig5_tdu(self, benchmark, campaign):
        data = benchmark(lambda: figure_data(campaign, "tdu"))
        print_grid(data, "tdu")
        assert complete(data)
        td = figure_data(campaign, "td")
        for predictor in PREDICTOR_NAMES:
            for margin in MARGIN_NAMES:
                # The max always dominates the mean...
                assert data[predictor][margin] > td[predictor][margin]
                # ...and stays bounded: every crash is detected within a
                # couple of heartbeat periods plus time-out.
                assert data[predictor][margin] < 4.0


class TestFigure6MistakeDuration:
    def test_bench_fig6_tm(self, benchmark, campaign):
        data = benchmark(lambda: figure_data(campaign, "tm"))
        print_grid(data, "tm")
        assert complete(data)
        # Mistakes are corrected by the next heartbeat(s): T_M well below
        # a few eta for every combination.
        for predictor in PREDICTOR_NAMES:
            for margin in MARGIN_NAMES:
                assert 0.0 < data[predictor][margin] < 3.0


class TestFigure7MistakeRecurrence:
    def test_bench_fig7_tmr(self, benchmark, campaign):
        data = benchmark(lambda: figure_data(campaign, "tmr"))
        print_grid(data, "tmr")
        assert complete(data)
        # gamma / phi monotonicity: larger margins -> rarer mistakes.
        for predictor in PREDICTOR_NAMES:
            assert (
                data[predictor]["CI_low"]
                < data[predictor]["CI_med"]
                < data[predictor]["CI_high"]
            )
            assert data[predictor]["JAC_low"] < data[predictor]["JAC_high"]

    def test_bench_fig7_paper_pairings(self, campaign):
        data = figure_data(campaign, "tmr")
        # Paper: good pairings are ARIMA+SM_CI (accurate predictor,
        # prediction-independent margin) ...
        assert data["Arima"]["CI_high"] == max(
            data[p]["CI_high"] for p in PREDICTOR_NAMES
        )
        # ... while ARIMA+SM_JAC (error-driven margin on a razor-thin
        # error) is among the worst accuracy-wise.
        arima_jac = data["Arima"]["JAC_high"]
        worse_count = sum(
            1 for p in PREDICTOR_NAMES if data[p]["JAC_high"] < arima_jac
        )
        assert worse_count <= 2

    def test_bench_fig6_fig7_correlated(self, campaign):
        # Paper: "the values obtained for T_M and T_MR are strongly
        # correlated ... impossible to obtain at the same time the best
        # values for both accuracy metrics".
        tm = figure_data(campaign, "tm")
        tmr = figure_data(campaign, "tmr")
        pairs = [
            (tm[p][m], tmr[p][m]) for p in PREDICTOR_NAMES for m in MARGIN_NAMES
        ]
        n = len(pairs)
        mx = sum(x for x, _ in pairs) / n
        my = sum(y for _, y in pairs) / n
        cov = sum((x - mx) * (y - my) for x, y in pairs)
        vx = sum((x - mx) ** 2 for x, _ in pairs)
        vy = sum((y - my) ** 2 for _, y in pairs)
        assert cov / math.sqrt(vx * vy) > 0.7


class TestFigure8QueryAccuracy:
    def test_bench_fig8_pa(self, benchmark, campaign):
        data = benchmark(lambda: figure_data(campaign, "pa"))
        print_grid(data, "pa")
        assert complete(data)
        for predictor in PREDICTOR_NAMES:
            for margin in MARGIN_NAMES:
                assert 0.98 < data[predictor][margin] <= 1.0

    def test_bench_fig8_availability_semantics(self, campaign):
        # P_A is the paper's availability analogue: it must broadly agree
        # with the direct empirical availability measurement.
        for detector_id, qos in campaign.items():
            assert abs(qos.p_a - qos.empirical_p_a) < 0.02, detector_id


class TestSection53EffectiveCombination:
    def test_bench_last_jac_tradeoff(self, campaign):
        """Paper Sec. 5.3: LAST + SM_JAC is 'very effective' - near-best
        delay with acceptable accuracy and the simplest implementation."""
        td = figure_data(campaign, "td")
        tmr = figure_data(campaign, "tmr")
        flat_td = sorted(
            td[p][m] for p in PREDICTOR_NAMES for m in MARGIN_NAMES
        )
        # Near-best delay: within the fastest third.
        assert td["Last"]["JAC_low"] <= flat_td[len(flat_td) // 3]
        # The stated drawback: its T_MR is smaller than other combinations.
        assert tmr["Last"]["JAC_low"] < tmr["Arima"]["CI_high"]
