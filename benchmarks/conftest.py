"""Shared fixtures for the benchmark harness.

The QoS campaign (Section 5.2: N runs x 30 detectors) feeds Figures 4-8,
so it is executed once per session and shared.  Scale is controlled by
environment variables so the same harness serves quick regression runs
and full-scale reproduction:

=========================  =========  =====================================
variable                   default    paper scale
=========================  =========  =====================================
``REPRO_BENCH_CYCLES``     10000      100000  (Table 5 NumCycles)
``REPRO_BENCH_RUNS``       3          13      (Section 5.2 runs)
``REPRO_BENCH_TRACE``      30000      100000  (Section 5.1 N_one_way)
``REPRO_BENCH_WORKERS``    all cores  all cores (campaign process pool)
=========================  =========  =====================================

Every bench prints its table/figure in the paper's layout, so a benchmark
session's output can be laid side by side with the paper (see
EXPERIMENTS.md for the recorded comparison).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.accuracy import collect_delay_trace, predictor_accuracy
from repro.experiments.runner import aggregate_runs, run_repetitions
from repro.neko.config import ExperimentConfig

BENCH_CYCLES = int(os.environ.get("REPRO_BENCH_CYCLES", "10000"))
BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "3"))
BENCH_TRACE = int(os.environ.get("REPRO_BENCH_TRACE", "30000"))
#: Worker processes for the shared campaign; defaults to one per core.
#: The parallel runner is byte-identical to the serial one, so scaling
#: this knob never changes a bench's numbers — only its wall-clock time.
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", str(os.cpu_count() or 1)))

#: Experiment parameters for the shared campaign.  MTTC is scaled down
#: from the paper's 300 s so shorter runs still collect >= 30 T_D samples
#: per run, matching the paper's statistical-validity criterion.
CAMPAIGN_CONFIG = ExperimentConfig(
    num_cycles=BENCH_CYCLES,
    mttc=120.0,
    ttr=20.0,
    eta=1.0,
    profile_name="italy-japan",
    seed=2005,
)


@pytest.fixture(scope="session")
def campaign():
    """The pooled QoS of the full 30-detector campaign."""
    results = run_repetitions(CAMPAIGN_CONFIG, BENCH_RUNS, workers=BENCH_WORKERS)
    pooled = aggregate_runs(results)
    total_crashes = sum(r.crashes for r in results)
    print(
        f"\n[campaign] {BENCH_RUNS} runs x {BENCH_CYCLES} cycles, "
        f"{total_crashes} crashes, "
        f"{len(pooled)} detectors"
    )
    return pooled


@pytest.fixture(scope="session")
def wan_trace():
    """The Section 5.1 delay trace (observed heartbeat delays)."""
    return collect_delay_trace(count=BENCH_TRACE, seed=5)


@pytest.fixture(scope="session")
def accuracy_table(wan_trace):
    """Predictor msqerr on the shared trace (Table 3 data)."""
    return predictor_accuracy(wan_trace)
