"""Ablation benches for the design choices DESIGN.md calls out.

The paper fixes several constants (N_arima = 1000, WINMEAN N = 10,
LPF beta = 1/8, alpha = 1/4) and assumes synchronised clocks.  These
benches sweep each choice and show the sensitivity of the results —
the analysis the paper defers to its parameter tables.
"""

import numpy as np
import pytest

from repro.experiments.accuracy import collect_delay_trace
from repro.experiments.runner import run_qos_experiment
from repro.fd.combinations import make_predictor
from repro.neko.config import ExperimentConfig
from repro.timeseries.base import evaluate_forecaster

ABLATION_CONFIG = ExperimentConfig(
    num_cycles=3_000, mttc=100.0, ttr=15.0, seed=31
)


class TestWinMeanWindowAblation:
    def test_bench_window_sweep(self, benchmark, wan_trace):
        """WINMEAN window: too small chases jitter, too large becomes MEAN."""

        def sweep():
            scores = {}
            for window in (2, 5, 10, 50, 200, 1000):
                predictor = make_predictor("WinMean", window=window)
                msqerr, _ = evaluate_forecaster(
                    predictor, wan_trace.delays[:10000], warmup=1
                )
                scores[window] = msqerr
            return scores

        scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print("\nAblation: WINMEAN window vs msqerr (ms^2)")
        for window, msqerr in scores.items():
            print(f"  N = {window:>5}: {msqerr * 1e6:8.2f}")
        # The sweet spot sits in the small-window region; the huge window
        # degenerates towards MEAN and must be worse than the paper's 10.
        assert scores[10] < scores[1000]


class TestLpfBetaAblation:
    def test_bench_beta_sweep(self, benchmark, wan_trace):
        """LPF gain: beta -> 1 degenerates to LAST, beta -> 0 to a frozen
        estimate; the paper's 1/8 sits in the flat optimum region."""

        def sweep():
            scores = {}
            for beta in (0.01, 0.05, 0.125, 0.25, 0.5, 1.0):
                predictor = make_predictor("LPF", beta=beta)
                msqerr, _ = evaluate_forecaster(
                    predictor, wan_trace.delays[:10000], warmup=1
                )
                scores[beta] = msqerr
            return scores

        scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print("\nAblation: LPF beta vs msqerr (ms^2)")
        for beta, msqerr in scores.items():
            print(f"  beta = {beta:>5}: {msqerr * 1e6:8.2f}")
        # beta = 1 (i.e. LAST) must be worse than the paper's 1/8 on this
        # jitter-dominated path.
        assert scores[0.125] < scores[1.0]


class TestArimaRefitAblation:
    def test_bench_refit_interval_sweep(self, benchmark, wan_trace):
        """N_arima: the paper refits every 1000 observations 'so the model
        can adapt'; rarer refits must not cost much on a stable path."""
        series = wan_trace.delays[:12000]

        def sweep():
            scores = {}
            for interval in (250, 1000, 4000):
                predictor = make_predictor(
                    "Arima", refit_interval=interval, initial_fit=200
                )
                msqerr, _ = evaluate_forecaster(predictor, series, warmup=300)
                scores[interval] = msqerr
            return scores

        scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print("\nAblation: ARIMA refit interval vs msqerr (ms^2)")
        for interval, msqerr in scores.items():
            print(f"  N_arima = {interval:>5}: {msqerr * 1e6:8.2f}")
        best = min(scores.values())
        assert scores[1000] < best * 1.2  # the paper's choice is near-optimal


class TestClockSyncAblation:
    def test_bench_clock_offset_sweep(self, benchmark):
        """The synchronised-clock assumption, dissected.

        For the paper's *adaptive* detectors a constant offset cancels
        exactly: the biased delay measurements inflate the (translation-
        equivariant) prediction by the same amount the local-to-global
        conversion of the freshness point subtracts.  A *constant*
        time-out has no such compensation: a monitor clock ahead by x
        fires every freshness point x early (more mistakes, faster
        detection) and a clock behind fires late.  Both facts are
        asserted here; only clock *drift* and offset *changes* threaten
        adaptive detectors.
        """
        from repro.fd.baselines import constant_timeout_strategy
        from repro.fd.detector import PushFailureDetector
        from repro.experiments.runner import MONITORED, build_qos_system
        from repro.nekostat.metrics import extract_qos

        def run(offset):
            config = ExperimentConfig(
                num_cycles=3_000, mttc=100.0, ttr=15.0, seed=31,
                clock_offset=offset,
            )
            parts = build_qos_system(
                config, ["Last+JAC_med"],
                extra_monitor_layers=lambda log: [
                    PushFailureDetector(
                        constant_timeout_strategy(0.35), MONITORED,
                        config.eta, log, detector_id="const",
                        initial_timeout=5.0,
                    )
                ],
            )
            parts["system"].run(until=config.duration)
            return extract_qos(parts["event_log"], end_time=config.duration)

        def sweep():
            return {offset: run(offset) for offset in (-0.05, 0.0, 0.05)}

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print("\nAblation: monitor clock offset (adaptive vs constant FD)")
        print(f"{'offset':>8}{'adaptive T_D':>14}{'const T_D':>11}"
              f"{'const mistakes':>16}")
        for offset, qos in results.items():
            print(
                f"{offset * 1e3:>6.0f}ms"
                f"{qos['Last+JAC_med'].t_d.mean * 1e3:>12.1f}ms"
                f"{qos['const'].t_d.mean * 1e3:>9.1f}ms"
                f"{len(qos['const'].mistakes):>16}"
            )
        # Adaptive: offset-invariant to within a millisecond.
        adaptive = {o: q["Last+JAC_med"].t_d.mean for o, q in results.items()}
        assert abs(adaptive[0.05] - adaptive[0.0]) < 1e-3
        assert abs(adaptive[-0.05] - adaptive[0.0]) < 1e-3
        # Constant: the offset shifts detection one-for-one.
        constant = {o: q["const"].t_d.mean for o, q in results.items()}
        assert constant[0.05] == pytest.approx(constant[0.0] - 0.05, abs=0.01)
        assert constant[-0.05] == pytest.approx(constant[0.0] + 0.05, abs=0.01)

    def test_bench_ntp_sync_bounds_error(self, benchmark):
        """NTP keeps a drifting clock within the margin sizes used here."""
        from repro.clocks.ntp import DisciplinedClock
        from repro.sim.engine import Simulator

        def run():
            sim = Simulator()
            rng = np.random.default_rng(4)
            clock = DisciplinedClock(
                sim, offset=0.25, drift=2e-5,
                delay_out=lambda: 0.1 + rng.exponential(0.01),
                delay_back=lambda: 0.1 + rng.exponential(0.01),
                poll_interval=64.0,
            )
            clock.start_sync()
            sim.run(until=3600.0)
            return abs(clock.local_from_global(sim.now) - sim.now)

        residual = benchmark.pedantic(run, rounds=1, iterations=1)
        print(f"\nNTP residual clock error after 1 h: {residual * 1e3:.2f} ms")
        assert residual < 0.01  # well under the safety margins in play


class TestLossBurstinessAblation:
    def test_bench_burstiness_sweep(self, benchmark):
        """Bursty loss at a fixed rate looks like crashes; independent loss
        of the same rate is absorbed by a single missed freshness point."""
        from repro.fd.combinations import make_strategy
        from repro.fd.detector import PushFailureDetector
        from repro.fd.heartbeat import Heartbeater
        from repro.neko.layer import ProtocolStack
        from repro.neko.system import NekoSystem
        from repro.nekostat.log import EventLog
        from repro.nekostat.metrics import extract_qos
        from repro.net.delay import ConstantDelay
        from repro.net.loss import BernoulliLoss, GilbertElliottLoss
        from repro.sim.engine import Simulator

        def run(loss_model_factory):
            sim = Simulator()
            rng = np.random.default_rng(9)
            event_log = EventLog()
            system = NekoSystem(sim)
            system.network.set_link(
                "q", "p", ConstantDelay(0.2), loss_model_factory(rng),
                record_delays=False,
            )
            heartbeater = Heartbeater("p", 1.0, event_log)
            system.create_process("q", ProtocolStack([heartbeater]))
            detector = PushFailureDetector(
                make_strategy("Last", "JAC_med"), "q", 1.0, event_log,
                detector_id="fd", initial_timeout=10.0,
            )
            system.create_process("p", ProtocolStack([detector]))
            system.run(until=20_000.0)
            return extract_qos(event_log, end_time=20_000.0)["fd"]

        def sweep():
            rate = 0.01
            independent = run(lambda rng: BernoulliLoss(rng, rate))
            bursty = run(
                lambda rng: GilbertElliottLoss(
                    rng, p_good_to_bad=rate / 4, p_bad_to_good=0.25,
                    loss_good=0.0, loss_bad=1.0,
                )
            )
            return independent, bursty

        independent, bursty = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print("\nAblation: loss burstiness at ~1% loss (Last+JAC_med)")
        for name, qos in (("independent", independent), ("bursty", bursty)):
            t_m = qos.t_m.mean if qos.t_m else 0.0
            print(
                f"  {name:<12} mistakes={len(qos.mistakes):>4}  "
                f"mean T_M={t_m * 1e3:7.1f} ms"
            )
        # Bursty loss produces longer outages: fewer-but-longer mistakes.
        assert bursty.t_m.mean > independent.t_m.mean
