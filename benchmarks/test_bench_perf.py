"""Bench for the performance layers: process-pool campaigns and the
vectorized trace replay (scripts/bench_perf.py at smoke scale).

Unlike the figure/table benches this one regenerates no paper artifact —
it guards the machinery that makes paper-scale runs affordable.  The
assertions encode the contract of docs/performance.md:

* the parallel campaign runner produces byte-identical pooled QoS,
* the vectorized replay beats the per-observation classes by >= 10x on a
  Section 5.1-sized trace,
* the batched ARIMA replay beats the scalar forecaster by >= 5x across
  several refit windows, and
* the replay campaign engine beats the event-driven simulator on the
  full 30-combination matrix.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from bench_perf import format_report, run_benchmark  # noqa: E402

from benchmarks.conftest import BENCH_WORKERS


@pytest.fixture(scope="module")
def perf_record(tmp_path_factory):
    record = run_benchmark(
        cycles=1500, runs=2, workers=BENCH_WORKERS, trace_len=10_000
    )
    out = tmp_path_factory.mktemp("perf") / "BENCH_perf.json"
    out.write_text(json.dumps(record, indent=2))
    print(f"\n{format_report(record)}")
    print(f"wrote {out}")
    return record


def test_parallel_campaign_is_equivalent_and_measured(perf_record):
    # run_benchmark raises if the pooled QoS diverged; here just check
    # the timing record is well-formed.
    campaign = perf_record["campaign"]
    assert campaign["serial_s"] > 0
    assert campaign["parallel_s"] > 0
    assert campaign["speedup"] > 0


def test_vectorized_replay_is_order_of_magnitude_faster(perf_record):
    replay = perf_record["replay"]
    assert replay["trace_len"] >= 9_000
    assert replay["speedup"] >= 10.0, (
        f"vectorized replay only {replay['speedup']:.1f}x faster"
    )


def test_batched_arima_replay_meets_speedup_contract(perf_record):
    # Several refit windows (refit every 1000 observations), so both
    # sides pay the same least-squares fits and the measured win is the
    # eliminated per-observation loop.
    arima = perf_record["arima_replay"]
    assert arima["trace_len"] >= 9_000
    assert arima["speedup"] >= 5.0, (
        f"batched ARIMA replay only {arima['speedup']:.1f}x faster"
    )


def test_replay_campaign_engine_beats_simulator(perf_record):
    # time_campaign_replay_engine raises if the pooled QoS diverged;
    # here assert the full-matrix replay campaign is actually faster.
    engine = perf_record["campaign_replay_engine"]
    assert engine["detectors"] == 30
    assert engine["speedup"] > 1.0, (
        f"replay engine not faster ({engine['speedup']:.2f}x)"
    )
