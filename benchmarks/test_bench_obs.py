"""Bench for the observability layer (scripts/bench_obs.py).

Like test_bench_perf this regenerates no paper artifact — it guards the
machinery that keeps a standing monitor observable at negligible cost.
The assertions encode the contract of docs/observability.md:

* a no-change ``/metrics`` scrape reuses the cached QoS body and is
  >= 10x faster than the legacy full render at 50 endpoints x 30
  detectors (1500 live series),
* a transition between scrapes re-renders one series, not 1500, and
* trace analysis sustains a 100k-span file within seconds (asserted at
  the smoke scale here, with throughput as the scale-free proxy).
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from bench_obs import format_report, run_benchmark  # noqa: E402

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def obs_record(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("obs")
    record = run_benchmark(
        endpoints=50,
        detectors=30,
        trace_events=20_000,
        history_transitions=10_000,
        analyze_spans=20_000,
        drift_observations=20_000,
        tmp_dir=str(out_dir),
    )
    out = out_dir / "BENCH_obs.json"
    out.write_text(json.dumps(record, indent=2))
    print(f"\n{format_report(record)}")
    print(f"wrote {out}")
    return record


def test_cached_scrape_is_order_of_magnitude_faster(obs_record):
    exposition = obs_record["exposition"]
    assert exposition["series"] == 1500
    assert exposition["speedup_cached_vs_full"] >= 10.0, (
        f"cached scrape only {exposition['speedup_cached_vs_full']:.1f}x "
        "faster than the full render"
    )
    # Steady state really hit the cache: one cold render of every series
    # plus one per dirty-scrape iteration, never 1500 again.
    assert exposition["body_cache_hits_total"] > 0


def test_dirty_scrape_redraws_one_series_not_all(obs_record):
    exposition = obs_record["exposition"]
    assert (
        exposition["dirty_one_series_scrape_ms"]
        < exposition["full_render_ms"]
    )


def test_trace_and_history_are_measured(obs_record):
    trace = obs_record["trace"]
    assert trace["ring_only_ns_per_event"] > 0
    assert trace["jsonl_ns_per_event"] >= trace["ring_only_ns_per_event"]
    history = obs_record["history"]
    assert history["insert_rows_per_s"] > 0
    assert history["window_query_ms"] > 0


def test_analyze_completes_100k_spans_in_seconds(obs_record):
    analyze = obs_record["analyze"]
    assert analyze["spans"] >= 20_000
    assert analyze["post_mortems"] > 0
    # The ISSUE contract: a 100k-span analysis completes in seconds.
    # At smoke scale (20k spans) we bound the measured run directly and
    # require throughput that puts 100k spans under ten seconds even on
    # a slow CI worker.
    assert analyze["total_s"] < 10.0
    assert analyze["spans_per_s"] > 10_000, (
        f"analysis at {analyze['spans_per_s']:.0f} spans/s would not "
        "finish a 100k-span trace in seconds"
    )


def test_drift_intake_is_cheap_and_evaluation_bounded(obs_record):
    drift = obs_record["drift"]
    # Intake sits on the heartbeat hot path: budget well under the
    # recorder's own per-event cost (~microseconds).
    assert drift["observe_ns_per_heartbeat"] < 50_000
    assert drift["evaluate_ms"] < 1_000.0
    assert 0.0 <= drift["ks"] <= 1.0
