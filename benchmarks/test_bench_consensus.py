"""Extension bench: failure-detector QoS drives consensus QoS.

The paper's reference [6] (Coccoli, Urbán, Bondavalli & Schiper, DSN
2002) analyses how the accuracy and delay of the failure detector shape
the latency of a Chandra–Toueg consensus built on it.  This bench
measures the same relation in the reproduction: a three-process
consensus over the calibrated WAN whose round-0 coordinator crashes
mid-instance, under three FD tunings.  The decision latency decomposes
as ``(time to suspect the coordinator) + (one more round)``, so faster
detectors buy faster consensus — until their mistakes start aborting
healthy rounds.
"""

import pytest

from repro.apps.harness import build_consensus_group
from repro.fd.baselines import constant_timeout_strategy
from repro.fd.combinations import make_strategy
from repro.net.wan import italy_japan_profile
from repro.sim.engine import Simulator

GROUP = ["p0", "p1", "p2"]
PROPOSE_AT = 1.0
CRASH_AT = 1.05  # mid-instance: after estimates go out, before decision


def run_instance(strategy_factory, seed):
    sim = Simulator()
    world = build_consensus_group(
        sim,
        GROUP,
        italy_japan_profile(),
        strategy_factory,
        seed=seed,
        eta=1.0,
        initial_timeout=5.0,
        crash_schedules={"p0": [(CRASH_AT, 1e9)]},
        retransmit_interval=1.0,
    )
    world.system.start()
    values = {address: f"v-{address}" for address in GROUP}
    sim.schedule(PROPOSE_AT, lambda: world.propose_all(values))
    sim.run(until=120.0)
    survivors = [world.consensus[p] for p in ("p1", "p2")]
    assert all(layer.decided for layer in survivors), "consensus did not terminate"
    assert len(world.decided_values()) == 1, "agreement violated"
    return max(layer.decision.decided_at for layer in survivors) - PROPOSE_AT


class TestConsensusLatency:
    def test_bench_fd_quality_drives_consensus_latency(self, benchmark):
        tunings = {
            "Last+JAC_med (adaptive)": lambda: make_strategy("Last", "JAC_med"),
            "Arima+CI_high (accurate)": lambda: make_strategy("Arima", "CI_high"),
            "Const(2s) (conservative)": lambda: constant_timeout_strategy(2.0),
        }

        def sweep():
            latencies = {}
            for name, factory in tunings.items():
                samples = [run_instance(factory, seed) for seed in (1, 2, 3)]
                latencies[name] = sum(samples) / len(samples)
            return latencies

        latencies = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print("\nConsensus latency with a crashed round-0 coordinator")
        for name, latency in latencies.items():
            print(f"  {name:<26} {latency * 1e3:8.0f} ms")

        adaptive = latencies["Last+JAC_med (adaptive)"]
        conservative = latencies["Const(2s) (conservative)"]
        # The conservative detector adds its fixed 2 s time-out to every
        # post-crash decision; adaptive tunings detect within ~1 heartbeat.
        assert adaptive < conservative
        # All latencies are dominated by detection + one round trip.
        for latency in latencies.values():
            assert 0.5 < latency < 10.0

    def test_bench_failure_free_latency_is_fd_independent(self, benchmark):
        """Without failures the FD never fires: consensus latency must be
        three one-way delays regardless of tuning (the flip side of [6])."""

        def run_clean(strategy_factory, seed):
            sim = Simulator()
            world = build_consensus_group(
                sim, GROUP, italy_japan_profile(), strategy_factory,
                seed=seed, eta=1.0, initial_timeout=5.0,
            )
            world.system.start()
            world.propose_all({address: 1 for address in GROUP})
            sim.run(until=30.0)
            assert len(world.decided_values()) == 1
            return max(
                layer.decision.decided_at for layer in world.consensus.values()
            )

        def sweep():
            fast = run_clean(lambda: make_strategy("Last", "JAC_low"), 4)
            slow = run_clean(lambda: constant_timeout_strategy(3.0), 4)
            return fast, slow

        fast, slow = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print(f"\nFailure-free consensus latency: adaptive {fast * 1e3:.0f} ms, "
              f"conservative {slow * 1e3:.0f} ms")
        assert abs(fast - slow) < 0.05
        assert fast < 1.5  # ~3 x 200 ms one-way + processing
