"""Benches regenerating the paper's Tables 1-5.

* Table 1 — safety-margin parameters (the 30-combination enumeration);
* Table 2 — predictor parameters, including the ARIMA order grid search;
* Table 3 — predictor accuracy ranking by msqerr;
* Table 4 — WAN path characteristics;
* Table 5 — experiment parameters (validated against the config defaults).
"""

import pytest

from repro.experiments.characterize import characterize_profile
from repro.experiments.report import (
    format_predictor_accuracy_table,
    format_wan_table,
)
from repro.fd.combinations import (
    ARIMA_ORDER,
    GAMMA_VALUES,
    LPF_BETA,
    PHI_VALUES,
    WINMEAN_WINDOW,
    all_combinations,
    make_strategy,
)
from repro.neko.config import ExperimentConfig
from repro.timeseries.selection import select_arima_order


class TestTable1Combinations:
    def test_bench_enumerate_30_combinations(self, benchmark):
        """Table 1: gamma in {1, 2, 3.31}, phi in {1, 2, 4}, alpha = 1/4."""

        def build_all():
            return [
                make_strategy(predictor, margin)
                for _, predictor, margin in all_combinations()
            ]

        strategies = benchmark(build_all)
        assert len(strategies) == 30
        print("\nTable 1 - Safety Margin Parameters")
        print(f"{'SM_CI':<12}{'gamma':>8}    {'SM_JAC':<12}{'phi':>6}")
        for (ci, gamma), (jac, phi) in zip(GAMMA_VALUES.items(), PHI_VALUES.items()):
            print(f"{ci:<12}{gamma:>8.2f}    {jac:<12}{phi:>6.1f}")

    def test_bench_margin_values_match_paper(self):
        assert GAMMA_VALUES == {"CI_low": 1.0, "CI_med": 2.0, "CI_high": 3.31}
        assert PHI_VALUES == {"JAC_low": 1.0, "JAC_med": 2.0, "JAC_high": 4.0}


class TestTable2PredictorParameters:
    def test_bench_arima_order_selection(self, benchmark, wan_trace):
        """Table 2 selection step: grid-search (p, d, q) by msqerr.

        The paper searched [0,0,0]..[10,10,10] with the RPS toolkit; the
        optimum lives in the low-order corner, searched here.
        """
        series = wan_trace.delays[:4000]

        result = benchmark.pedantic(
            lambda: select_arima_order(
                series,
                p_range=range(0, 3),
                d_range=range(0, 2),
                q_range=range(0, 2),
            ),
            rounds=1,
            iterations=1,
        )
        print("\nTable 2 - Predictor parameters")
        print(f"  ARIMA selected order : {result.best_order} "
              f"(paper: {ARIMA_ORDER}, connection-dependent)")
        print(f"  LPF beta             : {LPF_BETA}")
        print(f"  WINMEAN N            : {WINMEAN_WINDOW}")
        p, d, q = result.best_order
        assert p <= 2 and d <= 1 and q <= 1  # a compact model wins

    def test_bench_paper_order_parameters(self):
        assert ARIMA_ORDER == (2, 1, 1)
        assert LPF_BETA == pytest.approx(1 / 8)
        assert WINMEAN_WINDOW == 10


class TestTable3PredictorAccuracy:
    def test_bench_predictor_accuracy(self, benchmark, wan_trace):
        """Table 3: msqerr of the five predictors over the delay trace."""
        from repro.experiments.accuracy import predictor_accuracy

        accuracy = benchmark.pedantic(
            lambda: predictor_accuracy(wan_trace), rounds=1, iterations=1
        )
        print()
        print(format_predictor_accuracy_table(accuracy))
        print(
            "(paper ranking: ARIMA, WINMEAN, MEAN, LAST, LPF - see "
            "EXPERIMENTS.md for the measured agreement)"
        )
        # The reproduction's hard claims: ARIMA most accurate, windowed
        # estimators beat the global MEAN.
        ranked = sorted(accuracy, key=accuracy.get)
        assert ranked[0] == "Arima"
        assert accuracy["WinMean"] < accuracy["Mean"]


class TestTable4WanCharacteristics:
    def test_bench_characterize_path(self, benchmark):
        """Table 4: delay statistics and loss of the Italy-Japan path."""
        result = benchmark.pedantic(
            lambda: characterize_profile(samples=50_000, seed=2),
            rounds=1,
            iterations=1,
        )
        print()
        print(format_wan_table(result))
        delay = result.delay_ms()
        assert delay.minimum >= 192.0           # paper: 192 ms
        assert 195.0 < delay.mean < 210.0       # paper: ~200 ms (illegible)
        assert 4.0 < delay.std < 10.0           # paper: 7.6 ms
        assert delay.maximum > 250.0            # paper: 340 ms
        assert result.loss_probability < 0.01   # paper: < 1%
        assert result.hops == 18                # paper: 18


class TestTable5ExperimentParameters:
    def test_bench_defaults_reproduce_table5(self):
        """Table 5: NumCycles 100000, MTTC 300 s, TTR 30 s, eta 1 s."""
        config = ExperimentConfig()
        print("\nTable 5 - Experiment Parameters")
        print(f"  NumCycles : {config.num_cycles}")
        print(f"  MTTC      : {config.mttc} s")
        print(f"  TTR       : {config.ttr} s")
        print(f"  eta       : {config.eta} s")
        assert config.num_cycles == 100_000
        assert config.mttc == 300.0
        assert config.ttr == 30.0
        assert config.eta == 1.0
        # The paper's N_TD ~ 30 samples-per-run criterion.
        assert config.expected_crashes >= 30
