"""Bench for the chaos shim (scripts/bench_chaos.py).

Regenerates no paper artifact — it guards the cost contract of
docs/robustness.md: a :class:`repro.chaos.ChaosIntake` carrying an
empty fault plan adds less than 10% to the live loopback intake
latency (with a small absolute noise floor for the loopback jitter),
so the shim is cheap enough to stay attached while reproducing an
incident.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from bench_chaos import (  # noqa: E402
    NOISE_FLOOR_MS,
    OVERHEAD_BUDGET_RATIO,
    format_report,
    run_benchmark,
)

pytestmark = [pytest.mark.chaos, pytest.mark.network]


@pytest.fixture(scope="module")
def chaos_record(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("chaos")
    record = run_benchmark(duration=1.5, repeats=3)
    out = out_dir / "BENCH_chaos.json"
    out.write_text(json.dumps(record, indent=2))
    print(f"\n{format_report(record)}")
    print(f"wrote {out}")
    return record


def test_empty_plan_overhead_stays_under_budget(chaos_record):
    assert chaos_record["heartbeats_measured"] > 100
    assert chaos_record["within_budget"], (
        f"empty-plan shim overhead {chaos_record['overhead_ratio']:+.1%} "
        f"({chaos_record['overhead_delta_ms']:+.4f}ms) exceeds the "
        f"{OVERHEAD_BUDGET_RATIO:.0%} contract "
        f"(noise floor {NOISE_FLOOR_MS}ms)"
    )


def test_shim_unit_cost_is_microseconds(chaos_record):
    # The added hot-path work (decode + decide + deliver) is a few
    # microseconds per datagram — two orders of magnitude below the
    # loopback intake latency it rides on.
    assert chaos_record["shim_unit_cost_us"] < 100.0


def test_latency_probe_measured_both_arms(chaos_record):
    assert chaos_record["bare_intake_mean_ms"] > 0
    assert chaos_record["shim_intake_mean_ms"] > 0
