"""Bench for the static analyzer (scripts/bench_lint.py).

Regenerates no paper artifact — it guards the contract of
docs/static-analysis.md: linting all of ``src/`` with every rule
enabled stays under the 5-second budget, so the tier-1 self-check
(``tests/test_lint_repo.py``) and the CI lint gate never become the
slow step of the suite.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from bench_lint import (  # noqa: E402
    FULL_SRC_BUDGET_S,
    WARM_SPEEDUP_FLOOR,
    format_report,
    run_benchmark,
)

pytestmark = pytest.mark.lint


@pytest.fixture(scope="module")
def lint_record(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("lint")
    record = run_benchmark(repeats=2)
    out = out_dir / "BENCH_lint.json"
    out.write_text(json.dumps(record, indent=2))
    print(f"\n{format_report(record)}")
    print(f"wrote {out}")
    return record


def test_full_src_walk_stays_under_budget(lint_record):
    full = lint_record["full_src"]
    assert full["files"] > 50
    assert full["rules"] >= 10  # per-file tier + interprocedural tier
    assert full["best_s"] < FULL_SRC_BUDGET_S, (
        f"linting src took {full['best_s']:.2f}s "
        f"(contract is < {FULL_SRC_BUDGET_S:.1f}s)"
    )


def test_repo_is_clean_under_benchmark_conditions(lint_record):
    assert lint_record["full_src"]["findings"] == 0
    assert lint_record["full_src"]["suppressions"] >= 1


def test_single_file_cost_is_bounded(lint_record):
    # The largest file in the repo parses, contextualizes and walks in
    # well under the budget's per-file share.
    assert lint_record["single_file"]["best_ms"] < 1000.0


def test_warm_cache_meets_speedup_floor(lint_record):
    warm = lint_record["warm_cache"]
    assert warm["misses"] == 0, "warm run must be fully cached"
    assert warm["hits"] == lint_record["full_src"]["files"]
    assert warm["speedup"] >= WARM_SPEEDUP_FLOOR, (
        f"warm lint is only {warm['speedup']:.2f}x faster than cold "
        f"(contract is >= {WARM_SPEEDUP_FLOOR:.0f}x)"
    )
