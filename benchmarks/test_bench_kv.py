"""Bench for the replicated KV subsystem (scripts/bench_kv.py).

Regenerates no paper artifact — it guards the cost of the KV stack as a
research instrument.  The assertions encode the contract of docs/kv.md:

* a simulated KV run is orders of magnitude faster than real time (the
  sweep grid is usable interactively), and
* the user-visible promotion delay after a primary crash stays within
  10 simulated seconds at the benchmark's operating point (eta=0.2,
  Last+CI_med on the calibrated WAN).
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from bench_kv import format_report, run_benchmark  # noqa: E402

pytestmark = pytest.mark.kv


@pytest.fixture(scope="module")
def kv_record(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("kv")
    record = run_benchmark(
        duration=60.0,
        clients=2,
        failover_runs=4,
        failover_duration=40.0,
        sweep_duration=20.0,
        workers=1,
    )
    out = out_dir / "BENCH_kv.json"
    out.write_text(json.dumps(record, indent=2))
    print(f"\n{format_report(record)}")
    print(f"wrote {out}")
    return record


def test_simulation_outruns_real_time(kv_record):
    throughput = kv_record["throughput"]
    assert throughput["ops"] > 0
    assert throughput["sim_speedup"] >= 10.0, (
        f"KV sim only {throughput['sim_speedup']:.1f}x real time — the "
        "sweep grid would be unusable interactively"
    )
    assert throughput["ops_per_wall_s"] > 0


def test_promotion_delay_is_bounded(kv_record):
    failover = kv_record["failover"]
    assert failover["failovers"] > 0
    # Not every run yields a promotion sample (a false suspicion can
    # depose the primary just before its scheduled crash), but the
    # pooled runs must produce at least one.
    assert failover["promotion_samples"] > 0
    assert failover["promotion_p95_s"] <= 10.0, (
        f"promotion p95 {failover['promotion_p95_s']:.2f}s exceeds the "
        "10 simulated second contract"
    )


def test_sweep_grid_is_measured(kv_record):
    sweep = kv_record["sweep"]
    assert sweep["cells"] == len(sweep["etas"]) * len(sweep["detector_ids"])
    assert sweep["wall_s"] > 0
    assert sweep["cells_per_s"] > 0
